//! Simulation time, durations, and bandwidth.
//!
//! Time is a `u64` count of **picoseconds**. The experiments in the paper
//! mix 100 Gbps serialization times (a 1500 B frame takes exactly 120 ns),
//! microsecond propagation delays, and a 384 µs path-alternation period;
//! picoseconds represent all of these exactly, and a `u64` of picoseconds
//! still covers ~213 days of simulated time.

use serde::{Deserialize, Serialize};

/// An absolute simulation timestamp in picoseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Time(pub u64);

/// A span of simulation time in picoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Duration(pub u64);

impl Duration {
    /// Zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// One picosecond.
    pub const PICO: Duration = Duration(1);

    /// Construct from picoseconds.
    pub const fn from_ps(ps: u64) -> Duration {
        Duration(ps)
    }

    /// Construct from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Duration {
        Duration(ns * 1_000)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Duration {
        Duration(us * 1_000_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Duration {
        Duration(ms * 1_000_000_000)
    }

    /// Construct from seconds.
    pub const fn from_secs(s: u64) -> Duration {
        Duration(s * 1_000_000_000_000)
    }

    /// Construct from fractional seconds (rounds to the nearest picosecond).
    pub fn from_secs_f64(s: f64) -> Duration {
        Duration((s * 1e12).round() as u64)
    }

    /// The duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// The duration in fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration in fractional nanoseconds.
    pub fn as_nanos_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }

    /// Multiply by an integer factor.
    pub const fn mul(self, k: u64) -> Duration {
        Duration(self.0 * k)
    }

    /// Scale by a float factor (rounds; used by RTO backoff and EWMAs).
    pub fn mul_f64(self, k: f64) -> Duration {
        Duration((self.0 as f64 * k).round() as u64)
    }
}

impl Time {
    /// The simulation epoch.
    pub const ZERO: Time = Time(0);

    /// The timestamp in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// The timestamp in fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time elapsed since `earlier` (saturating: returns zero if `earlier`
    /// is in the future).
    pub fn since(self, earlier: Time) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl core::ops::Add<Duration> for Time {
    type Output = Time;
    fn add(self, rhs: Duration) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl core::ops::AddAssign<Duration> for Time {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl core::ops::Sub<Time> for Time {
    type Output = Duration;
    fn sub(self, rhs: Time) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl core::ops::Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl core::ops::AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl core::ops::Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl core::fmt::Display for Time {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

impl core::fmt::Display for Duration {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

/// A link or NIC bandwidth in bits per second.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Bandwidth(pub u64);

impl Bandwidth {
    /// Construct from bits per second.
    pub const fn from_bps(bps: u64) -> Bandwidth {
        Bandwidth(bps)
    }

    /// Construct from megabits per second.
    pub const fn from_mbps(mbps: u64) -> Bandwidth {
        Bandwidth(mbps * 1_000_000)
    }

    /// Construct from gigabits per second.
    pub const fn from_gbps(gbps: u64) -> Bandwidth {
        Bandwidth(gbps * 1_000_000_000)
    }

    /// Bits per second.
    pub const fn bps(self) -> u64 {
        self.0
    }

    /// Gigabits per second, as a float.
    pub fn as_gbps_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time to serialize `bytes` onto this link, exact to the picosecond
    /// (rounding up so a transmission never finishes early).
    pub fn serialize_time(self, bytes: u32) -> Duration {
        debug_assert!(self.0 > 0, "zero-bandwidth link");
        let bits = bytes as u64 * 8;
        if bits <= u64::MAX / 1_000_000_000_000 {
            // Every realistic frame (up to ~2 MB) stays in 64 bits: one
            // hardware division instead of the software u128 one
            // (`__udivti3`) on the per-transmission hot path.
            return Duration((bits * 1_000_000_000_000).div_ceil(self.0));
        }
        let ps = (bits as u128 * 1_000_000_000_000).div_ceil(self.0 as u128);
        Duration(ps as u64)
    }

    /// The number of bytes this bandwidth delivers in `d` (rounded down).
    pub fn bytes_in(self, d: Duration) -> u64 {
        ((self.0 as u128 * d.0 as u128) / (8 * 1_000_000_000_000u128)) as u64
    }
}

impl core::fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:.1}Gbps", self.as_gbps_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_is_exact_at_100g() {
        // 1500 bytes at 100 Gbps = 120 ns exactly.
        let t = Bandwidth::from_gbps(100).serialize_time(1500);
        assert_eq!(t, Duration::from_nanos(120));
    }

    #[test]
    fn serialization_is_exact_at_40g() {
        // 1500 bytes at 40 Gbps = 300 ns exactly.
        let t = Bandwidth::from_gbps(40).serialize_time(1500);
        assert_eq!(t, Duration::from_nanos(300));
    }

    #[test]
    fn serialization_rounds_up() {
        // 1 byte at 3 bps: 8/3 s = 2.666..s must round up.
        let t = Bandwidth::from_bps(3).serialize_time(1);
        assert_eq!(t.0, 8_000_000_000_000u64.div_ceil(3));
    }

    #[test]
    fn bytes_in_inverts_serialize() {
        let bw = Bandwidth::from_gbps(10);
        let d = bw.serialize_time(123_456);
        let b = bw.bytes_in(d);
        assert!((123_456..=123_457).contains(&b), "got {b}");
    }

    #[test]
    fn time_arithmetic() {
        let t = Time::ZERO + Duration::from_micros(5);
        assert_eq!(t.0, 5_000_000);
        assert_eq!(t - Time::ZERO, Duration::from_micros(5));
        assert_eq!(t.since(Time(9_000_000)), Duration::ZERO);
    }

    #[test]
    fn duration_conversions() {
        assert_eq!(Duration::from_secs(1).0, 1_000_000_000_000);
        assert_eq!(Duration::from_millis(1).0, 1_000_000_000);
        assert_eq!(Duration::from_micros(1).0, 1_000_000);
        assert_eq!(Duration::from_nanos(1).0, 1_000);
        assert!((Duration::from_secs_f64(0.5).as_secs_f64() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Duration::from_micros(384).to_string(), "384.000us");
        assert_eq!(Bandwidth::from_gbps(100).to_string(), "100.0Gbps");
    }
}
