//! Measurement helpers: binned time series and simple accumulators.
//!
//! The paper's figures are time series (goodput every 32 µs in Fig. 5,
//! proxy buffer occupancy over time in Fig. 2) and distributions (99th-
//! percentile FCT in Fig. 6). [`BinSeries`] covers the former; percentile
//! machinery lives in `mtp-workload` next to the collectors that use it.

use serde::Serialize;

use crate::time::{Duration, Time};

/// Accumulates a quantity into fixed-width time bins.
///
/// Typical use: a receiver calls [`add`](Self::add) with the number of
/// goodput bytes each time a packet (or message) completes; afterwards
/// [`rates_gbps`](Self::rates_gbps) yields the per-bin throughput series the
/// figures plot.
#[derive(Debug, Clone, Serialize)]
pub struct BinSeries {
    bin: Duration,
    bins: Vec<f64>,
}

impl BinSeries {
    /// A series with bins of width `bin`.
    pub fn new(bin: Duration) -> BinSeries {
        assert!(bin.0 > 0, "zero-width bins");
        BinSeries {
            bin,
            bins: Vec::new(),
        }
    }

    /// The configured bin width.
    pub fn bin_width(&self) -> Duration {
        self.bin
    }

    /// Add `value` at time `t`.
    pub fn add(&mut self, t: Time, value: f64) {
        let idx = (t.0 / self.bin.0) as usize;
        if self.bins.len() <= idx {
            self.bins.resize(idx + 1, 0.0);
        }
        self.bins[idx] += value;
    }

    /// Record that time has advanced to `t` without adding anything, so
    /// trailing zero bins are represented.
    pub fn touch(&mut self, t: Time) {
        let idx = (t.0 / self.bin.0) as usize;
        if self.bins.len() <= idx {
            self.bins.resize(idx + 1, 0.0);
        }
    }

    /// Raw per-bin sums.
    pub fn sums(&self) -> &[f64] {
        &self.bins
    }

    /// Interpret bin sums as byte counts and convert each bin to Gbit/s.
    pub fn rates_gbps(&self) -> Vec<f64> {
        let secs = self.bin.as_secs_f64();
        self.bins.iter().map(|b| b * 8.0 / secs / 1e9).collect()
    }

    /// `(bin_start_time_us, sum)` pairs, for printing.
    pub fn points(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        let w = self.bin.as_micros_f64();
        self.bins
            .iter()
            .enumerate()
            .map(move |(i, &v)| (i as f64 * w, v))
    }

    /// Mean of the per-bin rates in Gbit/s over `[from, to)` bins.
    pub fn mean_rate_gbps(&self, from_bin: usize, to_bin: usize) -> f64 {
        let rates = self.rates_gbps();
        let to = to_bin.min(rates.len());
        if from_bin >= to {
            return 0.0;
        }
        rates[from_bin..to].iter().sum::<f64>() / (to - from_bin) as f64
    }
}

/// Online mean/max accumulator for scalar samples (queue depths, delays).
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct ScalarStats {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: f64,
    /// Largest sample seen.
    pub max: f64,
}

impl ScalarStats {
    /// Record one sample.
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        if v > self.max {
            self.max = v;
        }
    }

    /// Mean of recorded samples (0 if none).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_accumulate_by_time() {
        let mut s = BinSeries::new(Duration::from_micros(32));
        s.add(Time(0), 100.0);
        s.add(Time(Duration::from_micros(31).0), 50.0);
        s.add(Time(Duration::from_micros(32).0), 25.0);
        assert_eq!(s.sums(), &[150.0, 25.0]);
    }

    #[test]
    fn rates_convert_bytes_to_gbps() {
        let mut s = BinSeries::new(Duration::from_micros(1));
        // 12500 bytes in 1 us = 100 Gbps.
        s.add(Time(0), 12_500.0);
        let rates = s.rates_gbps();
        assert!((rates[0] - 100.0).abs() < 1e-9, "got {}", rates[0]);
    }

    #[test]
    fn touch_extends_with_zeros() {
        let mut s = BinSeries::new(Duration::from_micros(10));
        s.add(Time(0), 1.0);
        s.touch(Time(Duration::from_micros(35).0));
        assert_eq!(s.sums(), &[1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn mean_rate_windows() {
        let mut s = BinSeries::new(Duration::from_micros(1));
        s.add(Time(0), 12_500.0); // 100 Gbps
        s.add(Time(1_000_000), 0.0); // 0 Gbps
        assert!((s.mean_rate_gbps(0, 2) - 50.0).abs() < 1e-9);
        assert_eq!(s.mean_rate_gbps(5, 2), 0.0);
    }

    #[test]
    fn scalar_stats() {
        let mut st = ScalarStats::default();
        assert_eq!(st.mean(), 0.0);
        st.record(1.0);
        st.record(3.0);
        assert_eq!(st.mean(), 2.0);
        assert_eq!(st.max, 3.0);
        assert_eq!(st.count, 2);
    }
}
