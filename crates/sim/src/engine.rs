//! The discrete-event engine: event queue, links, and the run loop.
//!
//! The engine is deliberately single-threaded and deterministic: events at
//! equal timestamps are processed in scheduling order (a monotone sequence
//! number breaks ties), and all randomness flows from one seeded
//! [`SmallRng`]. Running the same topology with the same seed reproduces
//! every figure byte-identically.
//!
//! ## Link model
//!
//! A [`connect`](Simulator::connect) call creates two directed links (one
//! per direction), each with its own bandwidth, propagation delay, and queue
//! discipline. Transmission follows the standard store-and-forward model:
//!
//! 1. a node `send`s a packet out a port;
//! 2. if the directed link is idle, serialization starts immediately and
//!    finishes `wire_len / rate` later; otherwise the packet is offered to
//!    the port's [`Qdisc`], which may queue, ECN-mark,
//!    NDP-trim, or drop it;
//! 3. when serialization finishes, the packet propagates for the link's
//!    delay and is delivered to the peer node; the next queued packet (if
//!    any) begins serialization.

use std::collections::VecDeque;

use crate::wheel::{EventKey, EventQueue};

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::node::{Ctx, Node, NodeId, PortId, TimerId};
use crate::packet::{Packet, PacketId};
use crate::queue::{EnqueueVerdict, Qdisc};
use crate::time::{Bandwidth, Duration, Time};
use crate::tracefile::{TraceEvent, TraceKind, TraceRing};

/// Identifies one direction of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DirLinkId(pub usize);

/// Semantics of an administratively failed link direction (fault
/// injection). In both modes no newly offered packet is accepted; they
/// differ in what happens to traffic already inside the link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkFailMode {
    /// A hard cut: the egress queue is flushed, and the packet currently
    /// serializing is destroyed when its transmission slot ends (it never
    /// reaches the far side). Models fiber cuts and port failures.
    Blackhole,
    /// A graceful drain: queued packets and the one in flight finish
    /// normally; only new admissions are refused. Models administrative
    /// shutdown.
    Drain,
}

/// Role of a directed link in a sharded (multi-simulator) run.
///
/// A topology partitioned across several [`Simulator`] instances cuts each
/// inter-shard link into two half-links: the transmitting shard holds an
/// [`Egress`](BoundaryKind::Egress) half (serialization, queueing, and all
/// egress-side accounting happen there; finished packets go to the outbox
/// instead of local delivery) and the receiving shard holds an
/// [`Ingress`](BoundaryKind::Ingress) half (arrivals are injected by the
/// sharded runtime and delivered with ordinary delivery accounting).
/// Ordinary links are [`Interior`](BoundaryKind::Interior).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundaryKind {
    /// Both ends live in this simulator (the default).
    Interior,
    /// Local transmit half of an inter-shard link; completions are handed
    /// to [`Simulator::drain_boundary_out`].
    Egress,
    /// Local receive half of an inter-shard link; arrivals come from
    /// [`Simulator::inject_arrival`].
    Ingress,
}

/// Static configuration of one link direction.
pub struct LinkCfg {
    /// Serialization rate.
    pub rate: Bandwidth,
    /// Propagation delay.
    pub delay: Duration,
    /// Queue discipline for the sender-side egress queue.
    pub queue: Box<dyn Qdisc>,
}

impl LinkCfg {
    /// A link direction with a plain drop-tail queue of `cap_pkts`.
    pub fn drop_tail(rate: Bandwidth, delay: Duration, cap_pkts: usize) -> LinkCfg {
        LinkCfg {
            rate,
            delay,
            queue: Box::new(crate::queue::DropTailQueue::new(cap_pkts)),
        }
    }

    /// A link direction with a DCTCP-style ECN marking queue.
    pub fn ecn(rate: Bandwidth, delay: Duration, cap_pkts: usize, k_pkts: usize) -> LinkCfg {
        LinkCfg {
            rate,
            delay,
            queue: Box::new(crate::queue::EcnQueue::new(cap_pkts, k_pkts)),
        }
    }
}

/// Counters kept per link direction.
///
/// Packets and bytes each obey an exact conservation law at any instant
/// (checked by [`Simulator::audit`]):
///
/// ```text
/// offered_pkts  == tx_pkts  + dropped_pkts  + faulted_pkts  + queued + in_flight
/// offered_bytes == tx_bytes + dropped_bytes + faulted_bytes
///                + trim_loss_bytes + corrupt_loss_bytes + queued_bytes + in_flight_bytes
/// ```
#[derive(Debug, Clone, Copy, Default, serde::Serialize)]
pub struct LinkStats {
    /// Packets offered to this direction by the sending node.
    pub offered_pkts: u64,
    /// Wire bytes offered to this direction (measured before any
    /// corruption fault shrinks the frame).
    pub offered_bytes: u64,
    /// Packets fully serialized onto the wire.
    pub tx_pkts: u64,
    /// Bytes fully serialized onto the wire.
    pub tx_bytes: u64,
    /// Packets dropped by the queue discipline.
    pub dropped_pkts: u64,
    /// Wire bytes dropped by the queue discipline (as handed back, i.e.
    /// after any trimming the discipline performed first).
    pub dropped_bytes: u64,
    /// Packets that got a CE mark from the queue discipline.
    pub marked_pkts: u64,
    /// Packets NDP-trimmed by the queue discipline.
    pub trimmed_pkts: u64,
    /// Wire bytes removed from frames by the queue discipline (NDP
    /// payload trimming), whether the trimmed header was then queued or
    /// dropped.
    pub trim_loss_bytes: u64,
    /// Wire bytes removed from frames by truncation faults on this link.
    pub corrupt_loss_bytes: u64,
    /// Packets destroyed by injected faults (link down, queue flush,
    /// corruption bursts) rather than by the queue discipline.
    pub faulted_pkts: u64,
    /// Wire bytes destroyed by injected faults.
    pub faulted_bytes: u64,
    /// Packets whose wire bytes were damaged in flight by a corruption
    /// fault (bit-flips or truncation) but still *delivered* — unlike
    /// [`faulted_pkts`](Self::faulted_pkts), the receiver sees these and
    /// must reject them itself.
    pub corrupted_pkts: u64,
    /// High-water mark of the queue length in packets.
    pub max_qlen_pkts: usize,
}

pub(crate) struct DirLink {
    rate: Bandwidth,
    delay: Duration,
    pub(crate) queue: Box<dyn Qdisc>,
    /// Packet currently being serialized, if any.
    pub(crate) in_flight: Option<Packet>,
    pub(crate) src: (NodeId, PortId),
    dst: (NodeId, PortId),
    pub(crate) stats: LinkStats,
    /// False while administratively failed (fault injection); offered
    /// packets are destroyed instead of queued.
    pub(crate) up: bool,
    /// The in-flight packet was caught by a blackhole cut: destroy it at
    /// its TxDone instead of delivering it.
    doomed: bool,
    /// Corruption burst: destroy this many further offered packets.
    corrupt_next: u32,
    /// Bit-flip burst: damage-and-deliver this many further corruptible
    /// offered packets.
    bitflip_next: u32,
    /// Bits flipped per packet while a bit-flip burst is active.
    bitflip_flips: u8,
    /// Truncation burst: truncate-and-deliver this many further
    /// corruptible offered packets.
    truncate_next: u32,
    /// Steady-state corruption rate in packets-per-million (0 = off).
    corrupt_ppm: u32,
    /// Bits flipped per packet selected by the steady-state rate.
    corrupt_flips: u8,
    /// Dedicated RNG for this direction's corruption faults, armed with
    /// the fault's seed. Per-link so corruption on one link never
    /// perturbs any other random stream in the simulation.
    corrupt_rng: Option<SmallRng>,
    /// Packets propagating toward the far end, ordered by `(time, seq)`.
    /// The event queue holds one key per link — for the ring's head — so
    /// a burst of back-to-back transmissions costs one event, not one per
    /// packet; dispatch drains every ring entry that precedes the next
    /// pending event (see [`Simulator::deliver_batch`]).
    pub(crate) prop: VecDeque<(Time, u64, Packet)>,
    /// `(time, seq)` of the head key currently in the event queue, if
    /// any. A key that pops without matching this is stale (the head
    /// changed under it — e.g. a delay cut re-ordered arrivals) and is
    /// skipped exactly like a cancelled timer.
    sched: Option<(Time, u64)>,
    /// Interior link, or which half of an inter-shard boundary link.
    boundary: BoundaryKind,
}

/// Build one directed link from its configuration.
fn new_dir_link(
    cfg: LinkCfg,
    src: (NodeId, PortId),
    dst: (NodeId, PortId),
    boundary: BoundaryKind,
) -> DirLink {
    DirLink {
        rate: cfg.rate,
        delay: cfg.delay,
        queue: cfg.queue,
        in_flight: None,
        src,
        dst,
        stats: LinkStats::default(),
        up: true,
        doomed: false,
        corrupt_next: 0,
        bitflip_next: 0,
        bitflip_flips: 0,
        truncate_next: 0,
        corrupt_ppm: 0,
        corrupt_flips: 0,
        corrupt_rng: None,
        prop: VecDeque::new(),
        sched: None,
        boundary,
    }
}

/// The packet id auto-assigned to the `seq`-th packet (1-based) sent by a
/// node whose packet-id namespace is `ns`.
///
/// Ids are a pure function of `(namespace, per-node send count)` — never
/// of global interleaving — so a sharded run that gives every node its
/// *global* id as namespace (see [`Simulator::set_pkt_namespace`]) assigns
/// byte-identical ids to the monolithic run, no matter how sends from
/// different nodes interleave. The namespace occupies the high bits
/// (offset by one so id 0 stays the "unassigned" sentinel), leaving 2^40
/// auto-assigned packets per node.
pub fn pkt_id(ns: u64, seq: u64) -> PacketId {
    debug_assert!(ns < (1 << 23), "packet-id namespace too large");
    debug_assert!(seq != 0 && seq < (1 << 40), "per-node packet seq overflow");
    PacketId(((ns + 1) << 40) | seq)
}

/// Event payload, held in the slab while the event waits in the queue.
///
/// Only timers live here now: deliveries ride in per-link [`DirLink::prop`]
/// rings and transmission completions encode their link id in the event
/// key, so a slab entry is 16 bytes instead of an inline [`Packet`].
///
/// `Vacant` marks a slot with no live payload: either free (on the free
/// list) or a cancelled timer whose queue entry has not been popped yet.
#[derive(Debug)]
pub(crate) enum EventKind {
    Timer {
        node: NodeId,
        token: u64,
        /// Generation of the slot when this timer was armed; a matching
        /// [`TimerId`] proves a cancel refers to *this* arming and not a
        /// later reuse of the slot.
        gen: u32,
        /// Detach handle from [`EventQueue::push`]: the wheel entry
        /// holding this timer's key, so a cancel can unsplice it in O(1)
        /// instead of leaving a tombstone (`u32::MAX` when the key went
        /// straight to a heap and only tombstoning is possible).
        wheel: u32,
    },
    Vacant,
}

/// High bit of [`EventKey::slot`]: the entry is a TxDone for directed link
/// `slot & !TXDONE_TAG` rather than an index into the payload slab.
/// Transmission-complete events need no slab entry at all: their only
/// payload is a [`DirLinkId`], which is encoded directly in the key.
const TXDONE_TAG: u32 = 1 << 31;

/// Second-highest bit of [`EventKey::slot`]: the entry is the head key for
/// directed link `slot & !DELIVER_TAG`'s propagation ring
/// ([`DirLink::prop`]). One such key covers an arbitrarily long burst of
/// arrivals; dispatch drains the ring until the next pending event would
/// be due first.
const DELIVER_TAG: u32 = 1 << 30;

/// Sentinel in the flat egress table for an unconnected port.
const NO_LINK: u32 = u32::MAX;

/// Shared mutable simulation state, accessed by nodes through [`Ctx`].
pub struct SimInner {
    pub(crate) now: Time,
    seq: u64,
    /// Pending events, ordered by `(time, seq)`; payloads live in `slab`.
    events: EventQueue,
    /// Event payloads, indexed by `EventKey::slot`.
    pub(crate) slab: Vec<EventKind>,
    /// Per-slot reuse counter; bumped each time a slot is re-allocated
    /// from the free list, so stale `TimerId`s never cancel a newer timer.
    slot_gen: Vec<u32>,
    /// Slots whose heap entry has been popped and are free for reuse.
    free_slots: Vec<u32>,
    pub(crate) links: Vec<DirLink>,
    /// Flat egress map: `egress_table[off + port]` is the directed link id
    /// leaving that port (`NO_LINK` if unconnected), with each node's
    /// `(off, len)` span in `egress_spans`.
    egress_table: Vec<u32>,
    egress_spans: Vec<(u32, u32)>,
    /// Per-node count of auto-assigned packet ids (see [`pkt_id`]).
    pkt_seq: Vec<u64>,
    /// Per-node packet-id namespace; defaults to the node's own id and is
    /// overridden by sharded runs so local nodes mint their *global* ids.
    pkt_ns: Vec<u64>,
    /// Boundary egress handoffs awaiting
    /// [`Simulator::drain_boundary_out`]: `(egress half-link, arrival
    /// time at the far end, packet)`, in transmission-completion order.
    outbox: Vec<(DirLinkId, Time, Packet)>,
    /// Packets handed off by boundary egress half-links (a sink in the
    /// global conservation law; zero in non-sharded runs).
    pub(crate) boundary_out_pkts: u64,
    /// Wire bytes handed off by boundary egress half-links.
    pub(crate) boundary_out_bytes: u64,
    /// Packets injected into boundary ingress half-links (a source in the
    /// global conservation law; zero in non-sharded runs).
    pub(crate) boundary_in_pkts: u64,
    /// Wire bytes injected into boundary ingress half-links.
    pub(crate) boundary_in_bytes: u64,
    /// Events processed so far (cancelled timers are skipped silently and
    /// do not count).
    processed: u64,
    pub(crate) rng: SmallRng,
    trace: Option<TraceRing>,
    /// Corruption-damaged packets destroyed by the engine (queue drop,
    /// link fault, crashed destination) before any receiver could verify
    /// them. The corruption study asserts this is zero so that every
    /// injected corruption is accounted for by a malformed counter.
    pub(crate) corrupted_destroyed: u64,
    /// The per-simulation metrics registry: every engine counter above is
    /// mirrored into it, and nodes record through [`Ctx`]. One registry per
    /// simulator, so parallel tests never share counters.
    pub(crate) telemetry: mtp_telemetry::Registry,
    /// Black-box ring of recent trace events, dumped on panic (see
    /// [`Simulator::enable_flight_recorder`]).
    pub(crate) flight: Option<mtp_telemetry::FlightRecorder>,
    /// Reusable buffer for [`Node::on_packet_batch`] deliveries.
    batch_scratch: Vec<Packet>,
}

/// Recycle a destroyed packet, counting it toward
/// [`SimInner::corrupted_destroyed`] (and its registry mirror) if a
/// corruption fault had already damaged it.
fn destroy(pkt: Packet, corrupted_destroyed: &mut u64, telemetry: &mut mtp_telemetry::Registry) {
    if pkt.payload_dirty || matches!(pkt.headers, crate::packet::Headers::Mangled { .. }) {
        *corrupted_destroyed += 1;
        telemetry.count(mtp_telemetry::Metric::CorruptedDestroyed, 1);
    }
    crate::pool::recycle_packet(pkt);
}

impl SimInner {
    pub(crate) fn trace(&mut self, pkt: PacketId, node: NodeId, port: PortId, kind: TraceKind) {
        let now = self.now;
        if let Some(rec) = &mut self.flight {
            rec.push(mtp_telemetry::FlightEvent {
                t_ps: now.0,
                code: crate::tracefile::flight_code(kind),
                node: node.0 as u32,
                port: port.0 as u32,
                pkt: pkt.0,
            });
        }
        if let Some(ring) = &mut self.trace {
            ring.push(TraceEvent {
                time: now,
                pkt,
                node,
                port,
                kind,
            });
        }
    }

    /// Claim a payload slot, bumping its generation if it is being reused.
    fn alloc_slot(&mut self) -> u32 {
        match self.free_slots.pop() {
            Some(slot) => {
                let g = &mut self.slot_gen[slot as usize];
                *g = g.wrapping_add(1);
                slot
            }
            None => {
                let slot = self.slab.len() as u32;
                self.slab.push(EventKind::Vacant);
                self.slot_gen.push(0);
                slot
            }
        }
    }

    /// Hand a fully transmitted packet to its link's propagation ring,
    /// due at `time`. Only a new ring *head* costs an event-queue entry:
    /// anything behind the head is covered by the head's key, and an
    /// insert that lands in front (a delay cut mid-propagation) schedules
    /// a fresh key, leaving the old one to pop as a stale no-op.
    fn push_deliver(&mut self, time: Time, dir: DirLinkId, pkt: Packet) {
        debug_assert!(time >= self.now, "scheduling into the past");
        debug_assert!((dir.0 as u32) < DELIVER_TAG, "too many links");
        let seq = self.seq;
        self.seq += 1;
        let link = &mut self.links[dir.0];
        let mut pos = link.prop.len();
        while pos > 0 && link.prop[pos - 1].0 > time {
            pos -= 1;
        }
        link.prop.insert(pos, (time, seq, pkt));
        if pos == 0 {
            link.sched = Some((time, seq));
            self.events.push(EventKey {
                time,
                seq,
                slot: DELIVER_TAG | dir.0 as u32,
            });
        }
    }

    /// Should a delivery burst continue with `dir`'s ring front? True iff
    /// the front exists, is due by `until`, and precedes every other
    /// pending event. Otherwise re-schedules a head key for the remaining
    /// ring (if any, with the front's original sequence number so its
    /// ordering against same-instant events is preserved) and returns
    /// false.
    fn continue_burst(&mut self, dir: DirLinkId, until: Time) -> bool {
        let Some(&(nt, ns, _)) = self.links[dir.0].prop.front() else {
            return false;
        };
        let due = nt <= until
            && match self.events.peek() {
                Some(head) => (nt, ns) < (head.time, head.seq),
                None => true,
            };
        if due {
            return true;
        }
        self.links[dir.0].sched = Some((nt, ns));
        self.events.push(EventKey {
            time: nt,
            seq: ns,
            slot: DELIVER_TAG | dir.0 as u32,
        });
        false
    }

    /// Is `dir`'s ring front another arrival at exactly `time`, with no
    /// other pending event due before it? Such frames are handed to
    /// [`Node::on_packet_batch`] together.
    fn simultaneous_arrival(&mut self, dir: DirLinkId, time: Time) -> bool {
        let Some(&(nt, ns, _)) = self.links[dir.0].prop.front() else {
            return false;
        };
        nt == time
            && match self.events.peek() {
                Some(head) => (nt, ns) < (head.time, head.seq),
                None => true,
            }
    }

    /// Schedule a transmission-complete event. The link id rides in the
    /// heap key itself (see [`TXDONE_TAG`]), so the slab is untouched.
    fn push_tx_done(&mut self, time: Time, dir: DirLinkId) {
        debug_assert!(time >= self.now, "scheduling into the past");
        debug_assert!((dir.0 as u32) < DELIVER_TAG, "too many links");
        let seq = self.seq;
        self.seq += 1;
        self.events.push(EventKey {
            time,
            seq,
            slot: TXDONE_TAG | dir.0 as u32,
        });
    }

    pub(crate) fn schedule_timer(&mut self, at: Time, node: NodeId, token: u64) -> TimerId {
        let at = at.max(self.now);
        let slot = self.alloc_slot();
        let gen = self.slot_gen[slot as usize];
        let seq = self.seq;
        self.seq += 1;
        let wheel = self.events.push(EventKey {
            time: at,
            seq,
            slot,
        });
        self.slab[slot as usize] = EventKind::Timer {
            node,
            token,
            gen,
            wheel,
        };
        TimerId((u64::from(slot) << 32) | u64::from(gen))
    }

    /// Cancel a timer in O(1): if the slot still holds the arming that `id`
    /// refers to (generation match), detach its key from the timing wheel
    /// and reclaim the slot immediately. When the key has already migrated
    /// to the ready/overflow heap the wheel refuses the detach; the payload
    /// is blanked instead and the slot is reclaimed when the stale key
    /// pops — the old tombstone contract, now needed only for the handful
    /// of near-deadline cancels instead of every cancel.
    pub(crate) fn cancel_timer(&mut self, id: TimerId) {
        let slot = (id.0 >> 32) as usize;
        let gen = id.0 as u32;
        if let Some(EventKind::Timer { gen: g, wheel, .. }) = self.slab.get(slot) {
            if *g == gen {
                let wheel = *wheel;
                self.slab[slot] = EventKind::Vacant;
                if self.events.cancel(wheel, slot as u32) {
                    self.free_slots.push(slot as u32);
                }
            }
        }
    }

    /// Directed link leaving `node`'s `port`, if connected.
    #[inline]
    fn egress_get(&self, node: NodeId, port: PortId) -> Option<DirLinkId> {
        let (off, len) = *self.egress_spans.get(node.0)?;
        if port.0 >= len as usize {
            return None;
        }
        let v = self.egress_table[off as usize + port.0];
        (v != NO_LINK).then_some(DirLinkId(v as usize))
    }

    /// Record `dir` as the link leaving `node`'s `port`, growing (and if
    /// necessary relocating) the node's span in the flat table.
    ///
    /// # Panics
    /// Panics if the port is already connected.
    fn egress_set(&mut self, node: NodeId, port: PortId, dir: DirLinkId) {
        let (off, len) = self.egress_spans[node.0];
        if port.0 >= len as usize {
            let need = port.0 as u32 + 1;
            if off as usize + len as usize == self.egress_table.len() {
                // Span is already at the end: extend in place.
                self.egress_table
                    .resize(off as usize + need as usize, NO_LINK);
                self.egress_spans[node.0] = (off, need);
            } else {
                // Relocate the span to the end. The old cells are dead;
                // topology wiring is one-time setup so the waste is tiny.
                let new_off = self.egress_table.len() as u32;
                for i in 0..len as usize {
                    let v = self.egress_table[off as usize + i];
                    self.egress_table.push(v);
                }
                self.egress_table
                    .resize(new_off as usize + need as usize, NO_LINK);
                self.egress_spans[node.0] = (new_off, need);
            }
        }
        let (off, _) = self.egress_spans[node.0];
        let cell = &mut self.egress_table[off as usize + port.0];
        assert!(
            *cell == NO_LINK,
            "node {} port {} connected twice",
            node.0,
            port.0
        );
        *cell = dir.0 as u32;
    }

    pub(crate) fn send_from(&mut self, node: NodeId, port: PortId, mut pkt: Packet) {
        let dir = self
            .egress_get(node, port)
            .unwrap_or_else(|| panic!("node {} port {} is not connected", node.0, port.0));
        if pkt.id.0 == 0 {
            self.pkt_seq[node.0] += 1;
            pkt.id = pkt_id(self.pkt_ns[node.0], self.pkt_seq[node.0]);
        }
        let now = self.now;
        let pkt_id = pkt.id;
        let offered_bytes = pkt.wire_len as u64;
        self.trace(pkt_id, node, port, TraceKind::Offered);
        let link = &mut self.links[dir.0];
        link.stats.offered_pkts += 1;
        link.stats.offered_bytes += offered_bytes;
        self.telemetry.count(mtp_telemetry::Metric::PktsOffered, 1);
        self.telemetry
            .count(mtp_telemetry::Metric::BytesOffered, offered_bytes);
        // Fault injection: a downed link destroys every offered packet
        // (blackhole and drain alike refuse new admissions); a corruption
        // burst destroys the next `corrupt_next` packets of a healthy link.
        if !link.up || link.corrupt_next != 0 {
            if link.up {
                link.corrupt_next -= 1;
            }
            link.stats.faulted_pkts += 1;
            link.stats.faulted_bytes += offered_bytes;
            self.telemetry.count(mtp_telemetry::Metric::PktsFaulted, 1);
            self.telemetry
                .count(mtp_telemetry::Metric::BytesFaulted, offered_bytes);
            self.trace(pkt_id, node, port, TraceKind::Dropped);
            destroy(pkt, &mut self.corrupted_destroyed, &mut self.telemetry);
            return;
        }
        // Wire corruption: damage the packet's bytes but still deliver it.
        // Exactly one fault touches a packet (bursts take precedence over
        // the steady-state rate), and packets a fault already damaged are
        // never re-corrupted, so every corruption event downstream maps to
        // exactly one malformed-packet rejection.
        if crate::corrupt::corruptible(&pkt) {
            let corrupted = if link.bitflip_next != 0 {
                link.bitflip_next -= 1;
                let flips = link.bitflip_flips;
                let rng = link.corrupt_rng.as_mut().expect("burst armed with seed");
                crate::corrupt::corrupt_bitflip(&mut pkt, flips, rng)
            } else if link.truncate_next != 0 {
                link.truncate_next -= 1;
                let rng = link.corrupt_rng.as_mut().expect("burst armed with seed");
                crate::corrupt::corrupt_truncate(&mut pkt, rng)
            } else if link.corrupt_ppm != 0 {
                let flips = link.corrupt_flips;
                let rng = link.corrupt_rng.as_mut().expect("rate armed with seed");
                use rand::Rng;
                rng.gen_range(0..1_000_000u32) < link.corrupt_ppm
                    && crate::corrupt::corrupt_bitflip(&mut pkt, flips, rng)
            } else {
                false
            };
            if corrupted {
                // Truncation shrinks the frame; the byte law accounts the
                // removed span as corruption loss on this link.
                let loss = offered_bytes - pkt.wire_len as u64;
                link.stats.corrupted_pkts += 1;
                link.stats.corrupt_loss_bytes += loss;
                self.telemetry
                    .count(mtp_telemetry::Metric::PktsCorrupted, 1);
                self.telemetry
                    .count(mtp_telemetry::Metric::BytesCorruptLoss, loss);
                self.trace(pkt_id, node, port, TraceKind::Corrupted);
            }
        }
        let link = &mut self.links[dir.0];
        // Fast path: if the link is idle and the discipline attests that
        // enqueue-then-dequeue would be an observable no-op right now
        // (empty FIFO, no marking, no scheduler state, no randomness),
        // start serializing directly and skip the queue round-trip. The
        // emitted trace events and stats are identical to the slow path.
        if link.in_flight.is_none() && link.queue.transparent_when_idle() {
            link.stats.max_qlen_pkts = link.stats.max_qlen_pkts.max(1);
            let done = now + link.rate.serialize_time(pkt.wire_len);
            link.in_flight = Some(pkt);
            self.trace(pkt_id, node, port, TraceKind::Queued { marked: false });
            self.push_tx_done(done, dir);
            self.trace(pkt_id, node, port, TraceKind::TxStart);
            return;
        }
        // Otherwise every packet passes through the queue discipline so
        // policies that act per packet (ECN state, loss injection,
        // per-band accounting) see the traffic. On an idle link the packet
        // is dequeued again immediately, adding no delay.
        let enq_bytes = pkt.wire_len as u64;
        let bytes_before = link.queue.len_bytes() as u64;
        let mut dropped_len = 0u64;
        let verdict = match link.queue.enqueue(pkt, now) {
            EnqueueVerdict::Queued { marked } => {
                if marked {
                    link.stats.marked_pkts += 1;
                    self.telemetry.count(mtp_telemetry::Metric::PktsMarked, 1);
                }
                TraceKind::Queued { marked }
            }
            EnqueueVerdict::Dropped(dropped) => {
                dropped_len = dropped.wire_len as u64;
                link.stats.dropped_pkts += 1;
                link.stats.dropped_bytes += dropped_len;
                self.telemetry.count(mtp_telemetry::Metric::PktsDropped, 1);
                self.telemetry
                    .count(mtp_telemetry::Metric::BytesDropped, dropped_len);
                destroy(dropped, &mut self.corrupted_destroyed, &mut self.telemetry);
                TraceKind::Dropped
            }
            EnqueueVerdict::Trimmed => {
                link.stats.trimmed_pkts += 1;
                self.telemetry.count(mtp_telemetry::Metric::PktsTrimmed, 1);
                TraceKind::Trimmed
            }
        };
        // Any bytes the discipline neither kept nor handed back were cut
        // off the frame (NDP trimming) — measured as a delta so every
        // discipline's accounting is covered without trusting its verdict.
        let bytes_after = link.queue.len_bytes() as u64;
        let trim_loss = (enq_bytes + bytes_before).saturating_sub(bytes_after + dropped_len);
        if trim_loss > 0 {
            link.stats.trim_loss_bytes += trim_loss;
            self.telemetry
                .count(mtp_telemetry::Metric::BytesTrimLoss, trim_loss);
        }
        link.stats.max_qlen_pkts = link.stats.max_qlen_pkts.max(link.queue.len_pkts());
        self.telemetry.record(
            mtp_telemetry::HistId::QueueDepthPkts,
            link.queue.len_pkts() as u64,
        );
        self.trace(pkt_id, node, port, verdict);
        let link = &mut self.links[dir.0];
        if link.in_flight.is_none() {
            if let Some(next) = link.queue.dequeue(now) {
                let done = now + link.rate.serialize_time(next.wire_len);
                let nid = next.id;
                link.in_flight = Some(next);
                self.push_tx_done(done, dir);
                self.trace(nid, node, port, TraceKind::TxStart);
            }
        }
    }

    fn tx_done(&mut self, dir: DirLinkId) {
        let now = self.now;
        let link = &mut self.links[dir.0];
        let pkt = link
            .in_flight
            .take()
            .expect("TxDone with nothing in flight");
        if link.doomed {
            // The packet was mid-serialization when a blackhole cut took
            // the link down: it never reaches the far side. The next queued
            // packet (if the link has been restored and accepted new
            // traffic since) starts serializing normally.
            link.doomed = false;
            link.stats.faulted_pkts += 1;
            link.stats.faulted_bytes += pkt.wire_len as u64;
            self.telemetry.count(mtp_telemetry::Metric::PktsFaulted, 1);
            self.telemetry
                .count(mtp_telemetry::Metric::BytesFaulted, pkt.wire_len as u64);
            destroy(pkt, &mut self.corrupted_destroyed, &mut self.telemetry);
            if let Some(next) = link.queue.dequeue(now) {
                let done = now + link.rate.serialize_time(next.wire_len);
                let nid = next.id;
                let (src_node, src_port) = link.src;
                link.in_flight = Some(next);
                self.push_tx_done(done, dir);
                self.trace(nid, src_node, src_port, TraceKind::TxStart);
            }
            return;
        }
        let wire = pkt.wire_len as u64;
        link.stats.tx_pkts += 1;
        link.stats.tx_bytes += wire;
        self.telemetry.count(mtp_telemetry::Metric::PktsTx, 1);
        self.telemetry.count(mtp_telemetry::Metric::BytesTx, wire);
        let (src_node, src_port) = link.src;
        let boundary = link.boundary;
        let arrive = now + link.delay;
        let next_id = if let Some(next) = link.queue.dequeue(now) {
            let done = now + link.rate.serialize_time(next.wire_len);
            let nid = next.id;
            link.in_flight = Some(next);
            self.push_tx_done(done, dir);
            Some(nid)
        } else {
            None
        };
        if let Some(nid) = next_id {
            self.trace(nid, src_node, src_port, TraceKind::TxStart);
        }
        if boundary == BoundaryKind::Egress {
            // The far end of this link lives in another shard's simulator:
            // hand the packet (with its already-computed arrival time) to
            // the sharded runtime instead of delivering locally. Delivery
            // accounting and tracing happen exactly once, in the ingress
            // shard, when the runtime calls `inject_arrival` over there.
            self.boundary_out_pkts += 1;
            self.boundary_out_bytes += wire;
            self.telemetry
                .count(mtp_telemetry::Metric::PktsBoundaryOut, 1);
            self.telemetry
                .count(mtp_telemetry::Metric::BytesBoundaryOut, wire);
            self.outbox.push((dir, arrive, pkt));
        } else {
            self.push_deliver(arrive, dir, pkt);
        }
    }

    /// Destroy every packet queued on `dir`, counting them as faulted.
    /// Returns how many were flushed.
    fn flush_link(&mut self, dir: DirLinkId) -> usize {
        let now = self.now;
        let (src_node, src_port) = self.links[dir.0].src;
        let mut flushed = 0;
        loop {
            let link = &mut self.links[dir.0];
            let Some(pkt) = link.queue.dequeue(now) else {
                break;
            };
            link.stats.faulted_pkts += 1;
            link.stats.faulted_bytes += pkt.wire_len as u64;
            self.telemetry.count(mtp_telemetry::Metric::PktsFaulted, 1);
            self.telemetry
                .count(mtp_telemetry::Metric::BytesFaulted, pkt.wire_len as u64);
            let id = pkt.id;
            destroy(pkt, &mut self.corrupted_destroyed, &mut self.telemetry);
            flushed += 1;
            self.trace(id, src_node, src_port, TraceKind::Dropped);
        }
        flushed
    }

    pub(crate) fn egress_queue_len(&self, node: NodeId, port: PortId) -> (usize, usize) {
        match self.egress_get(node, port) {
            Some(dir) => {
                let q = &self.links[dir.0].queue;
                (q.len_pkts(), q.len_bytes())
            }
            None => (0, 0),
        }
    }

    pub(crate) fn port_connected(&self, node: NodeId, port: PortId) -> bool {
        self.egress_get(node, port).is_some()
    }
}

/// The simulator: topology plus event loop.
pub struct Simulator {
    pub(crate) inner: SimInner,
    pub(crate) nodes: Vec<Option<Box<dyn Node>>>,
    /// False while a node is crashed (fault injection): packets addressed
    /// to it are destroyed and its timers are swallowed.
    pub(crate) node_up: Vec<bool>,
    /// Packets destroyed because their destination node was down.
    pub(crate) faulted_deliveries: u64,
    /// Wire bytes destroyed because their destination node was down.
    pub(crate) faulted_delivery_bytes: u64,
    /// Packets delivered to live nodes. Kept outside the registry so the
    /// conservation audit works even with `telemetry-off`.
    pub(crate) delivered_pkts: u64,
    /// Wire bytes delivered to live nodes.
    pub(crate) delivered_bytes: u64,
    started: bool,
}

impl Simulator {
    /// A fresh, empty simulation seeded for determinism.
    pub fn new(seed: u64) -> Simulator {
        Simulator {
            inner: SimInner {
                now: Time::ZERO,
                seq: 0,
                events: EventQueue::new(),
                slab: Vec::new(),
                slot_gen: Vec::new(),
                free_slots: Vec::new(),
                links: Vec::new(),
                egress_table: Vec::new(),
                egress_spans: Vec::new(),
                pkt_seq: Vec::new(),
                pkt_ns: Vec::new(),
                outbox: Vec::new(),
                boundary_out_pkts: 0,
                boundary_out_bytes: 0,
                boundary_in_pkts: 0,
                boundary_in_bytes: 0,
                processed: 0,
                rng: SmallRng::seed_from_u64(seed),
                trace: None,
                corrupted_destroyed: 0,
                telemetry: mtp_telemetry::Registry::new(),
                flight: None,
                batch_scratch: Vec::new(),
            },
            nodes: Vec::new(),
            node_up: Vec::new(),
            faulted_deliveries: 0,
            faulted_delivery_bytes: 0,
            delivered_pkts: 0,
            delivered_bytes: 0,
            started: false,
        }
    }

    /// Add a node; returns its id. Ports start unconnected.
    pub fn add_node(&mut self, node: Box<dyn Node>) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Some(node));
        self.node_up.push(true);
        self.inner.pkt_seq.push(0);
        self.inner.pkt_ns.push(id.0 as u64);
        self.inner
            .egress_spans
            .push((self.inner.egress_table.len() as u32, 0));
        id
    }

    /// Connect `a`'s port `pa` to `b`'s port `pb` with independent per-
    /// direction configurations. Returns the directed link ids
    /// `(a→b, b→a)`.
    ///
    /// # Panics
    /// Panics if either port is already connected.
    pub fn connect(
        &mut self,
        a: NodeId,
        pa: PortId,
        b: NodeId,
        pb: PortId,
        ab: LinkCfg,
        ba: LinkCfg,
    ) -> (DirLinkId, DirLinkId) {
        let id_ab = DirLinkId(self.inner.links.len());
        self.inner
            .links
            .push(new_dir_link(ab, (a, pa), (b, pb), BoundaryKind::Interior));
        let id_ba = DirLinkId(self.inner.links.len());
        self.inner
            .links
            .push(new_dir_link(ba, (b, pb), (a, pa), BoundaryKind::Interior));
        for (node, port, dir) in [(a, pa, id_ab), (b, pb, id_ba)] {
            self.inner.egress_set(node, port, dir);
        }
        (id_ab, id_ba)
    }

    /// Attach a **boundary egress half-link** to `src`'s `port`: the local
    /// end of an inter-shard link whose receiving end lives in another
    /// shard's simulator. Packets sent out the port serialize, queue, and
    /// count exactly as on an interior link, but on transmission
    /// completion they are staged for the sharded runtime (collect them
    /// with [`drain_boundary_out`](Self::drain_boundary_out)) instead of
    /// being scheduled for local delivery. Returns the half-link's id.
    pub fn connect_boundary_out(&mut self, src: NodeId, port: PortId, cfg: LinkCfg) -> DirLinkId {
        let id = DirLinkId(self.inner.links.len());
        self.inner.links.push(new_dir_link(
            cfg,
            (src, port),
            (src, port),
            BoundaryKind::Egress,
        ));
        self.inner.egress_set(src, port, id);
        id
    }

    /// Attach a **boundary ingress half-link** to `dst`'s `port`: the
    /// receiving end of an inter-shard link. Nothing can be sent out of
    /// this port (it is not registered as an egress); packets appear on
    /// it via [`inject_arrival`](Self::inject_arrival) and are delivered
    /// with ordinary delivery accounting and tracing. Returns the
    /// half-link's id.
    pub fn connect_boundary_in(&mut self, dst: NodeId, port: PortId, cfg: LinkCfg) -> DirLinkId {
        let id = DirLinkId(self.inner.links.len());
        self.inner.links.push(new_dir_link(
            cfg,
            (dst, port),
            (dst, port),
            BoundaryKind::Ingress,
        ));
        id
    }

    /// Inject a packet arriving on boundary ingress half-link `dir` at
    /// absolute time `at`. The sharded runtime calls this at an epoch
    /// barrier with the arrival time the egress shard computed; delivery
    /// then proceeds exactly as if the packet had finished propagating on
    /// an interior link. Each boundary crossing is thereby counted out
    /// once (egress shard) and in once (here), keeping the global
    /// conservation law exact at any instant.
    ///
    /// # Panics
    /// Panics if `dir` is not an ingress half-link or `at` is in the past.
    pub fn inject_arrival(&mut self, dir: DirLinkId, at: Time, pkt: Packet) {
        assert!(
            self.inner.links[dir.0].boundary == BoundaryKind::Ingress,
            "inject_arrival on a non-ingress link"
        );
        assert!(at >= self.inner.now, "inject_arrival into the past");
        let wire = pkt.wire_len as u64;
        self.inner.boundary_in_pkts += 1;
        self.inner.boundary_in_bytes += wire;
        self.inner
            .telemetry
            .count(mtp_telemetry::Metric::PktsBoundaryIn, 1);
        self.inner
            .telemetry
            .count(mtp_telemetry::Metric::BytesBoundaryIn, wire);
        self.inner.push_deliver(at, dir, pkt);
    }

    /// Take every boundary egress handoff staged since the last drain:
    /// `(egress half-link, arrival time at the far end, packet)`, in
    /// transmission-completion order. Empty unless the topology has
    /// egress half-links.
    pub fn drain_boundary_out(&mut self) -> Vec<(DirLinkId, Time, Packet)> {
        std::mem::take(&mut self.inner.outbox)
    }

    /// `(packets, wire bytes)` handed off by boundary egress half-links
    /// since construction (outbox-resident handoffs included).
    pub fn boundary_out(&self) -> (u64, u64) {
        (self.inner.boundary_out_pkts, self.inner.boundary_out_bytes)
    }

    /// `(packets, wire bytes)` injected into boundary ingress half-links
    /// since construction.
    pub fn boundary_in(&self) -> (u64, u64) {
        (self.inner.boundary_in_pkts, self.inner.boundary_in_bytes)
    }

    /// Is `dir` the ingress half of an inter-shard boundary link? Such
    /// half-links carry no egress-side stats of their own (the egress
    /// shard owns them), so digest and report code skips them.
    pub fn link_is_boundary_ingress(&self, dir: DirLinkId) -> bool {
        self.inner.links[dir.0].boundary == BoundaryKind::Ingress
    }

    /// Override the packet-id namespace of `node` (default: the node's
    /// own id). Auto-assigned ids are [`pkt_id`]`(ns, k)` for the node's
    /// k-th send, so a sharded run that sets every node's namespace to
    /// its *global* node id mints ids byte-identical to the monolithic
    /// run's.
    pub fn set_pkt_namespace(&mut self, node: NodeId, ns: u64) {
        self.inner.pkt_ns[node.0] = ns;
    }

    /// Symmetric convenience: both directions share `rate`, `delay`, and a
    /// drop-tail queue of `cap_pkts`.
    #[allow(clippy::too_many_arguments)] // 6 operands + self: a wiring helper
    pub fn connect_symmetric(
        &mut self,
        a: NodeId,
        pa: PortId,
        b: NodeId,
        pb: PortId,
        rate: Bandwidth,
        delay: Duration,
        cap_pkts: usize,
    ) -> (DirLinkId, DirLinkId) {
        self.connect(
            a,
            pa,
            b,
            pb,
            LinkCfg::drop_tail(rate, delay, cap_pkts),
            LinkCfg::drop_tail(rate, delay, cap_pkts),
        )
    }

    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.inner.now
    }

    /// Counters for one link direction.
    pub fn link_stats(&self, dir: DirLinkId) -> &LinkStats {
        &self.inner.links[dir.0].stats
    }

    /// Number of directed links (valid [`DirLinkId`]s are `0..num_links`).
    pub fn num_links(&self) -> usize {
        self.inner.links.len()
    }

    /// Number of nodes (valid [`NodeId`]s are `0..num_nodes`).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Total events processed since construction (delivered packets,
    /// transmission completions, and fired timers).
    pub fn events_processed(&self) -> u64 {
        self.inner.processed
    }

    /// Instantaneous queue occupancy (packets, bytes) of a link direction.
    pub fn link_queue_len(&self, dir: DirLinkId) -> (usize, usize) {
        let q = &self.inner.links[dir.0].queue;
        (q.len_pkts(), q.len_bytes())
    }

    // ---- Fault injection -------------------------------------------------
    //
    // All of these are harness-level administrative actions (a fault
    // scheduler applies them between `run_until` segments). They are
    // deterministic — no randomness, no hidden ordering — and completely
    // inert when unused: a simulation that never calls them behaves
    // byte-identically to one built before they existed.

    /// Take one link direction down. [`LinkFailMode::Blackhole`] flushes
    /// its queue and destroys the packet mid-serialization;
    /// [`LinkFailMode::Drain`] lets traffic already inside the link finish.
    /// Either way, newly offered packets are destroyed (counted in
    /// [`LinkStats::faulted_pkts`]) until [`restore_link`](Self::restore_link).
    pub fn fail_link(&mut self, dir: DirLinkId, mode: LinkFailMode) {
        self.inner
            .telemetry
            .count(mtp_telemetry::Metric::FaultsApplied, 1);
        let link = &mut self.inner.links[dir.0];
        if link.up {
            self.inner
                .telemetry
                .gauge_add(mtp_telemetry::Gauge::LinksDown, 1);
        }
        link.up = false;
        if mode == LinkFailMode::Blackhole {
            if link.in_flight.is_some() {
                link.doomed = true;
            }
            self.inner.flush_link(dir);
        }
    }

    /// Bring a failed link direction back up. The link restarts idle (a
    /// drain finishes its backlog on its own pump; a blackhole flushed it),
    /// but any packets still queued are kicked back into service
    /// defensively so no sequence of faults can strand data.
    pub fn restore_link(&mut self, dir: DirLinkId) {
        self.inner
            .telemetry
            .count(mtp_telemetry::Metric::FaultsApplied, 1);
        let now = self.inner.now;
        let link = &mut self.inner.links[dir.0];
        if !link.up {
            self.inner
                .telemetry
                .gauge_add(mtp_telemetry::Gauge::LinksDown, -1);
        }
        link.up = true;
        if link.in_flight.is_none() {
            if let Some(next) = link.queue.dequeue(now) {
                let done = now + link.rate.serialize_time(next.wire_len);
                let nid = next.id;
                let (src_node, src_port) = link.src;
                link.in_flight = Some(next);
                self.inner.push_tx_done(done, dir);
                self.inner
                    .trace(nid, src_node, src_port, TraceKind::TxStart);
            }
        }
    }

    /// True unless the link direction is administratively failed.
    pub fn link_is_up(&self, dir: DirLinkId) -> bool {
        self.inner.links[dir.0].up
    }

    /// Change a link direction's serialization rate (pathlet degradation).
    /// Applies to future transmissions; the packet currently serializing
    /// keeps its original completion time.
    pub fn set_link_rate(&mut self, dir: DirLinkId, rate: Bandwidth) {
        self.inner.links[dir.0].rate = rate;
    }

    /// Change a link direction's propagation delay. Applies to packets
    /// finishing serialization from now on.
    pub fn set_link_delay(&mut self, dir: DirLinkId, delay: Duration) {
        self.inner.links[dir.0].delay = delay;
    }

    /// Destroy the next `pkts` packets offered to this link direction
    /// (burst corruption on an otherwise healthy link).
    pub fn corrupt_burst(&mut self, dir: DirLinkId, pkts: u32) {
        self.inner
            .telemetry
            .count(mtp_telemetry::Metric::FaultsApplied, 1);
        self.inner.links[dir.0].corrupt_next =
            self.inner.links[dir.0].corrupt_next.saturating_add(pkts);
    }

    /// Flip `flips` random bits in each of the next `pkts` corruptible
    /// packets offered to this direction, and **deliver the damaged
    /// bytes** (unlike [`corrupt_burst`](Self::corrupt_burst), which
    /// destroys). Whoever receives them must verify and reject. Bit
    /// positions come from a dedicated RNG seeded with `seed`, so the
    /// damage pattern replays byte-identically. With `flips <= 3`,
    /// header damage is *guaranteed* detected (CRC-16 Hamming distance),
    /// making corruption accounting exact.
    pub fn bitflip_burst(&mut self, dir: DirLinkId, pkts: u32, flips: u8, seed: u64) {
        self.inner
            .telemetry
            .count(mtp_telemetry::Metric::FaultsApplied, 1);
        let link = &mut self.inner.links[dir.0];
        link.bitflip_next = link.bitflip_next.saturating_add(pkts);
        link.bitflip_flips = flips;
        link.corrupt_rng = Some(SmallRng::seed_from_u64(seed));
    }

    /// Truncate each of the next `pkts` corruptible packets offered to
    /// this direction at a random cut point, and deliver the shortened
    /// frame. Cuts inside the header leave an unverifiable stub; cuts in
    /// the payload leave the header intact but the payload dirty.
    pub fn truncate_burst(&mut self, dir: DirLinkId, pkts: u32, seed: u64) {
        self.inner
            .telemetry
            .count(mtp_telemetry::Metric::FaultsApplied, 1);
        let link = &mut self.inner.links[dir.0];
        link.truncate_next = link.truncate_next.saturating_add(pkts);
        link.corrupt_rng = Some(SmallRng::seed_from_u64(seed));
    }

    /// Arm a steady-state corruption rate on this direction: each
    /// corruptible packet is independently bit-flipped (with `flips`
    /// flips) with probability `ppm` per million. Pass `ppm = 0` to
    /// disarm. Bursts, if also armed, take precedence packet-by-packet.
    pub fn set_corrupt_rate(&mut self, dir: DirLinkId, ppm: u32, flips: u8, seed: u64) {
        self.inner
            .telemetry
            .count(mtp_telemetry::Metric::FaultsApplied, 1);
        let link = &mut self.inner.links[dir.0];
        link.corrupt_ppm = ppm.min(1_000_000);
        link.corrupt_flips = flips;
        if ppm == 0 {
            // Disarm, but never strand an in-progress burst's RNG.
            if link.bitflip_next == 0 && link.truncate_next == 0 {
                link.corrupt_rng = None;
            }
        } else {
            link.corrupt_rng = Some(SmallRng::seed_from_u64(seed));
        }
    }

    /// Corruption-damaged packets destroyed by the engine (queue drop,
    /// link fault, crashed destination) before any receiver could verify
    /// them. When zero, every corrupted packet is accounted for by some
    /// device's malformed counter.
    pub fn corrupted_destroyed(&self) -> u64 {
        self.inner.corrupted_destroyed
    }

    /// Crash a node: its [`Node::on_fault`] hook runs (to flush internal
    /// state), every packet queued on its egress links is destroyed along
    /// with the ones mid-serialization, and until
    /// [`restart_node`](Self::restart_node) all packets addressed to it are
    /// destroyed on arrival and its timers are swallowed. Idempotent.
    pub fn crash_node(&mut self, id: NodeId) {
        if !self.node_up[id.0] {
            return;
        }
        self.inner
            .telemetry
            .count(mtp_telemetry::Metric::FaultsApplied, 1);
        self.inner
            .telemetry
            .gauge_add(mtp_telemetry::Gauge::NodesDown, 1);
        self.with_node(id, |n, ctx| n.on_fault(ctx, crate::node::NodeFault::Crash));
        self.node_up[id.0] = false;
        for d in 0..self.inner.links.len() {
            if self.inner.links[d].src.0 == id {
                if self.inner.links[d].in_flight.is_some() {
                    self.inner.links[d].doomed = true;
                }
                self.inner.flush_link(DirLinkId(d));
            }
        }
    }

    /// Restart a crashed node. Its [`Node::on_fault`] hook runs with
    /// [`NodeFault::Restart`](crate::node::NodeFault::Restart) so it can
    /// re-arm periodic timers lost during the outage. Idempotent.
    pub fn restart_node(&mut self, id: NodeId) {
        if self.node_up[id.0] {
            return;
        }
        self.inner
            .telemetry
            .count(mtp_telemetry::Metric::FaultsApplied, 1);
        self.inner
            .telemetry
            .gauge_add(mtp_telemetry::Gauge::NodesDown, -1);
        self.node_up[id.0] = true;
        self.with_node(id, |n, ctx| {
            n.on_fault(ctx, crate::node::NodeFault::Restart)
        });
    }

    /// True unless the node is currently crashed.
    pub fn node_is_up(&self, id: NodeId) -> bool {
        self.node_up[id.0]
    }

    /// Packets destroyed on arrival because their destination node was
    /// crashed.
    pub fn faulted_deliveries(&self) -> u64 {
        self.faulted_deliveries
    }

    /// Wire bytes destroyed on arrival because their destination node was
    /// crashed.
    pub fn faulted_delivery_bytes(&self) -> u64 {
        self.faulted_delivery_bytes
    }

    /// Packets delivered to live nodes since construction.
    pub fn delivered_pkts(&self) -> u64 {
        self.delivered_pkts
    }

    /// Wire bytes delivered to live nodes since construction.
    pub fn delivered_bytes(&self) -> u64 {
        self.delivered_bytes
    }

    // ---- Telemetry -------------------------------------------------------

    /// This simulation's metrics registry (counters, gauges, histograms).
    pub fn telemetry(&self) -> &mtp_telemetry::Registry {
        &self.inner.telemetry
    }

    /// Mutable access to the registry, for harness-level recording (fault
    /// drivers, workload generators) — and for tamper tests that verify
    /// the audit catches a miscounting bug.
    pub fn telemetry_mut(&mut self) -> &mut mtp_telemetry::Registry {
        &mut self.inner.telemetry
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> mtp_telemetry::Snapshot {
        self.inner.telemetry.snapshot()
    }

    /// Arm the flight recorder: a bounded ring of the last `cap` trace
    /// events, named `name`. If the simulator is dropped while the thread
    /// is panicking (a failing test assertion), the ring is dumped to
    /// `results/flightrec-<name>.json` for post-mortem inspection.
    /// Recording never allocates after this call.
    pub fn enable_flight_recorder(&mut self, name: &str, cap: usize) {
        self.inner.flight = Some(mtp_telemetry::FlightRecorder::new(name, cap));
    }

    /// The armed flight recorder, if any.
    pub fn flight_recorder(&self) -> Option<&mtp_telemetry::FlightRecorder> {
        self.inner.flight.as_ref()
    }

    /// Arm a timer on `node` from harness code (e.g. to start a workload at
    /// a chosen time).
    pub fn schedule(&mut self, at: Time, node: NodeId, token: u64) -> TimerId {
        self.inner.schedule_timer(at, node, token)
    }

    /// Cancel a timer from harness code. Like
    /// [`Ctx::cancel_timer`](crate::node::Ctx::cancel_timer), cancelling an
    /// already-fired or already-cancelled timer is a no-op.
    pub fn cancel(&mut self, id: TimerId) {
        self.inner.cancel_timer(id);
    }

    /// Record per-packet events into a ring holding the last `cap` entries
    /// (a pcap for the simulated world; see [`crate::tracefile`]).
    pub fn enable_trace(&mut self, cap: usize) {
        self.inner.trace = Some(TraceRing::new(cap));
    }

    /// The retained trace events (oldest first); empty if tracing is off.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.inner
            .trace
            .as_ref()
            .map(TraceRing::events)
            .unwrap_or_default()
    }

    /// Total trace events ever pushed to the ring (retained or evicted);
    /// 0 if tracing is off. A digest over `trace_events()` is only a
    /// *complete* record when this equals the retained count — i.e. the
    /// ring never wrapped.
    pub fn trace_total(&self) -> u64 {
        self.inner.trace.as_ref().map(|t| t.total).unwrap_or(0)
    }

    /// Retained trace events for one packet.
    pub fn packet_trace(&self, pkt: PacketId) -> Vec<TraceEvent> {
        self.inner
            .trace
            .as_ref()
            .map(|t| t.packet_history(pkt))
            .unwrap_or_default()
    }

    /// Borrow a node downcast to its concrete type, for reading results out
    /// after (or during) a run.
    ///
    /// # Panics
    /// Panics if the node is of a different concrete type.
    pub fn node_as<T: Node>(&self, id: NodeId) -> &T {
        let node: &dyn Node = self.nodes[id.0]
            .as_deref()
            .expect("node is currently processing an event");
        (node as &dyn std::any::Any)
            .downcast_ref::<T>()
            .expect("node has a different concrete type")
    }

    /// Mutable variant of [`node_as`](Self::node_as).
    pub fn node_as_mut<T: Node>(&mut self, id: NodeId) -> &mut T {
        let node: &mut dyn Node = self.nodes[id.0]
            .as_deref_mut()
            .expect("node is currently processing an event");
        (node as &mut dyn std::any::Any)
            .downcast_mut::<T>()
            .expect("node has a different concrete type")
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.nodes.len() {
            self.with_node(NodeId(i), |node, ctx| node.on_start(ctx));
        }
    }

    fn with_node<R>(&mut self, id: NodeId, f: impl FnOnce(&mut dyn Node, &mut Ctx<'_>) -> R) -> R {
        let mut node = self.nodes[id.0].take().expect("re-entrant node dispatch");
        let r = {
            let mut ctx = Ctx {
                inner: &mut self.inner,
                node: id,
            };
            f(node.as_mut(), &mut ctx)
        };
        self.nodes[id.0] = Some(node);
        r
    }

    /// Pop one queue entry, advance the clock, and dispatch its payload
    /// if live. Returns `None` on an empty queue, otherwise whether an
    /// event was actually dispatched (a cancelled timer or a stale
    /// delivery head key advances the clock but dispatches nothing,
    /// matching the pre-slab engine).
    ///
    /// `until` bounds batched delivery: a delivery head key drains its
    /// link's propagation ring only up to `until` (the `run_until`
    /// horizon), never past it.
    fn pop_one(&mut self, until: Time) -> Option<bool> {
        let key = self.inner.events.pop()?;
        self.inner.now = key.time;
        if key.slot & TXDONE_TAG != 0 {
            self.inner.processed += 1;
            self.inner
                .tx_done(DirLinkId((key.slot & !TXDONE_TAG) as usize));
            return Some(true);
        }
        if key.slot & DELIVER_TAG != 0 {
            let dir = DirLinkId((key.slot & !DELIVER_TAG) as usize);
            return Some(self.deliver_batch(dir, key, until));
        }
        let kind = std::mem::replace(&mut self.inner.slab[key.slot as usize], EventKind::Vacant);
        self.inner.free_slots.push(key.slot);
        match kind {
            EventKind::Vacant => Some(false),
            EventKind::Timer { node, token, .. } => {
                if !self.node_up[node.0] {
                    // Timers of a crashed node are swallowed; on restart
                    // the node re-arms what it needs in `on_fault`.
                    return Some(false);
                }
                self.inner.processed += 1;
                self.inner
                    .telemetry
                    .count(mtp_telemetry::Metric::TimersFired, 1);
                self.with_node(node, |n, ctx| n.on_timer(ctx, token));
                Some(true)
            }
        }
    }

    /// Serve a delivery head key: drain `dir`'s propagation ring for as
    /// long as the ring front precedes every other pending event and the
    /// `until` horizon. One queue entry thereby covers an arbitrarily
    /// long back-to-back burst, but per-packet ordering, clock advances,
    /// traces, and counters are byte-identical to one-event-per-packet
    /// dispatch: the front is re-checked against the queue after every
    /// `on_packet`, so anything a receiver schedules mid-burst is
    /// processed exactly where a dedicated delivery event would have
    /// been.
    fn deliver_batch(&mut self, dir: DirLinkId, key: EventKey, until: Time) -> bool {
        let link = &mut self.inner.links[dir.0];
        if link.sched != Some((key.time, key.seq)) {
            // Stale head key: the ring head changed after this key was
            // pushed (a delay cut re-ordered arrivals). The replacement
            // key covers the ring; skip like a cancelled timer.
            return false;
        }
        link.sched = None;
        let (node, port) = link.dst;
        if !self.node_up[node.0] {
            // The destination crashed while these packets were in
            // propagation: they arrive at a dead port.
            loop {
                let inner = &mut self.inner;
                let (time, _, pkt) = inner.links[dir.0]
                    .prop
                    .pop_front()
                    .expect("scheduled head on empty ring");
                inner.now = time;
                self.faulted_deliveries += 1;
                self.faulted_delivery_bytes += pkt.wire_len as u64;
                inner
                    .telemetry
                    .count(mtp_telemetry::Metric::FaultedDeliveries, 1);
                inner.telemetry.count(
                    mtp_telemetry::Metric::BytesFaultedDeliveries,
                    pkt.wire_len as u64,
                );
                inner.trace(pkt.id, node, port, crate::tracefile::TraceKind::Dropped);
                destroy(pkt, &mut inner.corrupted_destroyed, &mut inner.telemetry);
                if !self.inner.continue_burst(dir, until) {
                    break;
                }
            }
            return false;
        }
        let (dp, db) = self.with_node(node, |n, ctx| {
            let mut dp = 0u64;
            let mut db = 0u64;
            loop {
                let inner = &mut *ctx.inner;
                let (time, _, pkt) = inner.links[dir.0]
                    .prop
                    .pop_front()
                    .expect("scheduled head on empty ring");
                inner.now = time;
                inner.processed += 1;
                dp += 1;
                db += pkt.wire_len as u64;
                inner
                    .telemetry
                    .count(mtp_telemetry::Metric::PktsDelivered, 1);
                inner
                    .telemetry
                    .count(mtp_telemetry::Metric::BytesDelivered, pkt.wire_len as u64);
                inner.trace(pkt.id, node, port, crate::tracefile::TraceKind::Delivered);
                if inner.simultaneous_arrival(dir, time) {
                    // Frames that arrive at the same instant (only
                    // possible for zero-serialization frames) go through
                    // the batch hook in one call. Safe against
                    // interleaving: every event another packet could race
                    // with carries a later sequence number.
                    let mut batch = std::mem::take(&mut inner.batch_scratch);
                    batch.push(pkt);
                    while ctx.inner.simultaneous_arrival(dir, time) {
                        let inner = &mut *ctx.inner;
                        let (_, _, pkt) = inner.links[dir.0].prop.pop_front().expect("front");
                        inner.processed += 1;
                        dp += 1;
                        db += pkt.wire_len as u64;
                        inner
                            .telemetry
                            .count(mtp_telemetry::Metric::PktsDelivered, 1);
                        inner
                            .telemetry
                            .count(mtp_telemetry::Metric::BytesDelivered, pkt.wire_len as u64);
                        inner.trace(pkt.id, node, port, crate::tracefile::TraceKind::Delivered);
                        batch.push(pkt);
                    }
                    n.on_packet_batch(ctx, port, &mut batch);
                    batch.clear();
                    ctx.inner.batch_scratch = batch;
                } else {
                    n.on_packet(ctx, port, pkt);
                }
                if !ctx.inner.continue_burst(dir, until) {
                    break;
                }
            }
            (dp, db)
        });
        self.delivered_pkts += dp;
        self.delivered_bytes += db;
        true
    }

    /// Process events until one is dispatched (cancelled timers are
    /// skipped). Returns `false` when the event queue is empty. A
    /// back-to-back arrival burst on one link counts as one dispatch.
    pub fn step(&mut self) -> bool {
        self.start_if_needed();
        loop {
            match self.pop_one(Time(u64::MAX)) {
                None => return false,
                Some(true) => return true,
                Some(false) => {}
            }
        }
    }

    /// Run until the event queue drains.
    pub fn run(&mut self) {
        self.start_if_needed();
        while self.pop_one(Time(u64::MAX)).is_some() {}
    }

    /// Run until simulation time reaches `until` (events at exactly `until`
    /// are processed). Returns true if events remain.
    pub fn run_until(&mut self, until: Time) -> bool {
        self.start_if_needed();
        loop {
            match self.inner.events.peek() {
                Some(key) if key.time <= until => {
                    self.pop_one(until);
                }
                Some(_) => {
                    self.inner.now = until;
                    return true;
                }
                None => {
                    self.inner.now = self.inner.now.max(until);
                    return false;
                }
            }
        }
    }
}

impl Drop for Simulator {
    /// Black-box behavior: if the simulator dies during a panic (a failing
    /// assertion anywhere in a test) and a flight recorder is armed, dump
    /// the retained event window to `results/flightrec-<name>.json`.
    fn drop(&mut self) {
        if std::thread::panicking() {
            if let Some(rec) = &self.inner.flight {
                let _ = rec.dump_to(
                    &mtp_telemetry::results_dir(),
                    &crate::tracefile::flight_code_name,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Headers;

    /// Fires one packet at start, counts what it receives, echoes nothing.
    struct Pitcher {
        target_port: PortId,
        n: u32,
        size: u32,
    }
    impl Node for Pitcher {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            for _ in 0..self.n {
                ctx.send(self.target_port, Packet::new(Headers::Raw, self.size));
            }
        }
        fn on_packet(&mut self, _ctx: &mut Ctx<'_>, _port: PortId, _pkt: Packet) {}
        fn name(&self) -> &str {
            "pitcher"
        }
    }

    /// Records arrival times.
    #[derive(Default)]
    struct Catcher {
        arrivals: Vec<Time>,
    }
    impl Node for Catcher {
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, _port: PortId, _pkt: Packet) {
            self.arrivals.push(ctx.now());
        }
        fn name(&self) -> &str {
            "catcher"
        }
    }

    #[test]
    fn single_packet_latency_is_serialization_plus_propagation() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node(Box::new(Pitcher {
            target_port: PortId(0),
            n: 1,
            size: 1500,
        }));
        let b = sim.add_node(Box::new(Catcher::default()));
        sim.connect_symmetric(
            a,
            PortId(0),
            b,
            PortId(0),
            Bandwidth::from_gbps(100),
            Duration::from_micros(1),
            64,
        );
        sim.run();
        let catcher = sim.node_as::<Catcher>(b);
        assert_eq!(catcher.arrivals.len(), 1);
        // 120 ns serialization + 1 us propagation.
        assert_eq!(catcher.arrivals[0], Time::ZERO + Duration::from_nanos(1120));
    }

    #[test]
    fn back_to_back_packets_pace_at_link_rate() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node(Box::new(Pitcher {
            target_port: PortId(0),
            n: 3,
            size: 1500,
        }));
        let b = sim.add_node(Box::new(Catcher::default()));
        sim.connect_symmetric(
            a,
            PortId(0),
            b,
            PortId(0),
            Bandwidth::from_gbps(100),
            Duration::from_micros(1),
            64,
        );
        sim.run();
        let arr = &sim.node_as::<Catcher>(b).arrivals;
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[1].since(arr[0]), Duration::from_nanos(120));
        assert_eq!(arr[2].since(arr[1]), Duration::from_nanos(120));
    }

    #[test]
    fn queue_overflow_drops_and_counts() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node(Box::new(Pitcher {
            target_port: PortId(0),
            n: 10,
            size: 1500,
        }));
        let b = sim.add_node(Box::new(Catcher::default()));
        // Queue capacity 4 => 1 in flight + 4 queued = 5 delivered, 5 dropped.
        let (ab, _) = sim.connect_symmetric(
            a,
            PortId(0),
            b,
            PortId(0),
            Bandwidth::from_gbps(1),
            Duration::from_micros(1),
            4,
        );
        sim.run();
        assert_eq!(sim.node_as::<Catcher>(b).arrivals.len(), 5);
        let stats = sim.link_stats(ab);
        assert_eq!(stats.offered_pkts, 10);
        assert_eq!(stats.tx_pkts, 5);
        assert_eq!(stats.dropped_pkts, 5);
        assert_eq!(stats.max_qlen_pkts, 4);
    }

    #[test]
    fn run_until_stops_at_boundary() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node(Box::new(Pitcher {
            target_port: PortId(0),
            n: 2,
            size: 125_000,
        }));
        let b = sim.add_node(Box::new(Catcher::default()));
        sim.connect_symmetric(
            a,
            PortId(0),
            b,
            PortId(0),
            Bandwidth::from_gbps(1),
            Duration::ZERO,
            64,
        );
        // Each packet takes 1 ms to serialize at 1 Gbps.
        let more = sim.run_until(Time::ZERO + Duration::from_micros(1500));
        assert!(more, "second packet still pending");
        assert_eq!(sim.node_as::<Catcher>(b).arrivals.len(), 1);
        sim.run();
        assert_eq!(sim.node_as::<Catcher>(b).arrivals.len(), 2);
    }

    #[test]
    fn timers_fire_in_order_and_cancel() {
        struct TimerNode {
            fired: Vec<u64>,
            cancel_me: Option<TimerId>,
        }
        impl Node for TimerNode {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(Duration::from_micros(2), 2);
                ctx.set_timer(Duration::from_micros(1), 1);
                let id = ctx.set_timer(Duration::from_micros(3), 3);
                self.cancel_me = Some(id);
            }
            fn on_packet(&mut self, _: &mut Ctx<'_>, _: PortId, _: Packet) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
                self.fired.push(token);
                if token == 1 {
                    let id = self.cancel_me.take().expect("set in on_start");
                    ctx.cancel_timer(id);
                }
            }
        }
        let mut sim = Simulator::new(1);
        let n = sim.add_node(Box::new(TimerNode {
            fired: vec![],
            cancel_me: None,
        }));
        sim.run();
        assert_eq!(sim.node_as::<TimerNode>(n).fired, vec![1, 2]);
    }

    #[test]
    fn cancel_after_fire_is_a_noop_and_leaks_no_state() {
        /// Counts fires; does nothing else.
        #[derive(Default)]
        struct Counter {
            fired: u64,
        }
        impl Node for Counter {
            fn on_packet(&mut self, _: &mut Ctx<'_>, _: PortId, _: Packet) {}
            fn on_timer(&mut self, _: &mut Ctx<'_>, _token: u64) {
                self.fired += 1;
            }
        }

        let mut sim = Simulator::new(1);
        let n = sim.add_node(Box::new(Counter::default()));
        let mut stale: Vec<TimerId> = Vec::new();
        for round in 0..2048u64 {
            let at = sim.now() + Duration::from_nanos(10);
            stale.push(sim.schedule(at, n, round));
            sim.run();
            // Cancel every timer that has ever fired, every round. With the
            // old tombstone-set design this grew state forever (and each
            // cancel was a hash insert); with generation-stamped slots it
            // must be a pure no-op.
            for &id in &stale {
                sim.cancel(id);
            }
        }
        assert_eq!(sim.node_as::<Counter>(n).fired, 2048, "every timer fired");
        assert!(sim.inner.events.is_empty());
        assert!(
            sim.inner.slab.len() <= 2,
            "slot slab must not grow under fire/cancel churn: {} slots",
            sim.inner.slab.len()
        );
        assert!(
            sim.inner.free_slots.len() <= 2,
            "free list must not grow: {} entries",
            sim.inner.free_slots.len()
        );
    }

    #[test]
    fn stale_cancel_does_not_kill_a_reused_slot() {
        #[derive(Default)]
        struct Counter {
            fired: Vec<u64>,
        }
        impl Node for Counter {
            fn on_packet(&mut self, _: &mut Ctx<'_>, _: PortId, _: Packet) {}
            fn on_timer(&mut self, _: &mut Ctx<'_>, token: u64) {
                self.fired.push(token);
            }
        }

        let mut sim = Simulator::new(1);
        let n = sim.add_node(Box::new(Counter::default()));
        let first = sim.schedule(Time::ZERO + Duration::from_nanos(10), n, 1);
        sim.run();
        // The second timer reuses the first one's slot (same slot index,
        // bumped generation). A stale cancel of `first` must not touch it.
        let _second = sim.schedule(sim.now() + Duration::from_nanos(10), n, 2);
        sim.cancel(first);
        sim.run();
        assert_eq!(sim.node_as::<Counter>(n).fired, vec![1, 2]);
    }

    #[test]
    fn equal_time_events_run_in_schedule_order() {
        struct T(Vec<u64>);
        impl Node for T {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                for token in 0..5 {
                    ctx.set_timer(Duration::from_micros(1), token);
                }
            }
            fn on_packet(&mut self, _: &mut Ctx<'_>, _: PortId, _: Packet) {}
            fn on_timer(&mut self, _: &mut Ctx<'_>, token: u64) {
                self.0.push(token);
            }
        }
        let mut sim = Simulator::new(1);
        let n = sim.add_node(Box::new(T(vec![])));
        sim.run();
        assert_eq!(sim.node_as::<T>(n).0, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "not connected")]
    fn sending_on_unconnected_port_panics() {
        struct Bad;
        impl Node for Bad {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.send(PortId(0), Packet::new(Headers::Raw, 100));
            }
            fn on_packet(&mut self, _: &mut Ctx<'_>, _: PortId, _: Packet) {}
        }
        let mut sim = Simulator::new(1);
        sim.add_node(Box::new(Bad));
        sim.run();
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        fn run_once(seed: u64) -> Vec<Time> {
            let mut sim = Simulator::new(seed);
            let a = sim.add_node(Box::new(Pitcher {
                target_port: PortId(0),
                n: 50,
                size: 900,
            }));
            let b = sim.add_node(Box::new(Catcher::default()));
            sim.connect_symmetric(
                a,
                PortId(0),
                b,
                PortId(0),
                Bandwidth::from_gbps(10),
                Duration::from_nanos(500),
                16,
            );
            sim.run();
            sim.node_as::<Catcher>(b).arrivals.clone()
        }
        assert_eq!(run_once(7), run_once(7));
    }

    /// Echoes every arriving packet back out the arrival port.
    struct Echo;
    impl Node for Echo {
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, port: PortId, pkt: Packet) {
            ctx.send(port, pkt);
        }
        fn name(&self) -> &str {
            "echo"
        }
    }

    fn fault_pair(n: u32) -> (Simulator, NodeId, NodeId, DirLinkId, DirLinkId) {
        let mut sim = Simulator::new(1);
        let a = sim.add_node(Box::new(Pitcher {
            target_port: PortId(0),
            n,
            size: 1500,
        }));
        let b = sim.add_node(Box::new(Catcher::default()));
        let (ab, ba) = sim.connect_symmetric(
            a,
            PortId(0),
            b,
            PortId(0),
            Bandwidth::from_gbps(10),
            Duration::from_micros(1),
            64,
        );
        (sim, a, b, ab, ba)
    }

    #[test]
    fn blackhole_destroys_queue_and_in_flight() {
        // 10 Gbps, 1500 B → 1.2 µs serialization each. Cut at 2 µs: pkt 0
        // delivered (finished serializing at 1.2 µs), pkt 1 mid-wire is
        // doomed, pkts 2..8 queued are flushed.
        let (mut sim, _a, b, ab, _ba) = fault_pair(8);
        sim.run_until(Time::ZERO + Duration::from_micros(2));
        sim.fail_link(ab, LinkFailMode::Blackhole);
        sim.run();
        assert_eq!(sim.node_as::<Catcher>(b).arrivals.len(), 1);
        // 1 in-flight doomed + 6 flushed = 7 faulted.
        assert_eq!(sim.link_stats(ab).faulted_pkts, 7);
        assert!(!sim.link_is_up(ab));
    }

    #[test]
    fn drain_finishes_backlog_but_refuses_new_offers() {
        /// Sends `burst` packets at start, one more per timer firing.
        struct TimedPitcher {
            burst: u32,
        }
        impl Node for TimedPitcher {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                for _ in 0..self.burst {
                    ctx.send(PortId(0), Packet::new(Headers::Raw, 1500));
                }
            }
            fn on_packet(&mut self, _: &mut Ctx<'_>, _: PortId, _: Packet) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _: u64) {
                ctx.send(PortId(0), Packet::new(Headers::Raw, 1500));
            }
        }
        let mut sim = Simulator::new(1);
        let a = sim.add_node(Box::new(TimedPitcher { burst: 8 }));
        let b = sim.add_node(Box::new(Catcher::default()));
        let (ab, _ba) = sim.connect_symmetric(
            a,
            PortId(0),
            b,
            PortId(0),
            Bandwidth::from_gbps(10),
            Duration::from_micros(1),
            64,
        );
        sim.run_until(Time::ZERO + Duration::from_micros(2));
        sim.fail_link(ab, LinkFailMode::Drain);
        // A fresh offer while draining is destroyed...
        sim.schedule(sim.now() + Duration::from_micros(1), a, 0);
        sim.run();
        // ...while the queued backlog + in-flight packet all complete.
        assert_eq!(sim.node_as::<Catcher>(b).arrivals.len(), 8);
        assert_eq!(sim.link_stats(ab).faulted_pkts, 1);
    }

    #[test]
    fn restore_link_resumes_delivery() {
        let (mut sim, _a, b, ab, _ba) = fault_pair(4);
        sim.run_until(Time::ZERO + Duration::from_micros(2));
        sim.fail_link(ab, LinkFailMode::Blackhole);
        sim.run_until(Time::ZERO + Duration::from_micros(10));
        let stranded = sim.node_as::<Catcher>(b).arrivals.len();
        sim.restore_link(ab);
        assert!(sim.link_is_up(ab));
        sim.run();
        // Nothing new arrives (everything was destroyed), but the link is
        // usable again — covered end-to-end by the faults crate tests.
        assert_eq!(sim.node_as::<Catcher>(b).arrivals.len(), stranded);
    }

    #[test]
    fn corrupt_burst_destroys_next_offers_only() {
        let (mut sim, _a, b, ab, _ba) = fault_pair(6);
        sim.corrupt_burst(ab, 2);
        sim.run();
        assert_eq!(sim.node_as::<Catcher>(b).arrivals.len(), 4);
        assert_eq!(sim.link_stats(ab).faulted_pkts, 2);
        assert!(sim.link_is_up(ab), "corruption is not an admin-down");
    }

    #[test]
    fn crashed_node_destroys_deliveries_and_swallows_timers() {
        struct Ticker {
            fired: u32,
        }
        impl Node for Ticker {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(Duration::from_micros(1), 0);
            }
            fn on_packet(&mut self, _: &mut Ctx<'_>, _: PortId, _: Packet) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_>, _: u64) {
                self.fired += 1;
                ctx.set_timer(Duration::from_micros(1), 0);
            }
        }
        let mut sim = Simulator::new(1);
        let a = sim.add_node(Box::new(Pitcher {
            target_port: PortId(0),
            n: 4,
            size: 1500,
        }));
        let b = sim.add_node(Box::new(Ticker { fired: 0 }));
        sim.connect_symmetric(
            a,
            PortId(0),
            b,
            PortId(0),
            Bandwidth::from_gbps(10),
            Duration::from_micros(1),
            64,
        );
        sim.run_until(Time::ZERO + Duration::from_nanos(500));
        sim.crash_node(b);
        assert!(!sim.node_is_up(b));
        sim.run_until(Time::ZERO + Duration::from_micros(50));
        assert_eq!(sim.faulted_deliveries(), 4, "all deliveries destroyed");
        assert_eq!(sim.node_as::<Ticker>(b).fired, 0, "timers swallowed");
        sim.restart_node(b);
        assert!(sim.node_is_up(b));
        // Restart alone does not resurrect the periodic timer — the node's
        // on_fault hook is responsible (Ticker has none), so it stays quiet.
        sim.run_until(Time::ZERO + Duration::from_micros(60));
        assert_eq!(sim.node_as::<Ticker>(b).fired, 0);
    }

    #[test]
    fn node_fault_hooks_fire_on_crash_and_restart() {
        #[derive(Default)]
        struct Recorder {
            faults: Vec<crate::node::NodeFault>,
        }
        impl Node for Recorder {
            fn on_packet(&mut self, _: &mut Ctx<'_>, _: PortId, _: Packet) {}
            fn on_fault(&mut self, ctx: &mut Ctx<'_>, fault: crate::node::NodeFault) {
                self.faults.push(fault);
                if fault == crate::node::NodeFault::Restart {
                    // Hooks may use the full Ctx, e.g. re-arm timers.
                    ctx.set_timer(Duration::from_micros(1), 7);
                }
            }
        }
        let mut sim = Simulator::new(1);
        let n = sim.add_node(Box::new(Recorder::default()));
        sim.crash_node(n);
        sim.crash_node(n); // idempotent: second crash is a no-op
        sim.restart_node(n);
        sim.restart_node(n); // idempotent
        use crate::node::NodeFault::{Crash, Restart};
        assert_eq!(sim.node_as::<Recorder>(n).faults, vec![Crash, Restart]);
    }

    #[test]
    fn crash_flushes_crashed_nodes_egress() {
        // Echo node with a backlog on its return link: crash it mid-stream
        // and its egress queue + in-flight packet must die with it.
        let mut sim = Simulator::new(1);
        let a = sim.add_node(Box::new(Pitcher {
            target_port: PortId(0),
            n: 8,
            size: 1500,
        }));
        let b = sim.add_node(Box::new(Echo));
        let (_ab, ba) = sim.connect_symmetric(
            a,
            PortId(0),
            b,
            PortId(0),
            Bandwidth::from_gbps(10),
            Duration::from_micros(1),
            64,
        );
        // Let some echoes start flowing back, then crash the echo node.
        sim.run_until(Time::ZERO + Duration::from_micros(4));
        sim.crash_node(b);
        sim.run();
        let st = sim.link_stats(ba);
        assert!(st.faulted_pkts > 0, "crashed node's egress flushed");
        assert_eq!(sim.link_queue_len(ba).0, 0);
    }

    #[test]
    fn degradation_changes_apply_to_future_transmissions() {
        let (mut sim, _a, b, ab, _ba) = fault_pair(2);
        // Slow the link 10x and add 9 µs of delay before anything runs.
        sim.set_link_rate(ab, Bandwidth::from_gbps(1));
        sim.set_link_delay(ab, Duration::from_micros(10));
        sim.run();
        let arr = &sim.node_as::<Catcher>(b).arrivals;
        // 12 µs serialization + 10 µs propagation for the first packet.
        assert_eq!(arr[0], Time::ZERO + Duration::from_micros(22));
        assert_eq!(arr[1].since(arr[0]), Duration::from_micros(12));
    }

    #[test]
    fn faults_are_inert_when_unused() {
        // A run that never touches the fault API must be identical to the
        // pre-fault engine: counters zero, deliveries complete.
        let (mut sim, _a, b, ab, ba) = fault_pair(5);
        sim.run();
        assert_eq!(sim.node_as::<Catcher>(b).arrivals.len(), 5);
        assert_eq!(sim.link_stats(ab).faulted_pkts, 0);
        assert_eq!(sim.link_stats(ba).faulted_pkts, 0);
        assert_eq!(sim.link_stats(ab).corrupted_pkts, 0);
        assert_eq!(sim.faulted_deliveries(), 0);
        assert_eq!(sim.corrupted_destroyed(), 0);
    }

    /// Sends `n` header-only MTP packets at start (header-only so every
    /// corruption event is guaranteed to land in the header region).
    struct MtpPitcher {
        n: u32,
    }
    impl Node for MtpPitcher {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            for _ in 0..self.n {
                let hdr = crate::pool::boxed(mtp_wire::MtpHeader::default());
                let wire = hdr.wire_len() as u32;
                ctx.send(PortId(0), Packet::new(Headers::Mtp(hdr), wire));
            }
        }
        fn on_packet(&mut self, _: &mut Ctx<'_>, _: PortId, _: Packet) {}
    }

    /// Catches whole packets (not just arrival times).
    #[derive(Default)]
    struct PacketCatcher {
        got: Vec<Packet>,
    }
    impl Node for PacketCatcher {
        fn on_packet(&mut self, _: &mut Ctx<'_>, _: PortId, pkt: Packet) {
            self.got.push(pkt);
        }
    }

    fn corruption_pair(n: u32) -> (Simulator, NodeId, DirLinkId) {
        let mut sim = Simulator::new(1);
        let a = sim.add_node(Box::new(MtpPitcher { n }));
        let b = sim.add_node(Box::new(PacketCatcher::default()));
        let (ab, _ba) = sim.connect_symmetric(
            a,
            PortId(0),
            b,
            PortId(0),
            Bandwidth::from_gbps(10),
            Duration::from_micros(1),
            64,
        );
        (sim, b, ab)
    }

    #[test]
    fn bitflip_burst_delivers_damaged_packets() {
        let (mut sim, b, ab) = corruption_pair(4);
        sim.bitflip_burst(ab, 2, 1, 99);
        sim.run();
        let got = &sim.node_as::<PacketCatcher>(b).got;
        assert_eq!(got.len(), 4, "corruption delivers, never destroys");
        let mangled = got
            .iter()
            .filter(|p| matches!(p.headers, Headers::Mangled { .. }))
            .count();
        assert_eq!(mangled, 2, "exactly the burst length is damaged");
        assert_eq!(sim.link_stats(ab).corrupted_pkts, 2);
        // A mangled header-only packet can never verify back.
        for p in got.iter() {
            if matches!(p.headers, Headers::Mangled { .. }) {
                let mut p = p.clone();
                assert!(crate::corrupt::sanitize(&mut p).is_err());
            }
        }
    }

    #[test]
    fn truncate_burst_shortens_and_delivers() {
        let (mut sim, b, ab) = corruption_pair(3);
        sim.truncate_burst(ab, 3, 7);
        sim.run();
        let got = &sim.node_as::<PacketCatcher>(b).got;
        assert_eq!(got.len(), 3);
        let full = mtp_wire::MtpHeader::default().wire_len() as u32;
        for p in got.iter() {
            assert!(p.wire_len < full, "truncation shrinks the frame");
            assert!(matches!(p.headers, Headers::Mangled { .. }));
        }
        assert_eq!(sim.link_stats(ab).corrupted_pkts, 3);
    }

    #[test]
    fn corruption_is_seed_deterministic() {
        let run = || {
            let (mut sim, b, ab) = corruption_pair(6);
            sim.bitflip_burst(ab, 4, 2, 12345);
            sim.run();
            sim.node_as::<PacketCatcher>(b).got.clone()
        };
        assert_eq!(run(), run(), "same seed, byte-identical damage");
    }

    #[test]
    fn corrupt_rate_full_odds_hits_every_packet() {
        let (mut sim, b, ab) = corruption_pair(5);
        sim.set_corrupt_rate(ab, 1_000_000, 1, 3);
        sim.run();
        assert_eq!(sim.link_stats(ab).corrupted_pkts, 5);
        let got = &sim.node_as::<PacketCatcher>(b).got;
        assert!(got
            .iter()
            .all(|p| matches!(p.headers, Headers::Mangled { .. })));
    }

    #[test]
    fn corrupted_destroyed_counts_unaudited_damage() {
        // Corrupt a packet, then crash its destination while it is in
        // propagation: the engine destroys damaged goods no receiver ever
        // audits, and must own up to it.
        let (mut sim, b, ab) = corruption_pair(2);
        sim.bitflip_burst(ab, 2, 1, 5);
        sim.run_until(Time::ZERO + Duration::from_nanos(200));
        sim.crash_node(b);
        sim.run();
        assert_eq!(sim.link_stats(ab).corrupted_pkts, 2);
        assert!(sim.corrupted_destroyed() > 0);
    }
}
