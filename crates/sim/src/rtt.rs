//! RFC 6298 round-trip-time estimation and retransmission timeout.

use crate::time::Duration;

/// Smoothed RTT estimator with Karn-style single-sample timing and
/// exponential RTO backoff.
#[derive(Debug, Clone)]
pub struct RttEstimator {
    srtt: Option<Duration>,
    rttvar: Duration,
    min_rto: Duration,
    backoff: u32,
}

impl RttEstimator {
    /// A fresh estimator with the given RTO floor.
    pub fn new(min_rto: Duration) -> RttEstimator {
        RttEstimator {
            srtt: None,
            rttvar: Duration::ZERO,
            min_rto,
            backoff: 0,
        }
    }

    /// Feed one RTT sample (from an un-retransmitted segment, per Karn).
    pub fn sample(&mut self, rtt: Duration) {
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = Duration(rtt.0 / 2);
            }
            Some(srtt) => {
                // RFC 6298: rttvar = 3/4 rttvar + 1/4 |srtt - rtt|;
                //           srtt   = 7/8 srtt   + 1/8 rtt
                let err = Duration(srtt.0.abs_diff(rtt.0));
                self.rttvar = Duration((3 * self.rttvar.0 + err.0) / 4);
                self.srtt = Some(Duration((7 * srtt.0 + rtt.0) / 8));
            }
        }
        self.backoff = 0;
    }

    /// The smoothed RTT, if any sample has been taken.
    pub fn srtt(&self) -> Option<Duration> {
        self.srtt
    }

    /// Current retransmission timeout, including backoff.
    pub fn rto(&self) -> Duration {
        let base = match self.srtt {
            Some(srtt) => Duration(srtt.0 + 4 * self.rttvar.0),
            // No sample yet: use a conservative multiple of the floor.
            None => Duration(self.min_rto.0 * 4),
        };
        let clamped = base.max(self.min_rto);
        // Exponential backoff, capped at 64x: a datacenter transport gains
        // nothing from multi-second RTOs, and an uncapped doubling race
        // starves repair on very lossy paths.
        Duration(clamped.0.saturating_mul(1u64 << self.backoff.min(6)))
    }

    /// Double the RTO after a timeout.
    pub fn on_timeout(&mut self) {
        self.backoff = self.backoff.saturating_add(1);
    }

    /// Clear the exponential backoff on forward progress. Karn's rule
    /// forbids *sampling* retransmitted segments, but an ACK that newly
    /// acknowledges data — retransmitted or not — proves the path is
    /// delivering, so the doubled RTO no longer serves a purpose. Without
    /// this, a sender whose traffic becomes all-retransmissions (e.g.
    /// repairing through a path failure) never takes another sample and
    /// stays pinned at the backoff cap.
    pub fn on_progress(&mut self) {
        self.backoff = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const US: u64 = 1_000_000; // ps per us

    #[test]
    fn first_sample_initializes() {
        let mut e = RttEstimator::new(Duration::from_micros(10));
        e.sample(Duration::from_micros(100));
        assert_eq!(e.srtt(), Some(Duration::from_micros(100)));
        // rto = srtt + 4 * rttvar = 100 + 4*50 = 300 us
        assert_eq!(e.rto(), Duration(300 * US));
    }

    #[test]
    fn smoothing_converges_toward_stable_rtt() {
        let mut e = RttEstimator::new(Duration::from_micros(1));
        for _ in 0..100 {
            e.sample(Duration::from_micros(50));
        }
        let srtt = e.srtt().unwrap();
        assert!(srtt.0.abs_diff(50 * US) < US, "srtt={srtt}");
        // rttvar decays toward 0, so RTO approaches srtt (clamped by floor).
        assert!(e.rto().0 < 60 * US, "rto={}", e.rto());
    }

    #[test]
    fn rto_respects_floor() {
        let mut e = RttEstimator::new(Duration::from_micros(200));
        for _ in 0..50 {
            e.sample(Duration::from_micros(1));
        }
        assert!(e.rto() >= Duration::from_micros(200));
    }

    #[test]
    fn backoff_doubles_and_sample_resets() {
        let mut e = RttEstimator::new(Duration::from_micros(100));
        e.sample(Duration::from_micros(100));
        let base = e.rto();
        e.on_timeout();
        assert_eq!(e.rto().0, base.0 * 2);
        e.on_timeout();
        assert_eq!(e.rto().0, base.0 * 4);
        e.sample(Duration::from_micros(100));
        // Backoff cleared; the new sample also tightens rttvar
        // (3/4 * 50 us = 37.5 us), so rto = 100 + 4 * 37.5 = 250 us.
        assert_eq!(e.rto(), Duration::from_micros(250));
    }
}
