//! # mtp-sim — a deterministic discrete-event network simulator
//!
//! This crate is the workspace's substitute for ns-3: a single-threaded,
//! deterministic, packet-level discrete-event simulator. It models
//!
//! * **nodes** (hosts, switches, proxies, offload boxes) implementing the
//!   [`Node`] trait, connected by
//! * **links** with a bandwidth, a propagation delay, and a per-direction
//!   egress **queue discipline** — drop-tail, DCTCP-style ECN marking,
//!   deficit-round-robin over bands, strict priority, or NDP-style payload
//!   trimming ([`queue`]),
//! * **timers** and a seeded random source for reproducible workloads,
//! * per-link **counters** and binned **time series** for measurement
//!   ([`trace`]).
//!
//! Time is measured in picoseconds ([`time::Time`]) so the paper's exact
//! parameters — 100 Gbps serialization, 1 µs link delays, a 384 µs path-
//! alternation period, 32 µs goodput sampling — are all represented without
//! rounding.
//!
//! The transports built on top live in sibling crates: `mtp-tcp` (TCP
//! NewReno / DCTCP baselines) and `mtp-core` (the MTP endpoint). In-network
//! devices (load balancers, proxies, caches, policy enforcers) live in
//! `mtp-net`.
//!
//! ## Example
//!
//! ```
//! use mtp_sim::{Simulator, Node, Ctx, PortId, Packet, Headers};
//! use mtp_sim::time::{Bandwidth, Duration};
//!
//! struct Blaster;
//! impl Node for Blaster {
//!     fn on_start(&mut self, ctx: &mut Ctx<'_>) {
//!         ctx.send(PortId(0), Packet::new(Headers::Raw, 1500));
//!     }
//!     fn on_packet(&mut self, _: &mut Ctx<'_>, _: PortId, _: Packet) {}
//! }
//!
//! #[derive(Default)]
//! struct Sink { got: usize }
//! impl Node for Sink {
//!     fn on_packet(&mut self, _: &mut Ctx<'_>, _: PortId, _: Packet) { self.got += 1; }
//! }
//!
//! let mut sim = Simulator::new(42);
//! let a = sim.add_node(Box::new(Blaster));
//! let b = sim.add_node(Box::new(Sink::default()));
//! sim.connect_symmetric(a, PortId(0), b, PortId(0),
//!     Bandwidth::from_gbps(100), Duration::from_micros(1), 64);
//! sim.run();
//! assert_eq!(sim.node_as::<Sink>(b).got, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod corrupt;
pub mod engine;
pub mod loss;
pub mod node;
pub mod packet;
pub mod pool;
pub mod queue;
pub mod rtt;
pub mod shard;
pub mod time;
pub mod trace;
pub mod tracefile;
mod wheel;

pub use audit::{assert_conservation, AuditReport};
pub use corrupt::sanitize;
pub use engine::{pkt_id, BoundaryKind, DirLinkId, LinkCfg, LinkFailMode, LinkStats, Simulator};
pub use loss::{stream_seed, LossyQueue, ReorderQueue};
pub use node::{Ctx, Node, NodeAuditCounters, NodeFault, NodeId, PortId, TimerId};
pub use packet::{AppData, Headers, Packet, PacketId, WireProto};
pub use queue::{
    Classifier, DropTailQueue, DrrQueue, EcnQueue, EnqueueVerdict, PriorityQueue, Qdisc, SfqQueue,
    TrimmingQueue,
};
pub use rtt::RttEstimator;
pub use shard::{
    digest_parts, monolithic_digest, render_digest, AdminDriver, AdminEvent, AdminOp,
    BoundaryRoute, DigestParts, ShardBuildPlan, ShardPlan, ShardedSimulator,
};
pub use time::{Bandwidth, Duration, Time};
pub use trace::{BinSeries, ScalarStats};
pub use tracefile::{flight_code_name, TraceEvent, TraceKind, TraceRing};

/// The per-simulation metrics layer (re-exported from `mtp-telemetry`).
/// Recording is zero-allocation; building with the `telemetry-off` feature
/// compiles it all out.
pub use mtp_telemetry as telemetry;
pub use mtp_telemetry::{
    results_dir, FlightEvent, FlightRecorder, Gauge, HistId, Metric, Registry, Snapshot,
};
