//! Wire-level corruption: materializing, damaging, and re-verifying headers.
//!
//! The simulator normally carries *structured* headers — corruption is the
//! one place where byte realism matters, because the paper's whole premise
//! is that in-network devices parse headers in flight and therefore must
//! survive whatever bytes the physical layer hands them. When a corruption
//! fault fires, the structured header is serialized to its **sealed** wire
//! form (header CRC + payload-checksum trailer, see `mtp_wire::integrity`),
//! the fault's bit-flips or truncation are applied to those bytes, and the
//! packet travels on as [`Headers::Mangled`]. Every receiver then calls
//! [`sanitize`] before trusting anything: a verified packet gets its
//! structured header back, a damaged one is rejected with the exact
//! [`WireError`] a hardware pipeline would raise.
//!
//! Flips that land beyond the header region leave the header parseable and
//! instead set [`Packet::payload_dirty`] — the simulated stand-in for a
//! payload checksum failure, honored by consuming endpoints (drop, count,
//! no ACK; recovery happens through ordinary loss recovery).
//!
//! With at most 3 bit-flips per packet, detection is *guaranteed*, not
//! probabilistic: CRC-16/CCITT has Hamming distance 4 out to 32 751 bits,
//! far beyond any header this workspace emits. That is what lets the
//! corruption study assert that malformed-packet counters account for
//! every injected corruption exactly.

use rand::rngs::SmallRng;
use rand::Rng;

use mtp_wire::bridge::{BRIDGE_MAGIC, BRIDGE_PREAMBLE_LEN, BRIDGE_VERSION};
use mtp_wire::tcp::TCP_HEADER_LEN;
use mtp_wire::{MtpHeader, TcpHeader, WireError};

use crate::packet::{Headers, Packet, WireProto};
use crate::pool;

/// Serialize a packet's structured header to its sealed wire bytes.
///
/// Returns `None` for frames with no modelled header ([`Headers::Raw`]) and
/// for already-mangled packets. Bridged packets materialize as the legacy
/// TCP island would see them: sealed outer TCP header, bridge preamble,
/// sealed inner MTP header.
pub fn materialize(headers: &Headers) -> Option<(WireProto, Vec<u8>)> {
    // The wire image lives in a recycled buffer (capacity retained across
    // frames), so a long corruption run seals headers without touching
    // the allocator.
    let mut bytes = pool::take_buf();
    match headers {
        Headers::Mtp(h) => {
            bytes.resize(h.sealed_wire_len(), 0);
            h.emit_sealed(&mut bytes)
                .expect("structured header is always emittable");
            Some((WireProto::Mtp, bytes))
        }
        Headers::Tcp(h) => {
            bytes.extend_from_slice(&h.to_sealed_bytes());
            Some((WireProto::Tcp, bytes))
        }
        Headers::Bridged { tcp, mtp } => {
            let inner_len = mtp.sealed_wire_len();
            bytes.extend_from_slice(&tcp.to_sealed_bytes());
            bytes.extend_from_slice(&BRIDGE_MAGIC.to_be_bytes());
            bytes.push(BRIDGE_VERSION);
            bytes.push(0);
            bytes.extend_from_slice(&(inner_len as u16).to_be_bytes());
            let at = bytes.len();
            bytes.resize(at + inner_len, 0);
            mtp.emit_sealed(&mut bytes[at..])
                .expect("structured header is always emittable");
            Some((WireProto::Bridged, bytes))
        }
        Headers::Raw | Headers::Mangled { .. } => {
            pool::recycle_buf(bytes);
            None
        }
    }
}

/// Verify mangled wire bytes and recover the structured header.
///
/// Returns the reconstructed [`Headers`] plus whether the *payload*
/// checksum failed while the header itself verified (possible only for
/// MTP / bridged frames, whose trailer covers the payload descriptor).
pub fn verify(proto: WireProto, bytes: &[u8]) -> Result<(Headers, bool), WireError> {
    match proto {
        WireProto::Mtp => {
            let (hdr, used, payload_ok) = MtpHeader::parse_sealed(bytes)?;
            // The engine knows the exact frame boundary, so the walked
            // header must account for every byte. This closes the one
            // probabilistic gap in CRC detection: a flip in a section
            // count re-frames the CRC region, but it cannot conserve the
            // total length at the same time.
            if used != bytes.len() {
                return Err(WireError::BadReserved);
            }
            Ok((Headers::Mtp(pool::boxed(hdr)), !payload_ok))
        }
        WireProto::Tcp => {
            let (hdr, used) = TcpHeader::parse_sealed(bytes)?;
            if used != bytes.len() {
                return Err(WireError::BadReserved);
            }
            Ok((Headers::Tcp(hdr), false))
        }
        WireProto::Bridged => {
            let (tcp, used) = TcpHeader::parse_sealed(bytes)?;
            let rest = &bytes[used..];
            if rest.len() < BRIDGE_PREAMBLE_LEN {
                return Err(WireError::Truncated {
                    needed: used + BRIDGE_PREAMBLE_LEN,
                    got: bytes.len(),
                });
            }
            let magic = u32::from_be_bytes([rest[0], rest[1], rest[2], rest[3]]);
            if magic != BRIDGE_MAGIC || rest[4] != BRIDGE_VERSION || rest[5] != 0 {
                // Bridge framing bytes damaged: the frame no longer
                // carries a recoverable encapsulation.
                return Err(WireError::BadReserved);
            }
            let inner_len = u16::from_be_bytes([rest[6], rest[7]]) as usize;
            let inner = &rest[BRIDGE_PREAMBLE_LEN..];
            let (mtp, consumed, payload_ok) = MtpHeader::parse_sealed(inner)?;
            if consumed != inner_len || used + BRIDGE_PREAMBLE_LEN + consumed != bytes.len() {
                return Err(WireError::BadReserved);
            }
            Ok((
                Headers::Bridged {
                    tcp,
                    mtp: pool::boxed(mtp),
                },
                !payload_ok,
            ))
        }
    }
}

/// Verify-and-restore a possibly-mangled packet in place.
///
/// This is the first thing every receiving node does. For clean packets it
/// is a no-op. For mangled packets it runs [`verify`]: on success the
/// structured header replaces the bytes (a payload-checksum failure folds
/// into [`Packet::payload_dirty`] — header trustworthy, payload not); on
/// failure the packet is left mangled and the error returned, and the
/// caller must count it as malformed, trace it, and recycle it.
pub fn sanitize(pkt: &mut Packet) -> Result<(), WireError> {
    let Headers::Mangled { proto, bytes } = &pkt.headers else {
        return Ok(());
    };
    let (headers, dirty) = verify(*proto, bytes)?;
    if let Headers::Mangled { bytes, .. } = std::mem::replace(&mut pkt.headers, headers) {
        pool::recycle_buf(bytes);
    }
    pkt.payload_dirty |= dirty;
    Ok(())
}

/// Modelled payload bytes of a frame: what remains of `wire_len` after the
/// structured header's *legacy* wire overhead (the form `wire_len` was
/// originally charged with). Raw frames are all payload; mangled frames
/// report zero (they are never re-corrupted).
pub fn payload_len(pkt: &Packet) -> u32 {
    match &pkt.headers {
        Headers::Tcp(h) => h.payload_len as u32,
        Headers::Mtp(h) => pkt.wire_len.saturating_sub(h.wire_len() as u32),
        Headers::Bridged { mtp, .. } => pkt
            .wire_len
            .saturating_sub((TCP_HEADER_LEN + BRIDGE_PREAMBLE_LEN + mtp.wire_len()) as u32),
        Headers::Raw | Headers::Mangled { .. } => 0,
    }
}

/// True if a corruption fault may touch this packet. Already-damaged
/// packets are never corrupted again (each corruption event must map to
/// exactly one malformed-packet count downstream), and raw frames carry
/// no header to damage.
pub fn corruptible(pkt: &Packet) -> bool {
    !pkt.payload_dirty && !matches!(pkt.headers, Headers::Raw | Headers::Mangled { .. })
}

/// Flip `flips` uniformly-drawn bits across the frame (sealed header bytes
/// plus modelled payload region). Flips landing in the header turn the
/// packet into [`Headers::Mangled`]; flips landing beyond it set
/// [`Packet::payload_dirty`]. `wire_len` is unchanged — a bit-flip does
/// not alter timing. Returns false (and does nothing, consuming no
/// randomness) if the packet is not corruptible.
pub fn corrupt_bitflip(pkt: &mut Packet, flips: u8, rng: &mut SmallRng) -> bool {
    if !corruptible(pkt) {
        return false;
    }
    let (proto, mut bytes) = materialize(&pkt.headers).expect("corruptible packets materialize");
    let hdr_bits = bytes.len() * 8;
    let total_bits = hdr_bits + payload_len(pkt) as usize * 8;
    let mut hit_header = false;
    let mut hit_payload = false;
    for _ in 0..flips.max(1) {
        let bit = rng.gen_range(0..total_bits);
        if bit < hdr_bits {
            bytes[bit / 8] ^= 1 << (bit % 8);
            hit_header = true;
        } else {
            hit_payload = true;
        }
    }
    if hit_header {
        let old = std::mem::replace(&mut pkt.headers, Headers::Mangled { proto, bytes });
        recycle_headers(old);
    } else {
        pool::recycle_buf(bytes);
    }
    pkt.payload_dirty |= hit_payload;
    true
}

/// Truncate the frame at a uniformly-drawn cut point within its modelled
/// region (sealed header + payload). A cut inside the header leaves a
/// mangled stub that can never verify; a cut inside the payload leaves the
/// header intact but the payload dirty. `wire_len` shrinks by the bytes
/// lost. Returns false if the packet is not corruptible.
pub fn corrupt_truncate(pkt: &mut Packet, rng: &mut SmallRng) -> bool {
    if !corruptible(pkt) {
        return false;
    }
    let (proto, mut bytes) = materialize(&pkt.headers).expect("corruptible packets materialize");
    let total = bytes.len() + payload_len(pkt) as usize;
    let cut = rng.gen_range(0..total);
    let lost = (total - cut) as u32;
    pkt.wire_len = pkt.wire_len.saturating_sub(lost).max(1);
    if cut < bytes.len() {
        bytes.truncate(cut);
        let old = std::mem::replace(&mut pkt.headers, Headers::Mangled { proto, bytes });
        recycle_headers(old);
    } else {
        pool::recycle_buf(bytes);
        pkt.payload_dirty = true;
    }
    true
}

/// Return any boxed MTP header inside a replaced `Headers` to the pool.
fn recycle_headers(headers: Headers) {
    match headers {
        Headers::Mtp(h) | Headers::Bridged { mtp: h, .. } => pool::recycle_header(h),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn mtp_packet() -> Packet {
        let mut hdr = MtpHeader {
            msg_id: mtp_wire::MsgId(7),
            pkt_num: mtp_wire::PktNum(2),
            pkt_len: 1000,
            pkt_offset: 2000,
            msg_len_pkts: 4,
            msg_len_bytes: 4000,
            ..MtpHeader::default()
        };
        hdr.sack.push(mtp_wire::SackEntry {
            msg: mtp_wire::MsgId(7),
            pkt: mtp_wire::PktNum(0),
        });
        let wire = hdr.wire_len() as u32 + 1000;
        Packet::new(Headers::Mtp(pool::boxed(hdr)), wire)
    }

    #[test]
    fn materialize_verify_roundtrip_all_protos() {
        let pkts = [
            mtp_packet(),
            Packet::new(Headers::Tcp(TcpHeader::default()), 64),
            Packet::new(
                Headers::Bridged {
                    tcp: TcpHeader::default(),
                    mtp: pool::boxed(MtpHeader::default()),
                },
                128,
            ),
        ];
        for pkt in pkts {
            let (proto, bytes) = materialize(&pkt.headers).unwrap();
            let (back, dirty) = verify(proto, &bytes).unwrap();
            assert_eq!(back, pkt.headers);
            assert!(!dirty);
        }
        assert!(materialize(&Headers::Raw).is_none());
    }

    #[test]
    fn header_flip_mangles_and_sanitize_rejects() {
        let mut rng = SmallRng::seed_from_u64(11);
        // A header-only packet: every flip must land in the header.
        let hdr = MtpHeader::default();
        let wire = hdr.wire_len() as u32;
        let mut pkt = Packet::new(Headers::Mtp(pool::boxed(hdr)), wire);
        assert!(corrupt_bitflip(&mut pkt, 1, &mut rng));
        assert!(matches!(pkt.headers, Headers::Mangled { .. }));
        assert!(sanitize(&mut pkt).is_err());
        // Still mangled after a failed sanitize; never re-corrupted.
        assert!(!corruptible(&pkt));
        assert!(!corrupt_bitflip(&mut pkt, 1, &mut rng));
    }

    #[test]
    fn payload_flip_sets_dirty_and_header_survives() {
        // Huge payload, tiny header: draw until a flip lands in payload
        // only (deterministic for this seed).
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen_dirty_only = false;
        for _ in 0..64 {
            let mut pkt = mtp_packet();
            pkt.wire_len = 1_000_000;
            assert!(corrupt_bitflip(&mut pkt, 1, &mut rng));
            if pkt.payload_dirty && !matches!(pkt.headers, Headers::Mangled { .. }) {
                assert!(sanitize(&mut pkt).is_ok());
                assert!(pkt.payload_dirty);
                seen_dirty_only = true;
                break;
            }
        }
        assert!(seen_dirty_only, "payload flip never observed");
    }

    #[test]
    fn truncation_shrinks_wire_len_and_is_detected() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..32 {
            let mut pkt = mtp_packet();
            let before = pkt.wire_len;
            assert!(corrupt_truncate(&mut pkt, &mut rng));
            assert!(pkt.wire_len < before);
            if matches!(pkt.headers, Headers::Mangled { .. }) {
                assert!(sanitize(&mut pkt).is_err());
            } else {
                assert!(pkt.payload_dirty);
            }
        }
    }

    #[test]
    fn sanitize_restores_undamaged_mangled_bytes() {
        // A mangled packet whose bytes are intact (e.g. all flips hit the
        // trailer) verifies back to its structured form.
        let pkt = mtp_packet();
        let (proto, bytes) = materialize(&pkt.headers).unwrap();
        let mut m = Packet::new(Headers::Mangled { proto, bytes }, pkt.wire_len);
        assert!(sanitize(&mut m).is_ok());
        assert_eq!(m.headers, pkt.headers);
        assert!(!m.payload_dirty);
    }
}
