//! Hierarchical timing wheel: the engine's event queue.
//!
//! A discrete-event engine under RTO churn schedules and drains tens of
//! thousands of timers whose deadlines cluster a few RTTs out. The former
//! `BinaryHeap<Reverse<EventKey>>` paid `O(log n)` sift work per push and
//! pop with `n` inflated by cancelled-but-unpopped timer entries; the
//! Varghese–Lauer hierarchical wheel below makes both operations `O(1)`
//! amortized: a push is two shifts, an XOR, and a `Vec` push into the slot
//! the deadline hashes to; a pop drains the current slot into a tiny
//! per-slot heap and bitmap-skips empty slots.
//!
//! ## Shape
//!
//! [`LEVELS`] levels of 256 slots each, absolutely indexed: level `k`'s
//! slot width is `2^(10 + 8k)` ps (level 0 ≈ 1 ns), so the wheel spans
//! `2^50` ps ≈ 18 minutes before the small overflow heap takes over.
//! An event lands on the level where its tick first differs from the
//! wheel's current tick — equivalently, the byte index of the highest set
//! bit of `(time >> 10) ^ (cur >> 10)` — which keeps every level-`k` slot
//! strictly later than everything on level `k-1`. Draining a higher-level
//! slot re-places its events relative to the advanced clock (a *cascade*),
//! so each event moves at most [`LEVELS`] times in its life.
//!
//! ## Ordering and cancellation
//!
//! The engine's determinism contract — pops strictly ordered by
//! `(time, seq)` — survives because slot residency is only ever a
//! *coarsening*: events sharing the current slot are totally ordered by a
//! small binary heap (`ready`), and everything outside the current slot is
//! provably later.
//!
//! Cancellation is where the wheel beats the heap outright: slot lists are
//! doubly linked, so [`EventQueue::cancel`] *detaches* a parked event in
//! `O(1)` — no tombstone is left to cascade and pop later, and under RTO
//! churn (every delivered packet arms a timer that is almost always
//! cancelled) the wheel holds only live deadlines instead of a tombstone
//! population proportional to the churn rate × timeout. The two heaps the
//! wheel still delegates to (`ready` and `overflow`) keep the old
//! generation-stamped tombstone contract: `cancel` refuses (returns
//! `false`) when the key has already migrated there, and the engine falls
//! back to blanking the payload slab entry exactly as the binary heap
//! required for every cancel.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::Time;

/// What the event queue orders: 20 bytes of `(time, seq)` ordering key
/// plus a payload-slab slot (or a tagged link id; see the engine's
/// `TXDONE_TAG`/`DELIVER_TAG`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct EventKey {
    pub(crate) time: Time,
    pub(crate) seq: u64,
    pub(crate) slot: u32,
}

impl PartialOrd for EventKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for EventKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// log2 of the level-0 slot width in picoseconds (2^10 ps ≈ 1 ns).
const SLOT_SHIFT: u32 = 10;
/// log2 of the slot count per level.
const LEVEL_BITS: u32 = 8;
/// Slots per level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Wheel levels; beyond level `LEVELS - 1` (≈ 18 simulated minutes out)
/// deadlines wait in the overflow heap.
const LEVELS: usize = 5;

/// The tick (level-0 slot number) containing a timestamp.
#[inline]
fn tick(t: u64) -> u64 {
    t >> SLOT_SHIFT
}

/// One parked event: its key plus the intrusive links to its slot-list
/// neighbours. Slots are doubly-linked lists threaded through one shared
/// slab, so both a cascade and a cancel are pointer relinks — no per-slot
/// `Vec` whose capacity would churn as absolute slot indices march through
/// fresh slots, and no list walk to find a cancelled entry.
#[derive(Debug, Clone, Copy)]
struct Entry {
    key: EventKey,
    next: u32,
    prev: u32,
}

/// List terminator / empty-slot head.
const NIL: u32 = u32::MAX;

/// `prev` value marking an entry that is in no slot list: free, or its key
/// has migrated to the ready/overflow heap. Distinguishes "unlinked" from
/// "linked at the head" (`prev == NIL`) so a stale cancel handle can never
/// unsplice a freelist node.
const UNLINKED: u32 = u32::MAX - 1;

/// The engine's pending-event queue: hierarchical timing wheel plus an
/// overflow heap for deadlines beyond the wheel horizon.
#[derive(Debug)]
pub(crate) struct EventQueue {
    /// Wheel clock: start of the slot currently being drained. Only ever
    /// moves forward, and never past the earliest pending event.
    cur: u64,
    /// Events in the *current* level-0 slot, totally ordered. All pops
    /// come through here.
    ready: BinaryHeap<Reverse<EventKey>>,
    /// `heads[k * SLOTS + i]`: head of the entry list for slot `i` of
    /// level `k` (`NIL` if empty). Order within a slot is irrelevant —
    /// the ready heap restores total order when the slot is served.
    heads: Vec<u32>,
    /// Backing store for every parked entry; `free` recycles vacated
    /// indices, so steady-state churn allocates nothing once the slab has
    /// grown to the peak number of in-flight events.
    entries: Vec<Entry>,
    free: Vec<u32>,
    /// Occupancy bitmap per level (bit `i` set ⇔ slot `i` nonempty),
    /// so advancing skips empty slots with `trailing_zeros`.
    occupied: [[u64; SLOTS / 64]; LEVELS],
    /// Deadlines beyond the wheel horizon.
    overflow: BinaryHeap<Reverse<EventKey>>,
    /// Total pending events (ready + wheel + overflow).
    count: usize,
    /// Timestamp of the last popped event; pops must be monotone.
    #[cfg(debug_assertions)]
    last_pop: u64,
}

impl EventQueue {
    pub(crate) fn new() -> EventQueue {
        // Seed capacity for ~1k concurrent events so moderate workloads
        // never reallocate after construction; larger ones converge by
        // doubling during their warm-up, exactly like the old heap did.
        const SEED_CAP: usize = 1024;
        EventQueue {
            cur: 0,
            ready: BinaryHeap::with_capacity(SEED_CAP),
            heads: vec![NIL; LEVELS * SLOTS],
            entries: Vec::with_capacity(SEED_CAP),
            free: Vec::with_capacity(SEED_CAP),
            occupied: [[0; SLOTS / 64]; LEVELS],
            overflow: BinaryHeap::new(),
            count: 0,
            #[cfg(debug_assertions)]
            last_pop: 0,
        }
    }

    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.count == 0
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.count
    }

    /// Schedule `key`. `key.time` must be on or after the last popped
    /// event's time (the engine never schedules into the past).
    ///
    /// Returns a detach handle for [`EventQueue::cancel`]: the index of
    /// the wheel entry now holding the key, or [`NIL`] when the key went
    /// straight to the ready or overflow heap (not detachable). The handle
    /// stays valid across cascades — relocation reuses the entry index —
    /// and is revalidated against `key.slot` on use, so callers may hold
    /// it without tracking the key's migration to the ready heap.
    pub(crate) fn push(&mut self, key: EventKey) -> u32 {
        self.count += 1;
        self.place(key)
    }

    /// Route a key to the ready heap, a wheel slot, or the overflow heap,
    /// relative to the current wheel clock.
    ///
    /// `key.time` may lie *before* the wheel clock: `cur` tracks the next
    /// occupied wheel slot, which `peek` can push well past the engine's
    /// `now` when the queue momentarily holds only far-future events (the
    /// engine keeps delivering from link propagation rings in between).
    /// Anything at or before the current slot goes to the ready heap,
    /// which restores exact `(time, seq)` order — every wheel slot is
    /// strictly later than the current slot, so the minimum is always in
    /// `ready`.
    fn place(&mut self, key: EventKey) -> u32 {
        let t = tick(key.time.0);
        let c = tick(self.cur);
        if t <= c {
            self.ready.push(Reverse(key));
            return NIL;
        }
        // Byte index of the highest differing tick bit picks the level.
        let level = ((63 - (t ^ c).leading_zeros()) / LEVEL_BITS) as usize;
        if level >= LEVELS {
            self.overflow.push(Reverse(key));
            return NIL;
        }
        let idx = match self.free.pop() {
            Some(idx) => {
                self.entries[idx as usize].key = key;
                idx
            }
            None => {
                let idx = self.entries.len() as u32;
                self.entries.push(Entry {
                    key,
                    next: NIL,
                    prev: UNLINKED,
                });
                idx
            }
        };
        self.link(
            idx,
            level,
            (t >> (LEVEL_BITS * level as u32)) as usize & (SLOTS - 1),
        );
        idx
    }

    /// Splice entry `idx` onto the head of `slot` of `level`.
    #[inline]
    fn link(&mut self, idx: u32, level: usize, slot: usize) {
        let head = &mut self.heads[level * SLOTS + slot];
        let old = std::mem::replace(head, idx);
        self.entries[idx as usize].next = old;
        self.entries[idx as usize].prev = NIL;
        if old != NIL {
            self.entries[old as usize].prev = idx;
        }
        self.occupied[level][slot / 64] |= 1 << (slot % 64);
    }

    /// Retire entry `idx` to the freelist.
    #[inline]
    fn free_entry(&mut self, idx: u32) {
        self.entries[idx as usize].prev = UNLINKED;
        self.free.push(idx);
    }

    /// Detach a parked key in `O(1)`. `idx` is the handle [`push`]
    /// returned and `slot` the payload-slab slot stamped into the key at
    /// push time; the pair proves the handle still refers to *that*
    /// scheduling (the slab slot is owned by exactly one pending event, so
    /// a recycled entry can never carry the same `key.slot`). Returns
    /// `false` — leaving tombstone semantics to the caller — when the key
    /// has already migrated to the ready or overflow heap, where a detach
    /// would cost `O(n)`.
    ///
    /// The entry's current `(level, slot)` is recomputed from its deadline
    /// and the wheel clock — the same arithmetic [`place`] used. That is
    /// sound because a *linked* entry's placement never silently drifts:
    /// the clock only crosses a placement boundary by draining the very
    /// slot the entry sits in, which relinks (or retires) it. Both unlink
    /// splices are asserted against the derived position in debug builds.
    ///
    /// [`push`]: EventQueue::push
    /// [`place`]: EventQueue::place
    pub(crate) fn cancel(&mut self, idx: u32, slot: u32) -> bool {
        let Some(&e) = self.entries.get(idx as usize) else {
            return false;
        };
        if e.prev == UNLINKED || e.key.slot != slot {
            return false;
        }
        let t = tick(e.key.time.0);
        let c = tick(self.cur);
        debug_assert!(t > c, "linked entry at or before the current slot");
        let level = ((63 - (t ^ c).leading_zeros()) / LEVEL_BITS) as usize;
        debug_assert!(level < LEVELS, "linked entry beyond the wheel horizon");
        let wslot = (t >> (LEVEL_BITS * level as u32)) as usize & (SLOTS - 1);
        if e.prev == NIL {
            debug_assert_eq!(self.heads[level * SLOTS + wslot], idx);
            self.heads[level * SLOTS + wslot] = e.next;
            if e.next == NIL {
                self.occupied[level][wslot / 64] &= !(1 << (wslot % 64));
            }
        } else {
            debug_assert_eq!(self.entries[e.prev as usize].next, idx);
            self.entries[e.prev as usize].next = e.next;
        }
        if e.next != NIL {
            self.entries[e.next as usize].prev = e.prev;
        }
        self.free_entry(idx);
        self.count -= 1;
        true
    }

    /// Re-place a cascading entry relative to the advanced clock, keeping
    /// its index when it lands in a lower wheel slot (so outstanding
    /// cancel handles survive the cascade) and retiring it when its key
    /// moves on to the ready or overflow heap.
    fn relocate(&mut self, idx: u32) {
        let key = self.entries[idx as usize].key;
        let t = tick(key.time.0);
        let c = tick(self.cur);
        if t <= c {
            self.ready.push(Reverse(key));
            self.free_entry(idx);
            return;
        }
        let level = ((63 - (t ^ c).leading_zeros()) / LEVEL_BITS) as usize;
        if level >= LEVELS {
            self.overflow.push(Reverse(key));
            self.free_entry(idx);
            return;
        }
        self.link(
            idx,
            level,
            (t >> (LEVEL_BITS * level as u32)) as usize & (SLOTS - 1),
        );
    }

    /// First occupied slot of `level` at index `from` or later.
    #[inline]
    fn next_occupied(&self, level: usize, from: usize) -> Option<usize> {
        let mut word = from / 64;
        let mut mask = !0u64 << (from % 64);
        while word < SLOTS / 64 {
            let bits = self.occupied[level][word] & mask;
            if bits != 0 {
                return Some(word * 64 + bits.trailing_zeros() as usize);
            }
            word += 1;
            mask = !0;
        }
        None
    }

    /// Move the wheel forward until `ready` holds the earliest pending
    /// events (no-op if the queue is empty). Levels are strictly ordered —
    /// every level-`k` event precedes every level-`k+1` event — so the
    /// first occupied slot found scanning levels bottom-up is the next
    /// slice of time with anything in it.
    fn advance(&mut self) {
        'refill: while self.ready.is_empty() {
            for level in 0..LEVELS {
                let shift = SLOT_SHIFT + LEVEL_BITS * level as u32;
                let cur_slot = (self.cur >> shift) as usize & (SLOTS - 1);
                let Some(s) = self.next_occupied(level, cur_slot + 1) else {
                    continue;
                };
                // Jump the clock to that slot's start...
                self.cur = ((self.cur >> shift & !((SLOTS as u64) - 1)) | s as u64) << shift;
                self.occupied[level][s / 64] &= !(1 << (s % 64));
                let mut idx = std::mem::replace(&mut self.heads[level * SLOTS + s], NIL);
                if level == 0 {
                    // ...and serve its events.
                    while idx != NIL {
                        let Entry { key, next, .. } = self.entries[idx as usize];
                        self.ready.push(Reverse(key));
                        self.free_entry(idx);
                        idx = next;
                    }
                } else {
                    // ...and cascade its events down (all land below
                    // `level` now that the clock shares their upper
                    // ticks): each entry is relinked or retired in O(1),
                    // reusing its index so cancel handles stay valid.
                    while idx != NIL {
                        let next = self.entries[idx as usize].next;
                        self.relocate(idx);
                        idx = next;
                    }
                }
                continue 'refill;
            }
            // Wheel exhausted: re-anchor at the overflow minimum and pull
            // every overflow deadline the wheel can now reach back in.
            let Some(Reverse(min)) = self.overflow.pop() else {
                return;
            };
            self.cur = min.time.0;
            self.ready.push(Reverse(min));
            let horizon = SLOT_SHIFT + LEVEL_BITS * LEVELS as u32;
            while let Some(&Reverse(k)) = self.overflow.peek() {
                if k.time.0 >> horizon != self.cur >> horizon {
                    break;
                }
                let Some(Reverse(k)) = self.overflow.pop() else {
                    unreachable!("peeked above")
                };
                self.place(k);
            }
        }
    }

    /// The earliest pending event, without removing it.
    pub(crate) fn peek(&mut self) -> Option<EventKey> {
        if self.ready.is_empty() {
            self.advance();
        }
        self.ready.peek().map(|&Reverse(k)| k)
    }

    /// Remove and return the earliest pending event.
    pub(crate) fn pop(&mut self) -> Option<EventKey> {
        if self.ready.is_empty() {
            self.advance();
        }
        let Reverse(key) = self.ready.pop()?;
        #[cfg(debug_assertions)]
        {
            debug_assert!(key.time.0 >= self.last_pop, "pop went backwards");
            self.last_pop = key.time.0;
        }
        self.count -= 1;
        Some(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn key(time: u64, seq: u64) -> EventKey {
        EventKey {
            time: Time(time),
            seq,
            slot: seq as u32,
        }
    }

    /// Reference model: the binary heap the wheel replaced, plus the set
    /// of seqs detached by a successful [`EventQueue::cancel`] (the heap
    /// can only tombstone, so its pop skips them).
    #[derive(Default)]
    struct Model {
        heap: BinaryHeap<Reverse<EventKey>>,
        detached: std::collections::HashSet<u64>,
    }

    impl Model {
        fn pop(&mut self) -> Option<EventKey> {
            while let Some(Reverse(k)) = self.heap.pop() {
                if !self.detached.contains(&k.seq) {
                    return Some(k);
                }
            }
            None
        }

        fn peek(&mut self) -> Option<EventKey> {
            while let Some(&Reverse(k)) = self.heap.peek() {
                if !self.detached.contains(&k.seq) {
                    return Some(k);
                }
                self.heap.pop();
            }
            None
        }
    }

    #[test]
    fn cancel_detaches_parked_keys_and_refuses_stale_handles() {
        let mut q = EventQueue::new();
        let far = key(1 << 20, 1);
        let idx = q.push(far);
        assert_ne!(idx, NIL, "far deadline must park on the wheel");
        // Wrong slot: refused, nothing detached.
        assert!(!q.cancel(idx, far.slot + 1));
        // Right handle: detached, gone for good.
        assert!(q.cancel(idx, far.slot));
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        // Second cancel through the now-freed handle: refused.
        assert!(!q.cancel(idx, far.slot));

        // A key that lands in the ready heap is not detachable.
        let near = key(0, 2);
        assert_eq!(q.push(near), NIL);
        assert_eq!(q.pop(), Some(near));

        // A popped key's handle is stale even if the entry was reused.
        let a = key(1 << 20, 3);
        let ia = q.push(a);
        assert!(q.cancel(ia, a.slot));
        let b = key(1 << 21, 4);
        let ib = q.push(b);
        assert_eq!(ia, ib, "freelist should reuse the entry");
        assert!(!q.cancel(ia, a.slot), "stale handle must not detach b");
        assert_eq!(q.pop(), Some(b));
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = EventQueue::new();
        q.push(key(500, 1));
        q.push(key(100, 2));
        q.push(key(100, 3));
        q.push(key(0, 4));
        assert_eq!(q.len(), 4);
        assert_eq!(q.pop(), Some(key(0, 4)));
        assert_eq!(q.pop(), Some(key(100, 2)));
        assert_eq!(q.pop(), Some(key(100, 3)));
        assert_eq!(q.peek(), Some(key(500, 1)));
        assert_eq!(q.pop(), Some(key(500, 1)));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn far_future_deadlines_ride_the_overflow_heap() {
        let mut q = EventQueue::new();
        // Beyond the 2^50 ps wheel horizon (≈ 18 min), plus near events.
        q.push(key(1 << 55, 1));
        q.push(key((1 << 55) + 7, 2));
        q.push(key(3, 3));
        assert_eq!(q.pop(), Some(key(3, 3)));
        assert_eq!(q.pop(), Some(key(1 << 55, 1)));
        // After re-anchoring at the overflow minimum, pushes near the new
        // clock interleave correctly with remaining overflow entries.
        q.push(key((1 << 55) + 2, 4));
        assert_eq!(q.pop(), Some(key((1 << 55) + 2, 4)));
        assert_eq!(q.pop(), Some(key((1 << 55) + 7, 2)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_push_pop_matches_heap_on_fixed_seeds() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        // ISSUE satellite: ≥ 3 seeds of arbitrary interleavings.
        for seed in [1u64, 2, 3, 0xDEAD_BEEF] {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut q = EventQueue::new();
            let mut model = Model::default();
            let mut live: Vec<(u32, EventKey)> = Vec::new();
            let mut now = 0u64;
            let mut seq = 0u64;
            for _ in 0..20_000 {
                let r = rng.gen_range(0..100u32);
                if model.heap.is_empty() || r < 55 {
                    // Mix of near (same-slot), mid (cross-level), and far
                    // (overflow) deadlines.
                    let dt = match rng.gen_range(0..10u32) {
                        0 => 0,
                        1..=4 => rng.gen_range(0..1_000),
                        5..=7 => rng.gen_range(0..2_000_000),
                        8 => rng.gen_range(0..40_000_000_000),
                        _ => rng.gen_range(0..(1u64 << 52)),
                    };
                    let k = key(now + dt, seq);
                    seq += 1;
                    let idx = q.push(k);
                    live.push((idx, k));
                    model.heap.push(Reverse(k));
                } else if r < 85 {
                    let expect = model.pop();
                    let got = q.pop();
                    assert_eq!(got, expect, "seed {seed}");
                    if let Some(k) = got {
                        now = k.time.0;
                        live.retain(|&(_, lk)| lk.seq != k.seq);
                    }
                } else if !live.is_empty() {
                    // Cancel a random scheduled key; on detach the model
                    // tombstones it, on refusal (ready/overflow resident)
                    // both sides keep it and pop it normally.
                    let at = rng.gen_range(0..live.len());
                    let (idx, k) = live.swap_remove(at);
                    if q.cancel(idx, k.slot) {
                        model.detached.insert(k.seq);
                    }
                }
            }
            while let Some(expect) = model.pop() {
                assert_eq!(q.pop(), Some(expect), "drain, seed {seed}");
            }
            assert_eq!(q.pop(), None);
            assert!(q.is_empty(), "detached keys must not linger, seed {seed}");
        }
    }

    /// One step of the property-test interleaving: push a deadline `dt`
    /// past the last popped time, pop (and check) `n` events, or cancel
    /// one of the currently scheduled keys.
    #[derive(Debug, Clone)]
    enum Op {
        Push(u64),
        Pop(u8),
        Cancel(u8),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        use rand::Rng;
        prop_oneof![
            // Deadline deltas spanning every placement class: current
            // slot, each wheel level, and the overflow heap.
            proptest::strategy::fn_strategy(|rng: &mut proptest::strategy::TestRng| {
                let bits = rng.gen_range(0..54u32);
                Op::Push(rng.gen_range(0..=(1u64 << bits)))
            }),
            (1u8..8).prop_map(Op::Pop),
            any::<u8>().prop_map(Op::Cancel),
        ]
    }

    proptest! {
        /// The wheel is observationally identical to the reference binary
        /// heap under arbitrary schedule/advance interleavings: same
        /// events, same order, same timestamps.
        #[test]
        fn wheel_matches_heap_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
            let mut q = EventQueue::new();
            let mut model = Model::default();
            let mut live: Vec<(u32, EventKey)> = Vec::new();
            let mut now = 0u64;
            let mut seq = 0u64;
            for op in ops {
                match op {
                    Op::Push(dt) => {
                        let k = key(now + dt, seq);
                        seq += 1;
                        let idx = q.push(k);
                        live.push((idx, k));
                        model.heap.push(Reverse(k));
                    }
                    Op::Pop(n) => {
                        for _ in 0..n {
                            let expect = model.pop();
                            prop_assert_eq!(q.peek(), expect);
                            prop_assert_eq!(q.pop(), expect);
                            if let Some(k) = expect {
                                now = k.time.0;
                                live.retain(|&(_, lk)| lk.seq != k.seq);
                            }
                        }
                    }
                    Op::Cancel(pick) => {
                        if live.is_empty() {
                            continue;
                        }
                        let at = pick as usize % live.len();
                        let (idx, k) = live.swap_remove(at);
                        if q.cancel(idx, k.slot) {
                            model.detached.insert(k.seq);
                        }
                        prop_assert_eq!(q.peek(), model.peek());
                    }
                }
            }
            while let Some(expect) = model.pop() {
                prop_assert_eq!(q.pop(), Some(expect));
            }
            prop_assert_eq!(q.pop(), None);
            prop_assert!(q.is_empty());
        }
    }
}
