//! The [`Node`] trait and the per-event [`Ctx`] handle.
//!
//! Everything attached to the simulated network — hosts, switches, proxies,
//! offload boxes — implements [`Node`]. The simulator delivers packets and
//! timer expirations to nodes; nodes react by sending packets out their
//! ports and arming timers through the [`Ctx`] they are handed.
//!
//! Nodes are identified by [`NodeId`] and own a set of numbered ports
//! ([`PortId`]); a port is connected to exactly one link.

use std::any::Any;

use serde::Serialize;

use crate::packet::Packet;

/// Identifies a node within one simulator instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub struct NodeId(pub usize);

/// Identifies a port on a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub struct PortId(pub usize);

/// Identifies an armed timer, for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(pub u64);

/// Administrative fault transitions delivered to [`Node::on_fault`].
///
/// A crash means the device loses all volatile state: forwarding caches,
/// policy accounting, buffered segments. While crashed, the simulator
/// destroys packets addressed to the node and swallows its timers, so the
/// hook only needs to reset in-memory structures. On restart the node must
/// re-arm any periodic timers it relies on (they were swallowed during the
/// outage).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeFault {
    /// The device is going down; drop volatile state.
    Crash,
    /// The device is coming back up; re-initialize and re-arm timers.
    Restart,
}

/// A participant in the simulation.
///
/// `Any` is a supertrait so harness code can downcast a finished node back
/// to its concrete type and read results out of it
/// (see [`Simulator::node_as`](crate::engine::Simulator::node_as)).
pub trait Node: Any {
    /// A packet arrived on `port`.
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, port: PortId, pkt: Packet);

    /// A burst of packets arrived on `port` at the same instant (the
    /// engine coalesces simultaneous arrivals on one link — possible only
    /// for zero-serialization frames — into a single call). The default
    /// delivers them one by one through [`on_packet`](Node::on_packet);
    /// a device may override it to amortize per-burst work. Contract:
    /// drain `pkts` completely, in order. Delivery traces and counters
    /// for the whole burst are recorded before this is called.
    fn on_packet_batch(&mut self, ctx: &mut Ctx<'_>, port: PortId, pkts: &mut Vec<Packet>) {
        for pkt in pkts.drain(..) {
            self.on_packet(ctx, port, pkt);
        }
    }

    /// A timer armed with `token` fired.
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        let _ = (ctx, token);
    }

    /// Called once when the simulation starts, before any event runs.
    /// Endpoints typically arm their first send here.
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let _ = ctx;
    }

    /// An administrative fault (crash or restart) was applied to this node
    /// by a fault scheduler. Default: ignore — a node with no volatile
    /// network state needs no handling.
    fn on_fault(&mut self, ctx: &mut Ctx<'_>, fault: NodeFault) {
        let _ = (ctx, fault);
    }

    /// Human-readable name for traces.
    fn name(&self) -> &str {
        "node"
    }

    /// Report this node's local accounting counters for the conservation
    /// audit ([`Simulator::audit`](crate::engine::Simulator::audit)): add
    /// every counter the node keeps locally into `out`. The audit checks
    /// that the sum over all nodes matches the registry mirrors, so a
    /// device that bumps a local counter without its registry mirror (or
    /// vice versa) is caught. Default: report nothing.
    fn audit_counters(&self, out: &mut NodeAuditCounters) {
        let _ = out;
    }
}

/// Sum of node-local accounting counters, gathered via
/// [`Node::audit_counters`] and reconciled against the metrics registry at
/// audit time. Every field corresponds 1:1 to a registry metric.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeAuditCounters {
    /// Packets this node's integrity check rejected
    /// (mirror: `Metric::PktsMalformed`).
    pub malformed: u64,
    /// Packets discarded for lack of a route (mirror: `Metric::PktsNoRoute`).
    pub no_route: u64,
    /// Packets dropped by an admission policy
    /// (mirror: `Metric::PktsPolicyDropped`).
    pub policy_dropped: u64,
    /// Messages submitted to a sending transport
    /// (mirror: `Metric::MsgsSubmitted`).
    pub msgs_submitted: u64,
    /// Messages fully acknowledged at a sender
    /// (mirror: `Metric::MsgsCompleted`).
    pub msgs_completed: u64,
    /// Messages delivered first-copy at a sink
    /// (mirror: `Metric::MsgsDelivered`).
    pub msgs_delivered: u64,
    /// First-copy payload bytes delivered at a sink
    /// (mirror: `Metric::GoodputBytes`).
    pub goodput_bytes: u64,
    /// Retransmission timeouts fired (mirror: `Metric::Timeouts`).
    pub timeouts: u64,
    /// Data retransmissions sent (mirror: `Metric::Retransmissions`).
    pub retransmissions: u64,
}

/// Handle given to a node while it processes an event. All interaction with
/// the simulated world goes through this: reading the clock, transmitting,
/// arming timers, inspecting the node's own egress queues.
pub struct Ctx<'a> {
    pub(crate) inner: &'a mut crate::engine::SimInner,
    pub(crate) node: NodeId,
}

impl Ctx<'_> {
    /// The current simulation time.
    pub fn now(&self) -> crate::time::Time {
        self.inner.now
    }

    /// The id of the node processing this event.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// Transmit `pkt` out of `port`. The packet is serialized immediately if
    /// the link is idle, otherwise offered to the port's queue discipline
    /// (which may mark, trim, or drop it).
    ///
    /// # Panics
    /// Panics if `port` is not connected to a link — that is a topology
    /// wiring bug, not a runtime condition.
    pub fn send(&mut self, port: PortId, pkt: Packet) {
        self.inner.send_from(self.node, port, pkt);
    }

    /// Arm a timer to fire after `delay`; `token` is handed back to
    /// [`Node::on_timer`]. Returns an id usable with
    /// [`cancel_timer`](Self::cancel_timer).
    pub fn set_timer(&mut self, delay: crate::time::Duration, token: u64) -> TimerId {
        let at = self.inner.now + delay;
        self.inner.schedule_timer(at, self.node, token)
    }

    /// Arm a timer at an absolute time.
    pub fn set_timer_at(&mut self, at: crate::time::Time, token: u64) -> TimerId {
        self.inner.schedule_timer(at, self.node, token)
    }

    /// Cancel a previously armed timer in O(1). Cancelling an already-fired
    /// or already-cancelled timer is a no-op (the id's generation no longer
    /// matches), and leaves no state behind.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.inner.cancel_timer(id);
    }

    /// Number of packets queued at this node's egress `port`
    /// (not counting a packet currently being serialized).
    pub fn egress_len_pkts(&self, port: PortId) -> usize {
        self.inner.egress_queue_len(self.node, port).0
    }

    /// Number of bytes queued at this node's egress `port`.
    pub fn egress_len_bytes(&self, port: PortId) -> usize {
        self.inner.egress_queue_len(self.node, port).1
    }

    /// True if `port` is connected to a link.
    pub fn port_connected(&self, port: PortId) -> bool {
        self.inner.port_connected(self.node, port)
    }

    /// Deterministic per-simulation random source.
    pub fn rng(&mut self) -> &mut rand::rngs::SmallRng {
        &mut self.inner.rng
    }

    /// Add `n` to registry counter `m`. Recording is a plain array add —
    /// no allocation, safe in the hottest device paths; a no-op when the
    /// crate is built with `telemetry-off`.
    pub fn count(&mut self, m: mtp_telemetry::Metric, n: u64) {
        self.inner.telemetry.count(m, n);
    }

    /// Move registry gauge `g` by `d`.
    pub fn gauge_add(&mut self, g: mtp_telemetry::Gauge, d: i64) {
        self.inner.telemetry.gauge_add(g, d);
    }

    /// Record sample `v` into registry histogram `h`.
    pub fn record_hist(&mut self, h: mtp_telemetry::HistId, v: u64) {
        self.inner.telemetry.record(h, v);
    }

    /// Record a [`TraceKind::NoRoute`](crate::tracefile::TraceKind::NoRoute)
    /// event: this node is discarding `pkt` because no forwarding entry
    /// covers it. `in_port` is where the packet arrived. Also bumps the
    /// registry's `pkts_no_route` mirror, which the audit reconciles
    /// against the node's own counter.
    pub fn trace_no_route(&mut self, pkt: &Packet, in_port: PortId) {
        self.inner
            .telemetry
            .count(mtp_telemetry::Metric::PktsNoRoute, 1);
        self.inner.trace(
            pkt.id,
            self.node,
            in_port,
            crate::tracefile::TraceKind::NoRoute,
        );
    }

    /// Record a [`TraceKind::Malformed`](crate::tracefile::TraceKind::Malformed)
    /// event: this node's integrity check rejected `pkt` (header CRC
    /// failure, truncated frame, or payload checksum failure at a consuming
    /// endpoint) and is discarding it. `in_port` is where it arrived. Also
    /// bumps the registry's `pkts_malformed` mirror, which the audit
    /// reconciles against the node's own counter.
    pub fn trace_malformed(&mut self, pkt: &Packet, in_port: PortId) {
        self.inner
            .telemetry
            .count(mtp_telemetry::Metric::PktsMalformed, 1);
        self.inner.trace(
            pkt.id,
            self.node,
            in_port,
            crate::tracefile::TraceKind::Malformed,
        );
    }
}
