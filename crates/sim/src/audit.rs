//! Packet-conservation audit.
//!
//! Every packet offered to a link must end up in exactly one place:
//! transmitted, dropped by a queue discipline, destroyed by a fault, still
//! queued, or still serializing. Every transmitted packet must be
//! delivered, destroyed at a crashed destination, or still propagating.
//! Bytes obey the same laws with two extra sinks (NDP trim loss and
//! corruption truncation loss). [`Simulator::audit`] checks all of these
//! at any instant — the laws carry "still in flight" terms, so no
//! quiescence is required — plus two cross-checks that only exist to catch
//! accounting bugs:
//!
//! * every engine counter has a mirror in the metrics registry, and the
//!   two are summed independently, so a site that bumps one but not the
//!   other fails the audit;
//! * every node's local counters ([`Node::audit_counters`]) are reconciled
//!   against the registry mirrors recorded through [`Ctx`]
//!   (`trace_malformed`, `trace_no_route`, `Ctx::count`).
//!
//! The registry cross-checks are skipped under `telemetry-off` (the
//! registry reads zero); the engine-level laws always run.
//!
//! [`Node::audit_counters`]: crate::node::Node::audit_counters
//! [`Ctx`]: crate::node::Ctx

use mtp_telemetry::{Gauge, Metric};

use crate::engine::Simulator;
use crate::node::NodeAuditCounters;

/// The result of a conservation audit: empty `violations` means every law
/// held.
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// One human-readable line per violated law.
    pub violations: Vec<String>,
    /// Directed links covered by the per-link laws.
    pub links_checked: usize,
    /// Conservation laws evaluated (per-link laws count once per link).
    pub laws_checked: usize,
}

impl AuditReport {
    /// True if every law held.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Panic with the full violation list unless every law held. When a
    /// flight recorder is armed, the panic unwinds through the simulator's
    /// `Drop`, which dumps the ring to `results/flightrec-<name>.json`.
    #[track_caller]
    pub fn assert_ok(&self) {
        assert!(self.ok(), "conservation audit failed:\n{self}");
    }
}

impl std::fmt::Display for AuditReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.violations.is_empty() {
            write!(
                f,
                "audit ok: {} laws over {} links",
                self.laws_checked, self.links_checked
            )
        } else {
            for v in &self.violations {
                writeln!(f, "  VIOLATION: {v}")?;
            }
            write!(
                f,
                "  ({} of {} laws violated over {} links)",
                self.violations.len(),
                self.laws_checked,
                self.links_checked
            )
        }
    }
}

/// Shared test-support teardown: audit `sim` and panic with the full
/// violation list if any conservation law failed. Every integration suite
/// and figure binary calls this once per simulation, after its last
/// `run_until`, so a counter that drifts anywhere in the workspace fails
/// loudly. (If a flight recorder is armed the panic dumps it on the way
/// out.)
#[track_caller]
pub fn assert_conservation(sim: &Simulator) {
    sim.audit().assert_ok();
}

/// Engine-side sums that must equal their registry mirrors.
#[derive(Default)]
struct EngineSums {
    offered_pkts: u64,
    offered_bytes: u64,
    tx_pkts: u64,
    tx_bytes: u64,
    dropped_pkts: u64,
    dropped_bytes: u64,
    marked_pkts: u64,
    trimmed_pkts: u64,
    trim_loss_bytes: u64,
    corrupt_loss_bytes: u64,
    faulted_pkts: u64,
    faulted_bytes: u64,
    corrupted_pkts: u64,
}

impl Simulator {
    /// Check every packet- and byte-conservation law and return the
    /// report. Callable at any point in a run (the laws include in-flight
    /// terms); integration tests and figure binaries call
    /// `sim.audit().assert_ok()` at teardown.
    pub fn audit(&self) -> AuditReport {
        let mut violations = Vec::new();
        let mut laws = 0usize;

        // Packets handed to nodes and still being processed cannot be
        // audited mid-dispatch; `audit` is a harness-level call, so every
        // node slot must be occupied.
        debug_assert!(
            self.nodes.iter().all(Option::is_some),
            "audit called re-entrantly from inside node dispatch"
        );

        let mut sums = EngineSums::default();

        // ---- L1/L3: per-link conservation --------------------------------
        for (i, link) in self.inner.links.iter().enumerate() {
            let s = &link.stats;
            sums.offered_pkts += s.offered_pkts;
            sums.offered_bytes += s.offered_bytes;
            sums.tx_pkts += s.tx_pkts;
            sums.tx_bytes += s.tx_bytes;
            sums.dropped_pkts += s.dropped_pkts;
            sums.dropped_bytes += s.dropped_bytes;
            sums.marked_pkts += s.marked_pkts;
            sums.trimmed_pkts += s.trimmed_pkts;
            sums.trim_loss_bytes += s.trim_loss_bytes;
            sums.corrupt_loss_bytes += s.corrupt_loss_bytes;
            sums.faulted_pkts += s.faulted_pkts;
            sums.faulted_bytes += s.faulted_bytes;
            sums.corrupted_pkts += s.corrupted_pkts;

            let queued_pkts = link.queue.len_pkts() as u64;
            let queued_bytes = link.queue.len_bytes() as u64;
            let (fly_pkts, fly_bytes) = match &link.in_flight {
                Some(p) => (1u64, p.wire_len as u64),
                None => (0, 0),
            };

            laws += 1;
            let pkt_sinks = s.tx_pkts + s.dropped_pkts + s.faulted_pkts + queued_pkts + fly_pkts;
            if s.offered_pkts != pkt_sinks {
                violations.push(format!(
                    "link {i}: packet law: offered {} != tx {} + dropped {} + faulted {} \
                     + queued {queued_pkts} + serializing {fly_pkts} (= {pkt_sinks})",
                    s.offered_pkts, s.tx_pkts, s.dropped_pkts, s.faulted_pkts
                ));
            }

            laws += 1;
            let byte_sinks = s.tx_bytes
                + s.dropped_bytes
                + s.faulted_bytes
                + s.trim_loss_bytes
                + s.corrupt_loss_bytes
                + queued_bytes
                + fly_bytes;
            if s.offered_bytes != byte_sinks {
                violations.push(format!(
                    "link {i}: byte law: offered {} != tx {} + dropped {} + faulted {} \
                     + trim_loss {} + corrupt_loss {} + queued {queued_bytes} \
                     + serializing {fly_bytes} (= {byte_sinks})",
                    s.offered_bytes,
                    s.tx_bytes,
                    s.dropped_bytes,
                    s.faulted_bytes,
                    s.trim_loss_bytes,
                    s.corrupt_loss_bytes
                ));
            }
        }

        // ---- L2/L4: global wire-to-node conservation ---------------------
        // Packets that finished serializing are either delivered, destroyed
        // at a crashed destination, or still propagating (parked in their
        // link's propagation ring — ring entries are never cancelled, so
        // every one is pending).
        let mut prop_pkts = 0u64;
        let mut prop_bytes = 0u64;
        for link in &self.inner.links {
            for (_, _, pkt) in &link.prop {
                prop_pkts += 1;
                prop_bytes += pkt.wire_len as u64;
            }
        }
        // In a sharded run the boundary terms extend the law: packets
        // injected by the runtime (boundary_in) are extra sources, packets
        // handed to the runtime (boundary_out) are extra sinks. A packet
        // staged in the outbox is already counted in boundary_out, so the
        // law holds at any instant — including mid-epoch with boundary
        // traffic in flight. Both terms are zero in non-sharded runs,
        // reducing to the original law.
        laws += 1;
        let tx_sources = sums.tx_pkts + self.inner.boundary_in_pkts;
        let deliver_sinks = self.delivered_pkts
            + self.faulted_deliveries
            + prop_pkts
            + self.inner.boundary_out_pkts;
        if tx_sources != deliver_sinks {
            violations.push(format!(
                "global packet law: tx {} + boundary_in {} != delivered {} \
                 + faulted_deliveries {} + propagating {prop_pkts} \
                 + boundary_out {} (= {deliver_sinks})",
                sums.tx_pkts,
                self.inner.boundary_in_pkts,
                self.delivered_pkts,
                self.faulted_deliveries,
                self.inner.boundary_out_pkts
            ));
        }
        laws += 1;
        let tx_byte_sources = sums.tx_bytes + self.inner.boundary_in_bytes;
        let deliver_byte_sinks = self.delivered_bytes
            + self.faulted_delivery_bytes
            + prop_bytes
            + self.inner.boundary_out_bytes;
        if tx_byte_sources != deliver_byte_sinks {
            violations.push(format!(
                "global byte law: tx {} + boundary_in {} != delivered {} \
                 + faulted_delivery_bytes {} + propagating {prop_bytes} \
                 + boundary_out {} (= {deliver_byte_sinks})",
                sums.tx_bytes,
                self.inner.boundary_in_bytes,
                self.delivered_bytes,
                self.faulted_delivery_bytes,
                self.inner.boundary_out_bytes
            ));
        }

        // ---- L5/L6: registry cross-checks (skipped with telemetry-off) ---
        if mtp_telemetry::ENABLED {
            let reg = &self.inner.telemetry;
            let mirror = |violations: &mut Vec<String>, m: Metric, engine: u64| {
                if reg.get(m) != engine {
                    violations.push(format!(
                        "registry mirror {}: registry {} != engine {engine}",
                        m.name(),
                        reg.get(m)
                    ));
                }
            };
            let mirrors: &[(Metric, u64)] = &[
                (Metric::PktsOffered, sums.offered_pkts),
                (Metric::BytesOffered, sums.offered_bytes),
                (Metric::PktsTx, sums.tx_pkts),
                (Metric::BytesTx, sums.tx_bytes),
                (Metric::PktsDropped, sums.dropped_pkts),
                (Metric::BytesDropped, sums.dropped_bytes),
                (Metric::PktsMarked, sums.marked_pkts),
                (Metric::PktsTrimmed, sums.trimmed_pkts),
                (Metric::BytesTrimLoss, sums.trim_loss_bytes),
                (Metric::BytesCorruptLoss, sums.corrupt_loss_bytes),
                (Metric::PktsFaulted, sums.faulted_pkts),
                (Metric::BytesFaulted, sums.faulted_bytes),
                (Metric::PktsCorrupted, sums.corrupted_pkts),
                (Metric::PktsDelivered, self.delivered_pkts),
                (Metric::BytesDelivered, self.delivered_bytes),
                (Metric::FaultedDeliveries, self.faulted_deliveries),
                (Metric::BytesFaultedDeliveries, self.faulted_delivery_bytes),
                (Metric::CorruptedDestroyed, self.inner.corrupted_destroyed),
                (Metric::PktsBoundaryOut, self.inner.boundary_out_pkts),
                (Metric::BytesBoundaryOut, self.inner.boundary_out_bytes),
                (Metric::PktsBoundaryIn, self.inner.boundary_in_pkts),
                (Metric::BytesBoundaryIn, self.inner.boundary_in_bytes),
            ];
            for &(m, engine) in mirrors {
                laws += 1;
                mirror(&mut violations, m, engine);
            }

            laws += 1;
            let links_down = self.inner.links.iter().filter(|l| !l.up).count() as i64;
            if reg.gauge(Gauge::LinksDown) != links_down {
                violations.push(format!(
                    "gauge links_down: registry {} != engine {links_down}",
                    reg.gauge(Gauge::LinksDown)
                ));
            }
            laws += 1;
            let nodes_down = self.node_up.iter().filter(|up| !**up).count() as i64;
            if reg.gauge(Gauge::NodesDown) != nodes_down {
                violations.push(format!(
                    "gauge nodes_down: registry {} != engine {nodes_down}",
                    reg.gauge(Gauge::NodesDown)
                ));
            }

            // Node-local counters vs the registry mirrors recorded through
            // Ctx. This is the message ledger too: submitted/completed/
            // delivered/goodput reconcile endpoint accounting end to end.
            let mut node_sums = NodeAuditCounters::default();
            for node in self.nodes.iter().flatten() {
                node.audit_counters(&mut node_sums);
            }
            let node_mirrors: &[(Metric, u64, &str)] = &[
                (Metric::PktsMalformed, node_sums.malformed, "malformed"),
                (Metric::PktsNoRoute, node_sums.no_route, "no_route"),
                (
                    Metric::PktsPolicyDropped,
                    node_sums.policy_dropped,
                    "policy_dropped",
                ),
                (
                    Metric::MsgsSubmitted,
                    node_sums.msgs_submitted,
                    "msgs_submitted",
                ),
                (
                    Metric::MsgsCompleted,
                    node_sums.msgs_completed,
                    "msgs_completed",
                ),
                (
                    Metric::MsgsDelivered,
                    node_sums.msgs_delivered,
                    "msgs_delivered",
                ),
                (
                    Metric::GoodputBytes,
                    node_sums.goodput_bytes,
                    "goodput_bytes",
                ),
                (Metric::Timeouts, node_sums.timeouts, "timeouts"),
                (
                    Metric::Retransmissions,
                    node_sums.retransmissions,
                    "retransmissions",
                ),
            ];
            for &(m, node_total, label) in node_mirrors {
                laws += 1;
                if reg.get(m) != node_total {
                    violations.push(format!(
                        "node ledger {label}: registry {} {} != node-local sum {node_total}",
                        m.name(),
                        reg.get(m)
                    ));
                }
            }
        }

        AuditReport {
            violations,
            links_checked: self.inner.links.len(),
            laws_checked: laws,
        }
    }
}
