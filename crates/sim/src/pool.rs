//! Thread-local free-list pool for `Box<MtpHeader>` allocations.
//!
//! Every MTP data packet and ACK carries a boxed header; in a large run the
//! engine would otherwise hit the allocator twice per packet (once to box
//! the header, once to free it when the packet is consumed or dropped).
//! Instead, consumers hand finished headers back with [`recycle_header`]
//! (or whole packets with [`recycle_packet`]) and producers draw from the
//! pool with [`boxed`] / [`take_header`].
//!
//! The pool is thread-local because the simulator itself is single-
//! threaded; parallel seed sweeps (one simulator per thread) each get
//! their own pool with no synchronization.
//!
//! Recycled headers are [`MtpHeader::reset`] on the way out, which clears
//! the variable-length sections but keeps their heap capacity, so steady-
//! state ACK traffic with SACK blocks stops allocating entirely.

use std::cell::RefCell;

use mtp_wire::MtpHeader;

use crate::packet::{Headers, Packet};

thread_local! {
    // The boxes themselves are the pooled resource: they move in and out
    // of `Packet`s without reallocation.
    #[allow(clippy::vec_box)]
    static POOL: RefCell<Vec<Box<MtpHeader>>> = const { RefCell::new(Vec::new()) };

    // Byte buffers for `Headers::Mangled` wire images: the corruption
    // path seals a header into one of these per damaged frame, and
    // `sanitize` / `recycle_packet` hand the buffer back, so steady-state
    // corruption runs stop allocating.
    static BUFS: RefCell<Vec<Vec<u8>>> = const { RefCell::new(Vec::new()) };
}

/// Upper bound on pooled boxes; beyond this, recycled headers are freed
/// normally so a burst does not pin memory forever.
const POOL_CAP: usize = 4096;

/// Upper bound on pooled mangled-wire buffers.
const BUF_CAP: usize = 1024;

/// An empty byte buffer for a sealed wire image, reusing a recycled
/// allocation (and its capacity) if one is available.
pub fn take_buf() -> Vec<u8> {
    BUFS.with(|p| p.borrow_mut().pop()).unwrap_or_default()
}

/// Return a mangled-wire buffer's allocation to the pool.
pub fn recycle_buf(mut buf: Vec<u8>) {
    buf.clear();
    BUFS.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < BUF_CAP {
            pool.push(buf);
        }
    });
}

/// A default-valued boxed header, reusing a recycled allocation if one is
/// available.
pub fn take_header() -> Box<MtpHeader> {
    match POOL.with(|p| p.borrow_mut().pop()) {
        Some(mut b) => {
            b.reset();
            b
        }
        None => Box::default(),
    }
}

/// Box `hdr`, reusing a recycled allocation if one is available.
pub fn boxed(hdr: MtpHeader) -> Box<MtpHeader> {
    match POOL.with(|p| p.borrow_mut().pop()) {
        Some(mut b) => {
            *b = hdr;
            b
        }
        None => Box::new(hdr),
    }
}

/// Return a finished header's allocation to the pool.
pub fn recycle_header(hdr: Box<MtpHeader>) {
    POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < POOL_CAP {
            pool.push(hdr);
        }
    });
}

/// Return the header allocation(s) of a packet that will never be
/// delivered (e.g. tail-dropped by a queue discipline).
pub fn recycle_packet(pkt: Packet) {
    match pkt.headers {
        Headers::Mtp(hdr) | Headers::Bridged { mtp: hdr, .. } => recycle_header(hdr),
        Headers::Mangled { bytes, .. } => recycle_buf(bytes),
        _ => {}
    }
}

/// Number of boxes currently pooled on this thread (for tests).
pub fn pooled() -> usize {
    POOL.with(|p| p.borrow().len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycled_header_comes_back_reset_with_capacity() {
        let mut h = MtpHeader {
            src_port: 9,
            ..MtpHeader::default()
        };
        h.sack.reserve(32);
        let cap = h.sack.capacity();
        recycle_header(Box::new(h));
        let got = take_header();
        assert_eq!(got.src_port, 0, "recycled header must be reset");
        assert!(got.sack.is_empty());
        assert!(got.sack.capacity() >= cap, "capacity must be retained");
    }

    #[test]
    fn recycle_packet_reclaims_mtp_headers() {
        let before = pooled();
        let pkt = Packet::new(Headers::Mtp(Box::default()), 1500);
        recycle_packet(pkt);
        assert_eq!(pooled(), before + 1);
        let raw = Packet::new(Headers::Raw, 100);
        recycle_packet(raw);
        assert_eq!(pooled(), before + 1, "raw packets have nothing to pool");
    }
}
