//! The simulated packet.
//!
//! A [`Packet`] models one frame on the wire: a typed transport header, an
//! IP-level ECN codepoint, a total wire length (which determines
//! serialization time), and an optional application payload tag used by
//! offloads that actually inspect data (the in-network KVS cache, the
//! compression offload). Payload *bytes* are not simulated — only their
//! length — except where an offload needs content, in which case the
//! compact [`AppData`] tag stands in for it.

use serde::{Deserialize, Serialize};

use mtp_wire::{EcnCodepoint, MtpHeader, TcpHeader};

use crate::time::Time;

/// Globally unique packet identifier (assigned by the simulator, never
/// reused; survives forwarding but not mutation-into-new-packets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PacketId(pub u64);

/// Which wire format a [`Headers::Mangled`] byte buffer originally held.
///
/// Corruption turns a structured header into bytes (the sealed wire form
/// with the fault's bit-flips applied); the receiver-side verifier needs to
/// know which parser to run, exactly as a real NIC knows the ethertype of a
/// frame whose contents it has not yet trusted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WireProto {
    /// A native MTP packet (sealed MTP header bytes).
    Mtp,
    /// A TCP segment (sealed TCP header bytes).
    Tcp,
    /// An MTP-in-TCP bridged packet (sealed TCP header, bridge preamble,
    /// sealed MTP header).
    Bridged,
}

/// The transport header carried by a packet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Headers {
    /// A TCP segment (baseline transports).
    Tcp(TcpHeader),
    /// An MTP packet. Boxed: the header contains variable-length lists and
    /// dominates `Packet`'s size otherwise.
    Mtp(Box<MtpHeader>),
    /// An MTP packet encapsulated in a TCP segment for transit across a
    /// legacy TCP island (paper §4, "Interaction with TCP"): legacy
    /// devices see a well-formed TCP segment, MTP bridges recover the
    /// full header.
    Bridged {
        /// The outer TCP segment visible to legacy devices.
        tcp: TcpHeader,
        /// The encapsulated MTP header.
        mtp: Box<MtpHeader>,
    },
    /// A raw frame with no modelled transport header (background traffic).
    Raw,
    /// A header whose wire bytes took corruption in flight. The structured
    /// form is gone — all that remains is the (sealed) byte serialization
    /// with the fault's damage applied, which every receiver must verify
    /// before trusting. Built only by the engine's corruption faults.
    Mangled {
        /// Which wire format the bytes held before corruption.
        proto: WireProto,
        /// The damaged sealed wire bytes (possibly truncated).
        bytes: Vec<u8>,
    },
}

impl Headers {
    /// Convenience: borrow the MTP header if this is a *native* MTP packet
    /// (bridged packets deliberately do NOT match: legacy-facing code must
    /// treat them as TCP).
    pub fn as_mtp(&self) -> Option<&MtpHeader> {
        match self {
            Headers::Mtp(h) => Some(h),
            _ => None,
        }
    }

    /// Convenience: mutably borrow the MTP header if this is a native MTP
    /// packet.
    pub fn as_mtp_mut(&mut self) -> Option<&mut MtpHeader> {
        match self {
            Headers::Mtp(h) => Some(h),
            _ => None,
        }
    }

    /// Convenience: borrow the TCP header if this is a TCP segment —
    /// including the outer header of a bridged MTP packet.
    pub fn as_tcp(&self) -> Option<&TcpHeader> {
        match self {
            Headers::Tcp(h) => Some(h),
            Headers::Bridged { tcp, .. } => Some(tcp),
            _ => None,
        }
    }

    /// Borrow the encapsulated MTP header of a bridged packet.
    pub fn as_bridged(&self) -> Option<(&TcpHeader, &MtpHeader)> {
        match self {
            Headers::Bridged { tcp, mtp } => Some((tcp, mtp)),
            _ => None,
        }
    }
}

/// Compact stand-in for application payload content, used only by offloads
/// that inspect data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AppData {
    /// A key-value GET request for `key`.
    KvGet {
        /// The requested key.
        key: u64,
    },
    /// A key-value PUT request for `key`.
    KvPut {
        /// The written key.
        key: u64,
    },
    /// A key-value reply.
    KvReply {
        /// The key the reply is for.
        key: u64,
        /// Whether an in-network cache answered it (vs. a backend).
        from_cache: bool,
    },
    /// Opaque application tag (e.g. which blob a packet belongs to).
    Opaque(u64),
}

/// One simulated frame.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Packet {
    /// Unique id, for tracing and debugging.
    pub id: PacketId,
    /// Total bytes this frame occupies on the wire (headers + payload).
    /// Serialization delay is `wire_len / link_rate`.
    pub wire_len: u32,
    /// IP-level ECN codepoint.
    pub ecn: EcnCodepoint,
    /// Transport header.
    pub headers: Headers,
    /// Optional content tag for data-inspecting offloads.
    pub app: Option<AppData>,
    /// When the original sender transmitted this packet (set once by the
    /// sending endpoint; used for delay-based feedback and FCT accounting).
    pub sent_at: Time,
    /// True if a corruption fault hit the *payload* region of the frame
    /// (the header survived). Receivers model a payload-checksum failure:
    /// data packets so marked are dropped and counted, never delivered to
    /// the application.
    pub payload_dirty: bool,
}

impl Packet {
    /// Build a packet with the given header and wire length. The simulator
    /// fills in `id`; endpoints fill in `sent_at`.
    pub fn new(headers: Headers, wire_len: u32) -> Packet {
        Packet {
            id: PacketId(0),
            wire_len,
            ecn: EcnCodepoint::Ect0,
            headers,
            app: None,
            sent_at: Time::ZERO,
            payload_dirty: false,
        }
    }

    /// Attach an application content tag.
    pub fn with_app(mut self, app: AppData) -> Packet {
        self.app = Some(app);
        self
    }

    /// Mark the packet not-ECN-capable (it will be dropped, not marked, at
    /// an ECN queue).
    pub fn without_ect(mut self) -> Packet {
        self.ecn = EcnCodepoint::NotEct;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_accessors() {
        let mut p = Packet::new(Headers::Mtp(Box::default()), 1500);
        assert!(p.headers.as_mtp().is_some());
        assert!(p.headers.as_tcp().is_none());
        p.headers.as_mtp_mut().unwrap().msg_pri = 9;
        assert_eq!(p.headers.as_mtp().unwrap().msg_pri, 9);

        let t = Packet::new(Headers::Tcp(TcpHeader::default()), 64);
        assert!(t.headers.as_tcp().is_some());
        assert!(t.headers.as_mtp().is_none());
    }

    #[test]
    fn builders() {
        let p = Packet::new(Headers::Raw, 100)
            .with_app(AppData::KvGet { key: 7 })
            .without_ect();
        assert_eq!(p.app, Some(AppData::KvGet { key: 7 }));
        assert!(!p.ecn.is_ect());
    }
}
