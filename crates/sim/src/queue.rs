//! Egress queue disciplines.
//!
//! Every link direction owns a queue discipline. The experiments use:
//!
//! * [`DropTailQueue`] — plain FIFO with a packet-count capacity;
//! * [`EcnQueue`] — FIFO with DCTCP-style marking: packets enqueued while
//!   the instantaneous queue length is at or above threshold `K` get their
//!   CE bit set (paper Fig. 5 uses buffer = 128 pkts, K = 20 pkts);
//! * [`DrrQueue`] — deficit-round-robin over several bands with a
//!   classifier, modelling per-tenant/per-TC *separate queues*
//!   (the "expensive" middle system of paper Fig. 7);
//! * [`PriorityQueue`] — strict priority over bands (control/retransmit
//!   fast-path, message-priority scheduling);
//! * [`TrimmingQueue`] — NDP-style: on overflow of the data band, the
//!   packet's payload is trimmed and the header is forwarded through a
//!   strict-priority control band (paper §4: "switches generate NACKs to
//!   implement packet trimming").
//!
//! Marking happens at enqueue time against the instantaneous queue length,
//! matching the DCTCP paper and ns-3's `RedQueueDisc` in DCTCP mode.

use mtp_wire::types::flags;
use mtp_wire::EcnCodepoint;

use crate::packet::Packet;
use crate::time::Time;
use std::collections::VecDeque;

/// What happened when a packet was offered to a queue.
#[derive(Debug)]
pub enum EnqueueVerdict {
    /// The packet was queued; `marked` reports whether CE was newly set.
    Queued {
        /// True if this enqueue set the CE codepoint.
        marked: bool,
    },
    /// The packet was dropped; it is handed back for accounting.
    Dropped(Packet),
    /// The packet's payload was trimmed to headers and the header packet
    /// was queued (NDP-style).
    Trimmed,
}

/// A queue discipline attached to one link direction.
pub trait Qdisc {
    /// Offer a packet to the queue at time `now`.
    fn enqueue(&mut self, pkt: Packet, now: Time) -> EnqueueVerdict;

    /// Take the next packet to serialize, if any.
    fn dequeue(&mut self, now: Time) -> Option<Packet>;

    /// Number of packets currently queued.
    fn len_pkts(&self) -> usize;

    /// Number of bytes currently queued.
    fn len_bytes(&self) -> usize;

    /// True if nothing is queued.
    fn is_empty(&self) -> bool {
        self.len_pkts() == 0
    }

    /// True if, in the discipline's *current* state, offering a packet and
    /// immediately dequeuing it would observably be a no-op: the verdict
    /// would be `Queued { marked: false }`, the same unmodified packet
    /// would come back, and no internal state (scheduler rotation,
    /// deficits, RNG) would change. The engine uses this to bypass the
    /// queue entirely when the link is idle. Disciplines with scheduling
    /// state or randomness must keep the conservative default of `false`.
    fn transparent_when_idle(&self) -> bool {
        false
    }
}

/// Plain FIFO with a packet-count capacity.
#[derive(Debug)]
pub struct DropTailQueue {
    q: VecDeque<Packet>,
    cap_pkts: usize,
    bytes: usize,
}

impl DropTailQueue {
    /// A FIFO holding at most `cap_pkts` packets.
    pub fn new(cap_pkts: usize) -> DropTailQueue {
        DropTailQueue {
            q: VecDeque::new(),
            cap_pkts,
            bytes: 0,
        }
    }
}

impl Qdisc for DropTailQueue {
    fn enqueue(&mut self, pkt: Packet, _now: Time) -> EnqueueVerdict {
        if self.q.len() >= self.cap_pkts {
            return EnqueueVerdict::Dropped(pkt);
        }
        self.bytes += pkt.wire_len as usize;
        self.q.push_back(pkt);
        EnqueueVerdict::Queued { marked: false }
    }

    fn dequeue(&mut self, _now: Time) -> Option<Packet> {
        let pkt = self.q.pop_front()?;
        self.bytes -= pkt.wire_len as usize;
        Some(pkt)
    }

    fn len_pkts(&self) -> usize {
        self.q.len()
    }

    fn len_bytes(&self) -> usize {
        self.bytes
    }

    fn transparent_when_idle(&self) -> bool {
        // An empty FIFO with room neither drops nor reorders nor marks.
        self.q.is_empty() && self.cap_pkts > 0
    }
}

/// FIFO with DCTCP-style ECN marking at threshold `k_pkts` and tail drop at
/// `cap_pkts`.
#[derive(Debug)]
pub struct EcnQueue {
    q: VecDeque<Packet>,
    cap_pkts: usize,
    k_pkts: usize,
    bytes: usize,
}

impl EcnQueue {
    /// A marking FIFO: capacity `cap_pkts`, marking threshold `k_pkts`.
    pub fn new(cap_pkts: usize, k_pkts: usize) -> EcnQueue {
        assert!(k_pkts <= cap_pkts, "marking threshold above capacity");
        EcnQueue {
            q: VecDeque::new(),
            cap_pkts,
            k_pkts,
            bytes: 0,
        }
    }

    /// The marking threshold in packets.
    pub fn threshold(&self) -> usize {
        self.k_pkts
    }
}

impl Qdisc for EcnQueue {
    fn enqueue(&mut self, mut pkt: Packet, _now: Time) -> EnqueueVerdict {
        if self.q.len() >= self.cap_pkts {
            return EnqueueVerdict::Dropped(pkt);
        }
        let mut marked = false;
        if self.q.len() >= self.k_pkts && pkt.ecn.is_ect() && !pkt.ecn.is_ce() {
            pkt.ecn = EcnCodepoint::Ce;
            marked = true;
        }
        self.bytes += pkt.wire_len as usize;
        self.q.push_back(pkt);
        EnqueueVerdict::Queued { marked }
    }

    fn dequeue(&mut self, _now: Time) -> Option<Packet> {
        let pkt = self.q.pop_front()?;
        self.bytes -= pkt.wire_len as usize;
        Some(pkt)
    }

    fn len_pkts(&self) -> usize {
        self.q.len()
    }

    fn len_bytes(&self) -> usize {
        self.bytes
    }

    fn transparent_when_idle(&self) -> bool {
        // With `k_pkts > 0`, an enqueue into an empty queue never marks
        // (the instantaneous length 0 is below threshold); with `k == 0`
        // every ECT packet would be marked, so the queue must see it.
        self.q.is_empty() && self.cap_pkts > 0 && self.k_pkts > 0
    }
}

/// Classifies a packet into a band index.
pub type Classifier = Box<dyn Fn(&Packet) -> usize>;

/// Deficit round robin over `n` bands, each its own drop-tail FIFO.
///
/// This is the "separate queues per entity" comparison point of paper
/// Fig. 7: fair, but requires per-entity queue state in the switch.
pub struct DrrQueue {
    bands: Vec<VecDeque<Packet>>,
    deficits: Vec<usize>,
    quantum: usize,
    cap_pkts_per_band: usize,
    classify: Classifier,
    next_band: usize,
    bytes: usize,
    pkts: usize,
    /// Optional ECN threshold applied per band.
    k_pkts: Option<usize>,
}

impl DrrQueue {
    /// A DRR scheduler over `n_bands`, each holding `cap_pkts_per_band`
    /// packets, serving `quantum` bytes per round, classifying packets with
    /// `classify`. `k_pkts` optionally enables per-band ECN marking.
    pub fn new(
        n_bands: usize,
        cap_pkts_per_band: usize,
        quantum: usize,
        k_pkts: Option<usize>,
        classify: Classifier,
    ) -> DrrQueue {
        assert!(n_bands > 0);
        DrrQueue {
            bands: (0..n_bands).map(|_| VecDeque::new()).collect(),
            deficits: vec![0; n_bands],
            quantum,
            cap_pkts_per_band,
            classify,
            next_band: 0,
            bytes: 0,
            pkts: 0,
            k_pkts,
        }
    }
}

impl Qdisc for DrrQueue {
    fn enqueue(&mut self, mut pkt: Packet, _now: Time) -> EnqueueVerdict {
        let band = (self.classify)(&pkt).min(self.bands.len() - 1);
        if self.bands[band].len() >= self.cap_pkts_per_band {
            return EnqueueVerdict::Dropped(pkt);
        }
        let mut marked = false;
        if let Some(k) = self.k_pkts {
            if self.bands[band].len() >= k && pkt.ecn.is_ect() && !pkt.ecn.is_ce() {
                pkt.ecn = EcnCodepoint::Ce;
                marked = true;
            }
        }
        self.bytes += pkt.wire_len as usize;
        self.pkts += 1;
        self.bands[band].push_back(pkt);
        EnqueueVerdict::Queued { marked }
    }

    fn dequeue(&mut self, _now: Time) -> Option<Packet> {
        if self.pkts == 0 {
            return None;
        }
        // Walk bands round-robin, topping up deficits, until one can send.
        // Bounded: each full circuit adds `quantum` to some non-empty band,
        // so at most `ceil(max_pkt/quantum) * n` iterations.
        loop {
            let band = self.next_band;
            if !self.bands[band].is_empty() {
                let head_len = self.bands[band].front().expect("non-empty").wire_len as usize;
                if self.deficits[band] >= head_len {
                    self.deficits[band] -= head_len;
                    let pkt = self.bands[band].pop_front().expect("non-empty");
                    self.bytes -= pkt.wire_len as usize;
                    self.pkts -= 1;
                    if self.bands[band].is_empty() {
                        // A band with nothing queued must not bank credit.
                        self.deficits[band] = 0;
                        self.next_band = (band + 1) % self.bands.len();
                    }
                    return Some(pkt);
                }
                self.deficits[band] += self.quantum;
                self.next_band = (band + 1) % self.bands.len();
            } else {
                self.deficits[band] = 0;
                self.next_band = (band + 1) % self.bands.len();
            }
        }
    }

    fn len_pkts(&self) -> usize {
        self.pkts
    }

    fn len_bytes(&self) -> usize {
        self.bytes
    }
}

/// Strict priority over bands: band 0 is served first.
pub struct PriorityQueue {
    bands: Vec<VecDeque<Packet>>,
    cap_pkts_per_band: usize,
    classify: Classifier,
    bytes: usize,
    pkts: usize,
}

impl PriorityQueue {
    /// A strict-priority scheduler: `classify` maps packets to bands, band 0
    /// is highest priority.
    pub fn new(n_bands: usize, cap_pkts_per_band: usize, classify: Classifier) -> PriorityQueue {
        assert!(n_bands > 0);
        PriorityQueue {
            bands: (0..n_bands).map(|_| VecDeque::new()).collect(),
            cap_pkts_per_band,
            classify,
            bytes: 0,
            pkts: 0,
        }
    }
}

impl Qdisc for PriorityQueue {
    fn enqueue(&mut self, pkt: Packet, _now: Time) -> EnqueueVerdict {
        let band = (self.classify)(&pkt).min(self.bands.len() - 1);
        if self.bands[band].len() >= self.cap_pkts_per_band {
            return EnqueueVerdict::Dropped(pkt);
        }
        self.bytes += pkt.wire_len as usize;
        self.pkts += 1;
        self.bands[band].push_back(pkt);
        EnqueueVerdict::Queued { marked: false }
    }

    fn dequeue(&mut self, _now: Time) -> Option<Packet> {
        for band in &mut self.bands {
            if let Some(pkt) = band.pop_front() {
                self.bytes -= pkt.wire_len as usize;
                self.pkts -= 1;
                return Some(pkt);
            }
        }
        None
    }

    fn len_pkts(&self) -> usize {
        self.pkts
    }

    fn len_bytes(&self) -> usize {
        self.bytes
    }
}

/// NDP-style trimming queue: a data band with capacity and ECN threshold,
/// plus a strict-priority control band. When the data band overflows and the
/// packet carries an MTP header, the payload is trimmed: the wire length
/// shrinks to the header length, the [`flags::TRIMMED`] flag is set, and the
/// header rides the control band so the receiver can NACK immediately.
pub struct TrimmingQueue {
    data: EcnQueue,
    ctrl: VecDeque<Packet>,
    ctrl_cap: usize,
    ctrl_bytes: usize,
}

impl TrimmingQueue {
    /// A trimming queue: data capacity `cap_pkts` / threshold `k_pkts`;
    /// control band holds `ctrl_cap` trimmed headers and ACKs.
    pub fn new(cap_pkts: usize, k_pkts: usize, ctrl_cap: usize) -> TrimmingQueue {
        TrimmingQueue {
            data: EcnQueue::new(cap_pkts, k_pkts),
            ctrl: VecDeque::new(),
            ctrl_cap,
            ctrl_bytes: 0,
        }
    }

    fn push_ctrl(&mut self, pkt: Packet) -> EnqueueVerdict {
        if self.ctrl.len() >= self.ctrl_cap {
            return EnqueueVerdict::Dropped(pkt);
        }
        self.ctrl_bytes += pkt.wire_len as usize;
        self.ctrl.push_back(pkt);
        EnqueueVerdict::Queued { marked: false }
    }
}

impl Qdisc for TrimmingQueue {
    fn enqueue(&mut self, mut pkt: Packet, now: Time) -> EnqueueVerdict {
        // Control traffic (ACKs, already-trimmed headers) rides the
        // priority band unconditionally.
        let is_ctrl = match pkt.headers.as_mtp() {
            Some(h) => h.pkt_type != mtp_wire::PktType::Data || h.flags & flags::TRIMMED != 0,
            None => false,
        };
        if is_ctrl {
            return self.push_ctrl(pkt);
        }
        if self.data.len_pkts() < self.data.cap_pkts {
            return self.data.enqueue(pkt, now);
        }
        // Overflow: trim if possible, drop otherwise.
        match pkt.headers.as_mtp_mut() {
            Some(h) => {
                h.flags |= flags::TRIMMED;
                let hdr_len = h.wire_len() as u32;
                pkt.wire_len = hdr_len;
                match self.push_ctrl(pkt) {
                    EnqueueVerdict::Queued { .. } => EnqueueVerdict::Trimmed,
                    dropped => dropped,
                }
            }
            None => EnqueueVerdict::Dropped(pkt),
        }
    }

    fn dequeue(&mut self, now: Time) -> Option<Packet> {
        if let Some(pkt) = self.ctrl.pop_front() {
            self.ctrl_bytes -= pkt.wire_len as usize;
            return Some(pkt);
        }
        self.data.dequeue(now)
    }

    fn len_pkts(&self) -> usize {
        self.ctrl.len() + self.data.len_pkts()
    }

    fn len_bytes(&self) -> usize {
        self.ctrl_bytes + self.data.len_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Headers;
    use mtp_wire::{MtpHeader, PktType};

    fn pkt(len: u32) -> Packet {
        Packet::new(Headers::Raw, len)
    }

    fn mtp_pkt(len: u32, pkt_type: PktType) -> Packet {
        let hdr = MtpHeader {
            pkt_type,
            ..MtpHeader::default()
        };
        Packet::new(Headers::Mtp(Box::new(hdr)), len)
    }

    #[test]
    fn droptail_drops_at_capacity() {
        let mut q = DropTailQueue::new(2);
        assert!(matches!(
            q.enqueue(pkt(100), Time::ZERO),
            EnqueueVerdict::Queued { .. }
        ));
        assert!(matches!(
            q.enqueue(pkt(100), Time::ZERO),
            EnqueueVerdict::Queued { .. }
        ));
        assert!(matches!(
            q.enqueue(pkt(100), Time::ZERO),
            EnqueueVerdict::Dropped(_)
        ));
        assert_eq!(q.len_pkts(), 2);
        assert_eq!(q.len_bytes(), 200);
        q.dequeue(Time::ZERO).unwrap();
        assert_eq!(q.len_bytes(), 100);
    }

    #[test]
    fn ecn_marks_above_threshold() {
        let mut q = EcnQueue::new(10, 2);
        for _ in 0..2 {
            match q.enqueue(pkt(100), Time::ZERO) {
                EnqueueVerdict::Queued { marked } => assert!(!marked),
                _ => panic!("expected queue"),
            }
        }
        match q.enqueue(pkt(100), Time::ZERO) {
            EnqueueVerdict::Queued { marked } => assert!(marked, "3rd packet sees qlen=2 >= K=2"),
            _ => panic!("expected queue"),
        }
        // The marked packet comes out with CE set.
        q.dequeue(Time::ZERO);
        q.dequeue(Time::ZERO);
        let third = q.dequeue(Time::ZERO).unwrap();
        assert!(third.ecn.is_ce());
    }

    #[test]
    fn ecn_does_not_mark_non_ect() {
        let mut q = EcnQueue::new(10, 0);
        match q.enqueue(pkt(100).without_ect(), Time::ZERO) {
            EnqueueVerdict::Queued { marked } => assert!(!marked),
            _ => panic!(),
        }
        assert!(!q.dequeue(Time::ZERO).unwrap().ecn.is_ce());
    }

    #[test]
    fn drr_shares_evenly_between_bands() {
        // Band by Opaque tag; equal-size packets: service alternates.
        let classify: Classifier = Box::new(|p: &Packet| match p.app {
            Some(crate::packet::AppData::Opaque(t)) => t as usize,
            _ => 0,
        });
        let mut q = DrrQueue::new(2, 100, 1500, None, classify);
        for _ in 0..4 {
            q.enqueue(
                pkt(1000).with_app(crate::packet::AppData::Opaque(0)),
                Time::ZERO,
            );
        }
        for _ in 0..4 {
            q.enqueue(
                pkt(1000).with_app(crate::packet::AppData::Opaque(1)),
                Time::ZERO,
            );
        }
        // DRR serves a band while its deficit lasts, so exact per-packet
        // alternation is not required — but cumulative service must never
        // diverge by more than quantum's worth of packets (here 2).
        let mut from0: i64 = 0;
        let mut from1: i64 = 0;
        for _ in 0..8 {
            match q.dequeue(Time::ZERO).unwrap().app {
                Some(crate::packet::AppData::Opaque(0)) => from0 += 1,
                Some(crate::packet::AppData::Opaque(1)) => from1 += 1,
                _ => unreachable!(),
            }
            assert!(
                (from0 - from1).abs() <= 2,
                "service diverged: {from0} vs {from1}"
            );
        }
        assert_eq!((from0, from1), (4, 4));
    }

    #[test]
    fn drr_is_work_conserving_when_one_band_empty() {
        let classify: Classifier = Box::new(|_| 1);
        let mut q = DrrQueue::new(2, 100, 100, None, classify);
        q.enqueue(pkt(1000), Time::ZERO);
        assert!(
            q.dequeue(Time::ZERO).is_some(),
            "must serve band 1 though band 0 empty"
        );
        assert!(q.dequeue(Time::ZERO).is_none());
    }

    #[test]
    fn priority_serves_band0_first() {
        let classify: Classifier = Box::new(|p: &Packet| p.wire_len as usize % 2);
        let mut q = PriorityQueue::new(2, 100, classify);
        q.enqueue(pkt(101), Time::ZERO); // band 1
        q.enqueue(pkt(100), Time::ZERO); // band 0
        assert_eq!(q.dequeue(Time::ZERO).unwrap().wire_len, 100);
        assert_eq!(q.dequeue(Time::ZERO).unwrap().wire_len, 101);
    }

    #[test]
    fn trimming_trims_mtp_on_overflow() {
        let mut q = TrimmingQueue::new(1, 1, 16);
        assert!(matches!(
            q.enqueue(mtp_pkt(1500, PktType::Data), Time::ZERO),
            EnqueueVerdict::Queued { .. }
        ));
        assert!(matches!(
            q.enqueue(mtp_pkt(1500, PktType::Data), Time::ZERO),
            EnqueueVerdict::Trimmed
        ));
        // Trimmed header dequeues FIRST (priority band) and is small.
        let trimmed = q.dequeue(Time::ZERO).unwrap();
        let hdr = trimmed.headers.as_mtp().unwrap();
        assert!(hdr.flags & flags::TRIMMED != 0);
        assert_eq!(trimmed.wire_len as usize, hdr.wire_len());
        // Then the original full packet.
        assert_eq!(q.dequeue(Time::ZERO).unwrap().wire_len, 1500);
    }

    #[test]
    fn trimming_acks_ride_priority_band() {
        let mut q = TrimmingQueue::new(1, 1, 16);
        q.enqueue(mtp_pkt(1500, PktType::Data), Time::ZERO);
        q.enqueue(mtp_pkt(60, PktType::Ack), Time::ZERO);
        let first = q.dequeue(Time::ZERO).unwrap();
        assert_eq!(first.headers.as_mtp().unwrap().pkt_type, PktType::Ack);
    }

    #[test]
    fn trimming_drops_raw_on_overflow() {
        let mut q = TrimmingQueue::new(1, 1, 16);
        q.enqueue(pkt(1500), Time::ZERO);
        assert!(matches!(
            q.enqueue(pkt(1500), Time::ZERO),
            EnqueueVerdict::Dropped(_)
        ));
    }
}

/// Stochastic fair queueing: flows are hashed into a fixed set of buckets,
/// each a FIFO, served round-robin by packets.
///
/// The cheap middle ground between one shared FIFO and true per-flow
/// queues (the paper cites core-stateless fair queueing as the lineage):
/// collisions are possible, state is O(buckets), and an aggressive flow
/// only ever damages the buckets it hashes into.
pub struct SfqQueue {
    buckets: Vec<VecDeque<Packet>>,
    cap_pkts_per_bucket: usize,
    hash: Classifier,
    next: usize,
    bytes: usize,
    pkts: usize,
}

impl SfqQueue {
    /// An SFQ with `n_buckets`, each holding `cap_pkts_per_bucket`
    /// packets; `hash` maps a packet to its bucket (callers typically hash
    /// the source address or entity).
    pub fn new(n_buckets: usize, cap_pkts_per_bucket: usize, hash: Classifier) -> SfqQueue {
        assert!(n_buckets > 0);
        SfqQueue {
            buckets: (0..n_buckets).map(|_| VecDeque::new()).collect(),
            cap_pkts_per_bucket,
            hash,
            next: 0,
            bytes: 0,
            pkts: 0,
        }
    }
}

impl Qdisc for SfqQueue {
    fn enqueue(&mut self, pkt: Packet, _now: Time) -> EnqueueVerdict {
        let b = (self.hash)(&pkt) % self.buckets.len();
        if self.buckets[b].len() >= self.cap_pkts_per_bucket {
            return EnqueueVerdict::Dropped(pkt);
        }
        self.bytes += pkt.wire_len as usize;
        self.pkts += 1;
        self.buckets[b].push_back(pkt);
        EnqueueVerdict::Queued { marked: false }
    }

    fn dequeue(&mut self, _now: Time) -> Option<Packet> {
        if self.pkts == 0 {
            return None;
        }
        let n = self.buckets.len();
        for k in 0..n {
            let b = (self.next + k) % n;
            if let Some(pkt) = self.buckets[b].pop_front() {
                self.next = (b + 1) % n;
                self.bytes -= pkt.wire_len as usize;
                self.pkts -= 1;
                return Some(pkt);
            }
        }
        None
    }

    fn len_pkts(&self) -> usize {
        self.pkts
    }

    fn len_bytes(&self) -> usize {
        self.bytes
    }
}

#[cfg(test)]
mod sfq_tests {
    use super::*;
    use crate::packet::{AppData, Headers};

    fn pkt(tag: u64) -> Packet {
        Packet::new(Headers::Raw, 100).with_app(AppData::Opaque(tag))
    }

    fn tag_of(p: &Packet) -> u64 {
        match p.app {
            Some(AppData::Opaque(t)) => t,
            _ => unreachable!(),
        }
    }

    fn by_tag() -> Classifier {
        Box::new(|p: &Packet| match p.app {
            Some(AppData::Opaque(t)) => t as usize,
            _ => 0,
        })
    }

    #[test]
    fn interleaves_flows_packet_by_packet() {
        let mut q = SfqQueue::new(4, 16, by_tag());
        for _ in 0..3 {
            q.enqueue(pkt(0), Time::ZERO);
            q.enqueue(pkt(1), Time::ZERO);
            q.enqueue(pkt(2), Time::ZERO);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.dequeue(Time::ZERO))
            .map(|p| tag_of(&p))
            .collect();
        assert_eq!(order, vec![0, 1, 2, 0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn greedy_flow_cannot_evict_others() {
        let mut q = SfqQueue::new(4, 4, by_tag());
        // Flow 0 floods; flow 1 sends two packets.
        let mut flood_drops = 0;
        for _ in 0..20 {
            if matches!(q.enqueue(pkt(0), Time::ZERO), EnqueueVerdict::Dropped(_)) {
                flood_drops += 1;
            }
        }
        assert!(matches!(
            q.enqueue(pkt(1), Time::ZERO),
            EnqueueVerdict::Queued { .. }
        ));
        assert!(matches!(
            q.enqueue(pkt(1), Time::ZERO),
            EnqueueVerdict::Queued { .. }
        ));
        assert_eq!(flood_drops, 16, "flood confined to its own bucket");
        // The polite flow's packets are served within the first few slots.
        let first_three: Vec<u64> = (0..3)
            .filter_map(|_| q.dequeue(Time::ZERO))
            .map(|p| tag_of(&p))
            .collect();
        assert!(
            first_three.contains(&1),
            "flow 1 served promptly: {first_three:?}"
        );
    }

    #[test]
    fn byte_accounting_drains_to_zero() {
        let mut q = SfqQueue::new(2, 8, by_tag());
        for i in 0..10 {
            q.enqueue(pkt(i), Time::ZERO);
        }
        while q.dequeue(Time::ZERO).is_some() {}
        assert_eq!(q.len_pkts(), 0);
        assert_eq!(q.len_bytes(), 0);
    }
}
