//! Fault injection: queue disciplines that corrupt service deliberately.
//!
//! [`LossyQueue`] drops a deterministic pseudo-random fraction of packets;
//! [`ReorderQueue`] holds back every Nth packet and releases it later.
//! Both wrap an inner discipline, so loss/reordering compose with ECN
//! marking, DRR, and the rest. Used by failure-injection tests to verify
//! the transports' repair machinery under conditions the clean topologies
//! never produce.

//! ## Seeding convention
//!
//! Every randomized queue in a simulation derives its RNG seed from one
//! base seed via [`stream_seed`]`(base, stream)`, where `stream` is a
//! stable small integer naming the queue (e.g. the direction-link index).
//! Two runs with the same base seed then make *identical* drop/reorder
//! decisions — the property the fault-matrix and golden-digest tests pin —
//! while distinct streams stay statistically independent (splitmix64
//! scrambles adjacent inputs to distant outputs).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::packet::Packet;
use crate::queue::{EnqueueVerdict, Qdisc};
use crate::time::Time;

/// Derive the RNG seed for one randomized component (`stream`) from a
/// simulation-wide `base` seed, using the splitmix64 finalizer. Stable
/// across runs and platforms: part of the reproducibility contract.
pub fn stream_seed(base: u64, stream: u64) -> u64 {
    let mut z = base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Drops each arriving packet independently with probability `p`,
/// before offering survivors to the inner queue.
pub struct LossyQueue {
    inner: Box<dyn Qdisc>,
    p: f64,
    rng: SmallRng,
    /// Packets deliberately dropped.
    pub injected_drops: u64,
    /// Skip control-sized packets (< this wire length) so ACK storms don't
    /// deadlock tests; 0 disables the exemption.
    pub spare_below: u32,
}

impl LossyQueue {
    /// Wrap `inner`, dropping with probability `p` (deterministic per
    /// `seed`).
    pub fn new(inner: Box<dyn Qdisc>, p: f64, seed: u64) -> LossyQueue {
        assert!((0.0..=1.0).contains(&p));
        LossyQueue {
            inner,
            p,
            rng: SmallRng::seed_from_u64(seed),
            injected_drops: 0,
            spare_below: 0,
        }
    }

    /// Exempt packets smaller than `bytes` (ACKs, NACKs) from injection.
    pub fn sparing_control(mut self, bytes: u32) -> LossyQueue {
        self.spare_below = bytes;
        self
    }

    /// Wrap `inner` with the workspace seeding convention: the queue's RNG
    /// seed is [`stream_seed`]`(base, stream)`. Prefer this over
    /// [`new`](Self::new) whenever more than one randomized queue shares a
    /// simulation.
    pub fn for_stream(inner: Box<dyn Qdisc>, p: f64, base: u64, stream: u64) -> LossyQueue {
        LossyQueue::new(inner, p, stream_seed(base, stream))
    }
}

impl Qdisc for LossyQueue {
    fn enqueue(&mut self, pkt: Packet, now: Time) -> EnqueueVerdict {
        if pkt.wire_len >= self.spare_below && self.rng.gen_bool(self.p) {
            self.injected_drops += 1;
            return EnqueueVerdict::Dropped(pkt);
        }
        self.inner.enqueue(pkt, now)
    }

    fn dequeue(&mut self, now: Time) -> Option<Packet> {
        self.inner.dequeue(now)
    }

    fn len_pkts(&self) -> usize {
        self.inner.len_pkts()
    }

    fn len_bytes(&self) -> usize {
        self.inner.len_bytes()
    }
}

/// Holds back every `n`th packet and releases it after `delay_pkts` other
/// packets have passed — deterministic reordering without loss.
pub struct ReorderQueue {
    inner: Box<dyn Qdisc>,
    n: u64,
    delay_pkts: usize,
    seen: u64,
    held: Vec<(usize, Packet)>,
}

impl ReorderQueue {
    /// Wrap `inner`; every `n`th enqueued packet is delayed past
    /// `delay_pkts` successors.
    pub fn new(inner: Box<dyn Qdisc>, n: u64, delay_pkts: usize) -> ReorderQueue {
        assert!(n >= 2);
        ReorderQueue {
            inner,
            n,
            delay_pkts,
            seen: 0,
            held: Vec::new(),
        }
    }
}

impl Qdisc for ReorderQueue {
    fn enqueue(&mut self, pkt: Packet, now: Time) -> EnqueueVerdict {
        self.seen += 1;
        if self.seen.is_multiple_of(self.n) {
            self.held.push((self.delay_pkts, pkt));
            return EnqueueVerdict::Queued { marked: false };
        }
        self.inner.enqueue(pkt, now)
    }

    fn dequeue(&mut self, now: Time) -> Option<Packet> {
        // Age held packets; release any that have served their delay.
        for h in &mut self.held {
            h.0 = h.0.saturating_sub(1);
        }
        if let Some(pos) = self.held.iter().position(|(left, _)| *left == 0) {
            let (_, pkt) = self.held.remove(pos);
            return Some(pkt);
        }
        match self.inner.dequeue(now) {
            Some(p) => Some(p),
            None => {
                // Nothing else queued: flush held packets rather than
                // stranding them.
                self.held.pop().map(|(_, p)| p)
            }
        }
    }

    fn len_pkts(&self) -> usize {
        self.inner.len_pkts() + self.held.len()
    }

    fn len_bytes(&self) -> usize {
        self.inner.len_bytes()
            + self
                .held
                .iter()
                .map(|(_, p)| p.wire_len as usize)
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Headers;
    use crate::queue::DropTailQueue;

    fn pkt(len: u32, tag: u64) -> Packet {
        Packet::new(Headers::Raw, len).with_app(crate::packet::AppData::Opaque(tag))
    }

    fn tag(p: &Packet) -> u64 {
        match p.app {
            Some(crate::packet::AppData::Opaque(t)) => t,
            _ => panic!("untagged"),
        }
    }

    #[test]
    fn lossy_drops_expected_fraction() {
        let mut q = LossyQueue::new(Box::new(DropTailQueue::new(100_000)), 0.3, 7);
        let mut dropped = 0;
        for i in 0..10_000 {
            if matches!(
                q.enqueue(pkt(1500, i), Time::ZERO),
                EnqueueVerdict::Dropped(_)
            ) {
                dropped += 1;
            }
        }
        assert_eq!(dropped, q.injected_drops);
        let frac = dropped as f64 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.03, "observed loss {frac}");
    }

    #[test]
    fn lossy_spares_control_packets() {
        let mut q =
            LossyQueue::new(Box::new(DropTailQueue::new(100_000)), 1.0, 7).sparing_control(100);
        assert!(matches!(
            q.enqueue(pkt(64, 0), Time::ZERO),
            EnqueueVerdict::Queued { .. }
        ));
        assert!(matches!(
            q.enqueue(pkt(1500, 1), Time::ZERO),
            EnqueueVerdict::Dropped(_)
        ));
    }

    #[test]
    fn lossy_is_deterministic() {
        let run = |seed| {
            let mut q = LossyQueue::new(Box::new(DropTailQueue::new(100_000)), 0.5, seed);
            (0..100)
                .map(|i| {
                    matches!(
                        q.enqueue(pkt(1500, i), Time::ZERO),
                        EnqueueVerdict::Dropped(_)
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    /// Fold a decision sequence into one u64 (FNV-style) so a whole run's
    /// randomized behavior pins to a single constant.
    fn digest(bits: impl IntoIterator<Item = bool>) -> u64 {
        let mut d = 0xCBF2_9CE4_8422_2325u64;
        for b in bits {
            d = (d ^ (b as u64 + 1)).wrapping_mul(0x1_0000_01B3);
        }
        d
    }

    fn lossy_decisions(base: u64, stream: u64) -> Vec<bool> {
        let mut q =
            LossyQueue::for_stream(Box::new(DropTailQueue::new(100_000)), 0.5, base, stream);
        (0..256)
            .map(|i| {
                matches!(
                    q.enqueue(pkt(1500, i), Time::ZERO),
                    EnqueueVerdict::Dropped(_)
                )
            })
            .collect()
    }

    /// Golden digest: the seeding convention's exact decision sequence is
    /// part of the reproducibility contract. If this constant moves, every
    /// recorded experiment that used randomized queues silently changed.
    #[test]
    fn stream_seed_golden_digest() {
        assert_eq!(digest(lossy_decisions(42, 0)), GOLDEN_LOSSY_42_0);
        // Same (base, stream) → identical decisions, run to run.
        assert_eq!(lossy_decisions(42, 0), lossy_decisions(42, 0));
        // Different stream or base → different decisions.
        assert_ne!(lossy_decisions(42, 0), lossy_decisions(42, 1));
        assert_ne!(lossy_decisions(42, 0), lossy_decisions(43, 0));
    }

    const GOLDEN_LOSSY_42_0: u64 = 0x7E74_DAEF_1A40_07F6;

    #[test]
    fn stream_seed_scrambles_adjacent_inputs() {
        // Adjacent streams must land far apart — no correlated low bits.
        let a = stream_seed(7, 0);
        let b = stream_seed(7, 1);
        assert_ne!(a, b);
        assert!((a ^ b).count_ones() > 16, "{a:#x} vs {b:#x}");
        // And the function is a pure function of its inputs.
        assert_eq!(stream_seed(7, 1), stream_seed(7, 1));
    }

    #[test]
    fn reorder_delays_every_nth() {
        let mut q = ReorderQueue::new(Box::new(DropTailQueue::new(100)), 3, 2);
        for i in 0..6 {
            q.enqueue(pkt(100, i), Time::ZERO);
        }
        // Packets 2 and 5 (0-indexed: the 3rd and 6th) are held.
        let order: Vec<u64> = std::iter::from_fn(|| q.dequeue(Time::ZERO))
            .map(|p| tag(&p))
            .collect();
        assert_eq!(order.len(), 6, "nothing lost");
        assert_ne!(order, vec![0, 1, 2, 3, 4, 5], "order changed");
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn reorder_flushes_held_at_drain() {
        let mut q = ReorderQueue::new(Box::new(DropTailQueue::new(100)), 2, 10);
        q.enqueue(pkt(100, 0), Time::ZERO);
        q.enqueue(pkt(100, 1), Time::ZERO); // held
        assert_eq!(tag(&q.dequeue(Time::ZERO).unwrap()), 0);
        // Inner empty; held packet must still come out.
        assert_eq!(tag(&q.dequeue(Time::ZERO).unwrap()), 1);
        assert!(q.dequeue(Time::ZERO).is_none());
        assert_eq!(q.len_pkts(), 0);
    }
}
