//! Pinned moments of the workload generators at fixed seeds.
//!
//! The unit tests in `src/` check shape properties (bounds, skew,
//! determinism); these pin exact values so a silent change to a sampler's
//! draw order, an inverse-CDF formula, or the stats kernels shows up as a
//! failing diff rather than a quietly different experiment.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use mtp_sim::time::{Bandwidth, Duration, Time};
use mtp_workload::{mean_std, percentile, poisson_schedule, FctCollector, SizeDist};

/// Bounded-Pareto §5.2 mix: the sampled mean at a fixed seed is pinned to
/// the digit, and sits where a heavy-tailed 10 KB–1 GB mix should (the
/// mean is dominated by rare elephants, far above the 10 KB floor).
#[test]
fn fig6_mix_mean_is_pinned() {
    let m = SizeDist::fig6_mix().mean_estimate(42, 20_000);
    assert!((m - 72_578.905_55).abs() < 1e-3, "fig6 mean drifted: {m}");
}

/// Web-search empirical CDF: pinned sampled mean, plus the analytic mean
/// of the piecewise-linear CDF as a sanity band (~1.2 MB).
#[test]
fn web_search_mean_is_pinned() {
    let m = SizeDist::web_search().mean_estimate(42, 20_000);
    assert!((m - 1_186_023.029_2).abs() < 1e-2, "web mean drifted: {m}");
    assert!((1.0e6..1.4e6).contains(&m));
}

/// Log-normal sampler: the sampled mean at a fixed seed is pinned and
/// agrees with the analytic mean exp(mu + sigma^2/2) to within 1%.
#[test]
fn lognormal_mean_matches_analytic() {
    let d = SizeDist::LogNormalBytes {
        mu: 11.0,
        sigma: 1.0,
        min: 1_000,
        max: 10_000_000,
    };
    let m = d.mean_estimate(42, 20_000);
    assert!(
        (m - 99_685.793_1).abs() < 1e-3,
        "lognormal mean drifted: {m}"
    );
    let analytic = (11.0f64 + 0.5).exp();
    assert!((m - analytic).abs() / analytic < 0.01);
}

/// Poisson arrivals at seed 7: exact count, byte total, and first-arrival
/// instant. The byte total must also land near the offered-load target
/// (60% of 10 Gbps over 50 ms = 37.5 MB).
#[test]
fn poisson_schedule_is_pinned_at_seed_7() {
    let mut rng = SmallRng::seed_from_u64(7);
    let sched = poisson_schedule(
        &mut rng,
        &SizeDist::Fixed { bytes: 40_000 },
        Bandwidth::from_gbps(10),
        0.6,
        Time::ZERO,
        Duration::from_millis(50),
        None,
    );
    assert_eq!(sched.len(), 900);
    let total: u64 = sched.iter().map(|&(_, b)| b).sum();
    assert_eq!(total, 36_000_000);
    assert_eq!(sched[0], (Time(154_340_804), 40_000));
    let target = 37.5e6;
    assert!((total as f64 - target).abs() / target < 0.10);
}

/// mean_std against hand-computed values (sample standard deviation, the
/// n-1 divisor) and its degenerate cases.
#[test]
fn mean_std_exact() {
    let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
    let (m, s) = mean_std(&xs);
    assert!((m - 5.0).abs() < 1e-12);
    // Sample variance = 32/7.
    assert!((s - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    assert_eq!(mean_std(&[]), (0.0, 0.0));
    assert_eq!(mean_std(&[3.0]), (3.0, 0.0));
}

/// Percentiles are nearest-rank on the sorted copy, independent of input
/// order, and clamp at the extremes.
#[test]
fn percentile_is_order_independent() {
    let sorted: Vec<f64> = (0..=200).map(|i| i as f64).collect();
    let mut shuffled = sorted.clone();
    shuffled.reverse();
    for p in [0.0, 25.0, 50.0, 90.0, 99.0, 100.0] {
        assert_eq!(percentile(&sorted, p), percentile(&shuffled, p));
    }
    assert_eq!(percentile(&sorted, 50.0), 100.0);
    assert_eq!(percentile(&sorted, 99.0), 198.0);
}

/// An FCT collector over a scripted sample set: summary and size-bucketed
/// summaries come out exactly.
#[test]
fn fct_summary_pinned() {
    let mut c = FctCollector::new();
    for i in 1..=100u64 {
        // Sizes span three decades; FCT grows linearly.
        c.record(i * 1_000, Duration::from_micros(10 * i));
    }
    let s = c.summary();
    assert_eq!(s.count, 100);
    assert!((s.mean_us - 505.0).abs() < 1e-9);
    assert_eq!(s.p50_us, 510.0);
    assert_eq!(s.p99_us, 990.0);
    assert_eq!(s.max_us, 1000.0);
    let rows = c.by_size_decade();
    assert_eq!(rows.len(), 3);
    // 1 KB..10 KB holds sizes 1..9, 10 KB..100 KB holds 10..99.
    assert_eq!(rows[0].2.count, 9);
    assert_eq!(rows[1].2.count, 90);
    assert_eq!(rows[2].2.count, 1);
}
