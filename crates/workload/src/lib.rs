//! # mtp-workload — workload generators and experiment statistics
//!
//! The paper's experiments need heavy-tailed message-size mixes ("skewed
//! toward short messages", §5.2), Poisson arrival processes at controlled
//! load, and tail-latency summaries. This crate provides:
//!
//! * [`size::SizeDist`] — fixed / uniform / bounded-Pareto / log-normal /
//!   empirical size distributions, with presets for the paper's Fig. 6 mix
//!   and a web-search-like CDF;
//! * [`arrivals`] — open-loop Poisson schedules at a target fraction of
//!   link capacity, plus paced schedules;
//! * [`stats`] — percentile and size-bucketed FCT summaries (the 99th
//!   percentile is what Fig. 6 reports).
//!
//! Everything is seeded and deterministic: the same seed reproduces the
//! same schedule, so every figure regenerates identically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrivals;
pub mod size;
pub mod stats;

pub use arrivals::{paced_schedule, poisson_schedule};
pub use size::SizeDist;
pub use stats::{mean_std, percentile, FctCollector, FctSample, FctSummary};
