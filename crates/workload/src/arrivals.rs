//! Arrival processes: open-loop Poisson workload schedules.

use rand::Rng;
use rand_distr::{Distribution, Exp};

use mtp_sim::time::{Bandwidth, Duration, Time};

use crate::size::SizeDist;

/// Generate an open-loop Poisson schedule of `(arrival, bytes)` pairs.
///
/// `load` is the offered load as a fraction of `capacity` (e.g. 0.6 =
/// 60%); sizes come from `sizes`. The schedule covers `[start, start +
/// horizon)`.
pub fn poisson_schedule<R: Rng + ?Sized>(
    rng: &mut R,
    sizes: &SizeDist,
    capacity: Bandwidth,
    load: f64,
    start: Time,
    horizon: Duration,
    mean_size_hint: Option<f64>,
) -> Vec<(Time, u64)> {
    assert!(load > 0.0, "zero load");
    let mean_size = mean_size_hint.unwrap_or_else(|| sizes.mean_estimate(12345, 5000));
    // Arrivals per second to hit the target byte rate.
    let byte_rate = capacity.bps() as f64 / 8.0 * load;
    let lambda = byte_rate / mean_size;
    let exp = Exp::new(lambda).expect("lambda > 0");
    let mut out = Vec::new();
    let mut t = start;
    let end = start + horizon;
    loop {
        let gap = Duration::from_secs_f64(exp.sample(rng));
        t += gap;
        if t >= end {
            break;
        }
        out.push((t, sizes.sample(rng)));
    }
    out
}

/// A fixed-rate schedule: `n` messages of `bytes`, evenly spaced by `gap`.
pub fn paced_schedule(n: u64, bytes: u64, start: Time, gap: Duration) -> Vec<(Time, u64)> {
    (0..n)
        .map(|i| (start + Duration(gap.0 * i), bytes))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn poisson_hits_target_load_approximately() {
        let mut rng = SmallRng::seed_from_u64(1);
        let sizes = SizeDist::Fixed { bytes: 100_000 };
        let cap = Bandwidth::from_gbps(10);
        let horizon = Duration::from_millis(100);
        let sched = poisson_schedule(&mut rng, &sizes, cap, 0.5, Time::ZERO, horizon, None);
        let total: u64 = sched.iter().map(|&(_, b)| b).sum();
        let offered_gbps = total as f64 * 8.0 / horizon.as_secs_f64() / 1e9;
        assert!(
            (offered_gbps - 5.0).abs() < 0.8,
            "offered {offered_gbps:.2} Gbps, wanted ~5"
        );
        // Arrivals are sorted and inside the horizon.
        assert!(sched.windows(2).all(|w| w[0].0 <= w[1].0));
        assert!(sched.iter().all(|&(t, _)| t < Time::ZERO + horizon));
    }

    #[test]
    fn paced_schedule_spacing() {
        let s = paced_schedule(3, 500, Time(100), Duration(50));
        assert_eq!(
            s,
            vec![(Time(100), 500), (Time(150), 500), (Time(200), 500)]
        );
    }

    #[test]
    fn poisson_is_deterministic_per_seed() {
        let sizes = SizeDist::web_search();
        let cap = Bandwidth::from_gbps(10);
        let mk = || {
            let mut rng = SmallRng::seed_from_u64(9);
            poisson_schedule(
                &mut rng,
                &sizes,
                cap,
                0.3,
                Time::ZERO,
                Duration::from_millis(10),
                None,
            )
        };
        assert_eq!(mk(), mk());
    }
}
