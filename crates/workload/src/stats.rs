//! Completion-time statistics: percentiles and size-bucketed summaries.

use mtp_sim::time::Duration;
use serde::Serialize;

/// Percentile of a sample set (nearest-rank on a sorted copy).
///
/// `p` in `[0, 100]`. Returns 0 for an empty set.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = samples.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
    let rank = ((p / 100.0) * (v.len() as f64 - 1.0)).round() as usize;
    v[rank.min(v.len() - 1)]
}

/// Mean and sample standard deviation of a slice.
///
/// Returns `(0.0, 0.0)` for an empty slice and a zero deviation for a
/// single sample. This is the canonical implementation; `mtp-bench`
/// re-exports it for experiment binaries.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    if xs.len() < 2 {
        return (mean, 0.0);
    }
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() - 1) as f64;
    (mean, var.sqrt())
}

/// One completed transfer.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct FctSample {
    /// Transfer size in bytes.
    pub bytes: u64,
    /// Completion time.
    pub fct: Duration,
}

/// Collects flow/message completion times and summarizes them.
#[derive(Debug, Clone, Default, Serialize)]
pub struct FctCollector {
    /// All recorded samples.
    pub samples: Vec<FctSample>,
}

/// Summary statistics over a set of completions.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct FctSummary {
    /// Number of samples.
    pub count: usize,
    /// Mean FCT in microseconds.
    pub mean_us: f64,
    /// Median FCT in microseconds.
    pub p50_us: f64,
    /// 99th-percentile FCT in microseconds.
    pub p99_us: f64,
    /// Worst FCT in microseconds.
    pub max_us: f64,
}

impl FctCollector {
    /// An empty collector.
    pub fn new() -> FctCollector {
        FctCollector::default()
    }

    /// Record one completion.
    pub fn record(&mut self, bytes: u64, fct: Duration) {
        self.samples.push(FctSample { bytes, fct });
    }

    /// Summarize all samples.
    pub fn summary(&self) -> FctSummary {
        Self::summarize(&self.samples)
    }

    /// Summarize the samples whose sizes fall in `[lo, hi)`.
    pub fn summary_for_sizes(&self, lo: u64, hi: u64) -> FctSummary {
        let bucket: Vec<FctSample> = self
            .samples
            .iter()
            .copied()
            .filter(|s| s.bytes >= lo && s.bytes < hi)
            .collect();
        Self::summarize(&bucket)
    }

    /// Bucket samples by decade of size; returns `(lo, hi, summary)` rows.
    pub fn by_size_decade(&self) -> Vec<(u64, u64, FctSummary)> {
        let mut rows = Vec::new();
        if self.samples.is_empty() {
            return rows;
        }
        let min = self
            .samples
            .iter()
            .map(|s| s.bytes)
            .min()
            .expect("non-empty");
        let max = self
            .samples
            .iter()
            .map(|s| s.bytes)
            .max()
            .expect("non-empty");
        let mut lo = 10u64.pow((min as f64).log10().floor() as u32);
        while lo <= max {
            let hi = lo * 10;
            let s = self.summary_for_sizes(lo, hi);
            if s.count > 0 {
                rows.push((lo, hi, s));
            }
            lo = hi;
        }
        rows
    }

    fn summarize(samples: &[FctSample]) -> FctSummary {
        let us: Vec<f64> = samples.iter().map(|s| s.fct.as_micros_f64()).collect();
        let mean = if us.is_empty() {
            0.0
        } else {
            us.iter().sum::<f64>() / us.len() as f64
        };
        FctSummary {
            count: us.len(),
            mean_us: mean,
            p50_us: percentile(&us, 50.0),
            p99_us: percentile(&us, 99.0),
            max_us: us.iter().cloned().fold(0.0, f64::max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_basics() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 100.0);
        assert_eq!(percentile(&v, 50.0), 51.0); // nearest rank on 0..99
        assert_eq!(percentile(&[], 99.0), 0.0);
    }

    #[test]
    fn summary_math() {
        let mut c = FctCollector::new();
        c.record(100, Duration::from_micros(10));
        c.record(100, Duration::from_micros(30));
        let s = c.summary();
        assert_eq!(s.count, 2);
        assert!((s.mean_us - 20.0).abs() < 1e-9);
        assert_eq!(s.max_us, 30.0);
    }

    #[test]
    fn size_buckets() {
        let mut c = FctCollector::new();
        c.record(500, Duration::from_micros(1));
        c.record(5_000, Duration::from_micros(2));
        c.record(50_000, Duration::from_micros(3));
        let rows = c.by_size_decade();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].2.count, 1);
        let mid = c.summary_for_sizes(1_000, 10_000);
        assert_eq!(mid.count, 1);
        assert!((mid.mean_us - 2.0).abs() < 1e-9);
    }
}
