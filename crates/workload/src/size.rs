//! Message-size distributions.
//!
//! The paper's load-balancing evaluation (§5.2) uses "a mix of message
//! sizes (10 KB–1 GB)" that is "skewed toward short messages as per
//! existing studies", citing the DCTCP measurement study. This module
//! provides the heavy-tailed samplers the experiments draw from, plus an
//! empirical CDF type for replaying published distributions.

use rand::Rng;
use rand_distr::{Distribution, LogNormal};
use serde::{Deserialize, Serialize};

/// A message-size distribution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum SizeDist {
    /// Every message is `bytes` long.
    Fixed {
        /// The constant size.
        bytes: u64,
    },
    /// Uniform in `[min, max]`.
    Uniform {
        /// Smallest size.
        min: u64,
        /// Largest size.
        max: u64,
    },
    /// Bounded Pareto: heavy-tailed with exponent `alpha`, truncated to
    /// `[min, max]`. `alpha` slightly above 1 gives the classic
    /// "mostly mice, a few elephants carrying most bytes" shape.
    BoundedPareto {
        /// Tail exponent (> 0).
        alpha: f64,
        /// Smallest size.
        min: u64,
        /// Largest size.
        max: u64,
    },
    /// Log-normal over bytes, truncated to `[min, max]`.
    LogNormalBytes {
        /// Mean of ln(size).
        mu: f64,
        /// Std dev of ln(size).
        sigma: f64,
        /// Smallest size.
        min: u64,
        /// Largest size.
        max: u64,
    },
    /// Piecewise-linear inverse CDF: `(cum_prob, bytes)` points with
    /// `cum_prob` ascending to 1.0.
    Empirical {
        /// The CDF points.
        points: Vec<(f64, u64)>,
    },
}

impl SizeDist {
    /// The paper's §5.2 workload: 10 KB–1 GB, skewed toward short
    /// messages (bounded Pareto, alpha = 1.1).
    pub fn fig6_mix() -> SizeDist {
        SizeDist::BoundedPareto {
            alpha: 1.1,
            min: 10 * 1024,
            max: 1 << 30,
        }
    }

    /// A web-search-like distribution (after the DCTCP paper's measured
    /// CDF): mostly short queries with a meaningful tail of multi-MB
    /// background transfers.
    pub fn web_search() -> SizeDist {
        SizeDist::Empirical {
            points: vec![
                (0.15, 6 * 1024),
                (0.20, 13 * 1024),
                (0.30, 19 * 1024),
                (0.40, 33 * 1024),
                (0.53, 53 * 1024),
                (0.60, 133 * 1024),
                (0.70, 667 * 1024),
                (0.80, 1_333 * 1024),
                (0.90, 3_333 * 1024),
                (0.97, 6_667 * 1024),
                (1.00, 20_000 * 1024),
            ],
        }
    }

    /// Draw one message size.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        match self {
            SizeDist::Fixed { bytes } => *bytes,
            SizeDist::Uniform { min, max } => rng.gen_range(*min..=*max),
            SizeDist::BoundedPareto { alpha, min, max } => {
                // Inverse-CDF of the bounded Pareto.
                let (l, h) = (*min as f64, *max as f64);
                let u: f64 = rng.gen_range(0.0..1.0);
                let la = l.powf(*alpha);
                let ha = h.powf(*alpha);
                let x = (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / alpha);
                (x as u64).clamp(*min, *max)
            }
            SizeDist::LogNormalBytes {
                mu,
                sigma,
                min,
                max,
            } => {
                let d = LogNormal::new(*mu, *sigma).expect("valid lognormal params");
                (d.sample(rng) as u64).clamp(*min, *max)
            }
            SizeDist::Empirical { points } => {
                let u: f64 = rng.gen_range(0.0..1.0);
                let mut prev_p = 0.0;
                let mut prev_b = points.first().map(|&(_, b)| b).unwrap_or(1);
                for &(p, b) in points {
                    if u <= p {
                        // Linear interpolation within the segment.
                        let frac = if p > prev_p {
                            (u - prev_p) / (p - prev_p)
                        } else {
                            1.0
                        };
                        let lo = prev_b as f64;
                        let hi = b as f64;
                        return (lo + frac * (hi - lo)).round().max(1.0) as u64;
                    }
                    prev_p = p;
                    prev_b = b;
                }
                points.last().map(|&(_, b)| b).unwrap_or(1)
            }
        }
    }

    /// The distribution mean, estimated by sampling (used for load
    /// calculations; deterministic given the seed).
    pub fn mean_estimate(&self, seed: u64, n: usize) -> f64 {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let sum: u128 = (0..n).map(|_| self.sample(&mut rng) as u128).sum();
        sum as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(99)
    }

    #[test]
    fn fixed_and_uniform_bounds() {
        let mut r = rng();
        assert_eq!(SizeDist::Fixed { bytes: 777 }.sample(&mut r), 777);
        for _ in 0..1000 {
            let v = SizeDist::Uniform { min: 10, max: 20 }.sample(&mut r);
            assert!((10..=20).contains(&v));
        }
    }

    #[test]
    fn bounded_pareto_is_bounded_and_skewed() {
        let d = SizeDist::fig6_mix();
        let mut r = rng();
        let samples: Vec<u64> = (0..20_000).map(|_| d.sample(&mut r)).collect();
        assert!(samples.iter().all(|&s| (10 * 1024..=1 << 30).contains(&s)));
        // Skewed short: the median is far below the mean.
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2] as f64;
        let mean = samples.iter().map(|&s| s as f64).sum::<f64>() / samples.len() as f64;
        assert!(median * 3.0 < mean, "median {median}, mean {mean}");
        // And the short majority: at least half under 100 KB.
        let short = samples.iter().filter(|&&s| s < 100 * 1024).count();
        assert!(
            short * 2 >= samples.len(),
            "short fraction {short}/{}",
            samples.len()
        );
    }

    #[test]
    fn empirical_respects_extremes() {
        let d = SizeDist::web_search();
        let mut r = rng();
        for _ in 0..10_000 {
            let v = d.sample(&mut r);
            assert!((1..=20_000 * 1024).contains(&v), "sample {v}");
        }
    }

    #[test]
    fn empirical_is_monotone_in_u() {
        // With many samples, the distribution should cover small and large.
        let d = SizeDist::web_search();
        let mut r = rng();
        let samples: Vec<u64> = (0..5000).map(|_| d.sample(&mut r)).collect();
        assert!(samples.iter().any(|&s| s < 20 * 1024));
        assert!(samples.iter().any(|&s| s > 1024 * 1024));
    }

    #[test]
    fn lognormal_clamped() {
        let d = SizeDist::LogNormalBytes {
            mu: 10.0,
            sigma: 2.0,
            min: 1000,
            max: 100_000,
        };
        let mut r = rng();
        for _ in 0..1000 {
            let v = d.sample(&mut r);
            assert!((1000..=100_000).contains(&v));
        }
    }

    #[test]
    fn mean_estimate_is_deterministic() {
        let d = SizeDist::fig6_mix();
        assert_eq!(d.mean_estimate(5, 1000), d.mean_estimate(5, 1000));
    }
}
