//! Assertion failures are reports, not panics.
//!
//! An unsatisfiable `[assert]` bound and a tampered pinned digest must
//! both come back as violations naming the scenario, the cell
//! (protocol × seed), and the violated assertion — and the `scn` binary
//! must turn them into a non-zero exit, never a crash.

use mtp_scenario::report::collate;
use mtp_scenario::run::run_scenario;
use mtp_scenario::schema::from_str;

const BASE: &str = r#"
[scenario]
name = "failing"
seeds = [3]
horizon_us = 20000
protocols = ["mtp"]

[topology]
kind = "diamond"
[topology.path]
rate_gbps = 10
delay_us = 5

[workload]
kind = "periodic"
count = 4
bytes = 20000
interval_us = 50
"#;

#[test]
fn unsatisfiable_bound_names_scenario_cell_and_assertion() {
    let s = from_str(&format!(
        "{BASE}\n[assert.cells.mtp]\ncompleted = 9999\ntimeouts_max = 0\n"
    ))
    .expect("valid scenario");
    let result = run_scenario(&s);
    assert!(!result.passed);

    let report = collate(vec![result]);
    assert_eq!(report.cells_run, 1);
    assert_eq!(report.cells_passed, 0);
    let line = report
        .failures
        .iter()
        .find(|l| l.contains("assert completed"))
        .expect("a failure line for the completed bound");
    // The collated line carries scenario, protocol, and seed.
    assert!(line.starts_with("failing/mtp/3: "), "line: {line}");
    assert!(line.contains("expected 9999"), "line: {line}");
}

#[test]
fn tampered_digest_names_the_mismatch() {
    // Run once to learn the true digest, tamper one nibble, re-run.
    let clean = from_str(BASE).expect("valid scenario");
    let true_digest = run_scenario(&clean).cells[0].digest.clone();
    let mut tampered = true_digest.clone().into_bytes();
    tampered[0] = if tampered[0] == b'0' { b'1' } else { b'0' };
    let tampered = String::from_utf8(tampered).expect("hex digest");

    let s = from_str(&format!(
        "{BASE}\n[assert.digests]\n\"mtp/3\" = \"{tampered}\"\n"
    ))
    .expect("valid scenario");
    let result = run_scenario(&s);
    assert!(!result.passed);
    let v = &result.cells[0].violations;
    let line = v
        .iter()
        .find(|l| l.contains("assert digests"))
        .unwrap_or_else(|| panic!("no digest violation in {v:?}"));
    assert!(line.contains(&tampered), "line: {line}");
    assert!(line.contains(&true_digest), "line: {line}");
}

#[test]
fn scn_binary_reports_and_exits_nonzero() {
    let dir = std::env::temp_dir().join(format!("scn-assert-fail-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let file = dir.join("failing.toml");
    std::fs::write(
        &file,
        format!("{BASE}\n[assert.cells.mtp]\ncompleted = 9999\n"),
    )
    .expect("write scenario");

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_scn"))
        .arg(&file)
        .current_dir(&dir)
        .output()
        .expect("run scn");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        !out.status.success(),
        "scn must exit non-zero on a violated assertion; stdout:\n{stdout}"
    );
    assert!(stdout.contains("failing"), "stdout:\n{stdout}");
    assert!(stdout.contains("assert completed"), "stdout:\n{stdout}");
    // A report is still written for the failing run.
    assert!(dir.join("results/scenarios/report.json").is_file());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn scn_binary_rejects_malformed_files_without_panicking() {
    let dir = std::env::temp_dir().join(format!("scn-bad-file-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let file = dir.join("broken.toml");
    std::fs::write(&file, "[scenario]\nname = 7\n").expect("write scenario");

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_scn"))
        .arg(&file)
        .current_dir(&dir)
        .output()
        .expect("run scn");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("broken.toml"), "stderr:\n{stderr}");

    std::fs::remove_dir_all(&dir).ok();
}
