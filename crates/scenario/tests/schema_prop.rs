//! Property tests for the scenario schema.
//!
//! 1. **Lossless roundtrip**: any valid scenario serialized by
//!    [`schema::to_toml`] decodes back to an equal `Scenario`.
//! 2. **Typed rejection**: unknown keys, out-of-range values, and
//!    zero-latency links are rejected with a [`SchemaError`] naming the
//!    offending field — never a panic.
//! 3. **Total decoding**: `from_str` never panics, on arbitrary byte
//!    soup or on mutated-valid documents.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use mtp_scenario::schema::{
    self, from_str, to_toml, Asserts, CellAsserts, FailMode, FaultSpec, LinkParams, LoadError,
    MtpOpts, Protocol, Scenario, Topology, TwoPathStrategy, Workload,
};

// ------------------------------------------------- arbitrary scenarios

fn arb_link(rng: &mut SmallRng) -> LinkParams {
    LinkParams {
        rate_gbps: rng.gen_range(1..=1000),
        delay_us: rng.gen_range(1..=1_000_000),
    }
}

fn arb_name(rng: &mut SmallRng) -> String {
    const CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_-";
    let len = rng.gen_range(1..=20);
    (0..len)
        .map(|_| CHARS[rng.gen_range(0..CHARS.len())] as char)
        .collect()
}

fn arb_description(rng: &mut SmallRng) -> String {
    // Includes everything escape_basic has to handle.
    const CHARS: &[char] = &[
        'a', 'Z', '0', ' ', '.', ',', '"', '\\', '\n', '\t', '#', '=', '[', ']', 'é', '€',
    ];
    let len = rng.gen_range(0..=40);
    (0..len)
        .map(|_| CHARS[rng.gen_range(0..CHARS.len())])
        .collect()
}

fn arb_float(rng: &mut SmallRng) -> f64 {
    // Positive finite values with messy mantissas; Display roundtrips
    // every finite f64 exactly, so no rounding is needed.
    rng.gen_range(0..u32::MAX) as f64 / 7.0 + 0.001
}

fn arb_topology(rng: &mut SmallRng) -> Topology {
    match rng.gen_range(0..4) {
        0 => Topology::Diamond {
            path: arb_link(rng),
        },
        1 => Topology::TwoPath {
            a: arb_link(rng),
            b: arb_link(rng),
            strategy: match rng.gen_range(0..3) {
                0 => TwoPathStrategy::Alternate {
                    period_us: rng.gen_range(1..=10_000_000),
                },
                1 => TwoPathStrategy::Ecmp,
                _ => TwoPathStrategy::Spray,
            },
            goodput_bin_us: rng.gen_range(1..=1_000_000),
        },
        2 => Topology::Dumbbell {
            edge: arb_link(rng),
            shared: arb_link(rng),
        },
        _ => Topology::LeafSpine {
            leaves: rng.gen_range(2..=16),
            spines: rng.gen_range(1..=16),
            hosts_per_leaf: rng.gen_range(1..=16),
            host_link: arb_link(rng),
            spine_link: arb_link(rng),
        },
    }
}

fn arb_workload(rng: &mut SmallRng, topo: &Topology) -> Workload {
    match topo {
        Topology::Diamond { .. } | Topology::TwoPath { .. } => {
            if rng.gen_bool(0.5) {
                Workload::Periodic {
                    count: rng.gen_range(1..=100_000),
                    bytes: rng.gen_range(1..=u32::MAX as u64),
                    interval_us: rng.gen_range(1..=10_000_000),
                }
            } else {
                Workload::Single {
                    bytes: rng.gen_range(1..=u32::MAX as u64),
                }
            }
        }
        Topology::Dumbbell { .. } => {
            let elephants = rng.gen_range(0..=16u64);
            let mice = if elephants == 0 {
                rng.gen_range(1..=16)
            } else {
                rng.gen_range(0..=16)
            };
            let min = rng.gen_range(1..=100_000);
            Workload::Tenants {
                elephants,
                elephant_bytes: rng.gen_range(1..=u32::MAX as u64),
                mice,
                mice_load: rng.gen_range(1..=100) as f64 / 100.0,
                mice_min_bytes: min,
                mice_max_bytes: min + rng.gen_range(0..=100_000u64),
            }
        }
        Topology::LeafSpine { .. } => Workload::Fanin {
            rounds: rng.gen_range(1..=1000),
            bytes: rng.gen_range(1..=u32::MAX as u64),
            stagger_us: rng.gen_range(0..=10_000_000),
            round_gap_us: rng.gen_range(1..=10_000_000),
        },
    }
}

fn arb_fault(rng: &mut SmallRng, topo: &Topology, horizon_us: u64) -> Option<FaultSpec> {
    let mode = if rng.gen_bool(0.5) {
        FailMode::Blackhole
    } else {
        FailMode::Drain
    };
    let at_us = rng.gen_range(0..=horizon_us);
    let from_us = rng.gen_range(0..horizon_us);
    let to_us = rng.gen_range(from_us + 1..=horizon_us);
    let pick =
        |rng: &mut SmallRng, names: &[&str]| names[rng.gen_range(0..names.len())].to_string();
    match topo {
        Topology::LeafSpine { spines, .. } => Some(FaultSpec::CrashRestart {
            node: format!("spine{}", rng.gen_range(0..*spines)),
            from_us,
            to_us,
        }),
        topo => {
            let links = topo.link_names();
            match rng.gen_range(0..7) {
                0 if !topo.pair_names().is_empty() => Some(FaultSpec::CutBoth {
                    link: pick(rng, topo.pair_names()),
                    from_us,
                    to_us,
                    mode,
                }),
                0 => None,
                1 => Some(FaultSpec::LinkDown {
                    link: pick(rng, links),
                    at_us,
                    mode,
                }),
                2 => Some(FaultSpec::LinkUp {
                    link: pick(rng, links),
                    at_us,
                }),
                3 => Some(FaultSpec::Degrade {
                    link: pick(rng, links),
                    at_us,
                    rate_gbps: rng.gen_range(1..=1000),
                    delay_us: rng.gen_range(1..=1_000_000),
                }),
                4 => {
                    let ppm = rng.gen_range(0..=1_000_000);
                    Some(FaultSpec::CorruptRate {
                        link: pick(rng, links),
                        at_us,
                        ppm,
                        flips: if ppm == 0 { 0 } else { rng.gen_range(1..=3) },
                        seed_xor: rng.gen_range(0..=i64::MAX as u64),
                    })
                }
                5 => Some(FaultSpec::BitflipBurst {
                    link: pick(rng, links),
                    at_us,
                    pkts: rng.gen_range(1..=1_000_000),
                    flips: rng.gen_range(1..=3),
                    seed_xor: rng.gen_range(0..=i64::MAX as u64),
                }),
                _ => Some(FaultSpec::TruncateBurst {
                    link: pick(rng, links),
                    at_us,
                    pkts: rng.gen_range(1..=1_000_000),
                    seed_xor: rng.gen_range(0..=i64::MAX as u64),
                }),
            }
        }
    }
}

fn arb_cell(rng: &mut SmallRng, topo: &Topology, has_window: bool) -> CellAsserts {
    let single_sink = matches!(topo, Topology::Diamond { .. } | Topology::TwoPath { .. });
    let mut c = CellAsserts {
        exactly_once: rng.gen_bool(0.5),
        completed: rng.gen_bool(0.5).then(|| rng.gen_range(0..100_000)),
        completed_min: rng.gen_bool(0.5).then(|| rng.gen_range(0..100_000)),
        during_window_min: (has_window && rng.gen_bool(0.5)).then(|| rng.gen_range(0..1000)),
        during_window_max: (has_window && rng.gen_bool(0.5)).then(|| rng.gen_range(0..1000)),
        p50_max_us: rng.gen_bool(0.5).then(|| arb_float(rng)),
        p99_max_us: rng.gen_bool(0.5).then(|| arb_float(rng)),
        timeouts_max: rng.gen_bool(0.5).then(|| rng.gen_range(0..10_000)),
        goodput_mean_min_gbps: (single_sink && rng.gen_bool(0.5)).then(|| arb_float(rng)),
    };
    // The emitter elides all-default cell tables, so an all-default cell
    // would not survive the roundtrip as an explicit entry.
    if c == CellAsserts::default() {
        c.completed_min = Some(rng.gen_range(0..100_000));
    }
    c
}

fn arb_scenario(rng: &mut SmallRng) -> Scenario {
    let topology = arb_topology(rng);
    let horizon_us = rng.gen_range(1000..=10_000_000);

    let mut protocols = Vec::new();
    for p in [Protocol::Mtp, Protocol::TcpNewReno, Protocol::TcpDctcp] {
        if topology.supports(p) && rng.gen_bool(0.5) {
            protocols.push(p);
        }
    }
    if protocols.is_empty() {
        protocols.push(Protocol::Mtp);
    }

    let mut seeds = Vec::new();
    let mut next = rng.gen_range(0..1000u64);
    for _ in 0..rng.gen_range(1..=5) {
        seeds.push(next);
        next += rng.gen_range(1..=100u64);
    }

    let workload = arb_workload(rng, &topology);
    let faults: Vec<FaultSpec> = (0..rng.gen_range(0..=3))
        .filter_map(|_| arb_fault(rng, &topology, horizon_us))
        .collect();

    let window_us = rng.gen_bool(0.4).then(|| {
        let a = rng.gen_range(0..horizon_us);
        (a, rng.gen_range(a + 1..=horizon_us))
    });
    let mut cells = Vec::new();
    for &p in &protocols {
        if rng.gen_bool(0.5) {
            cells.push((p, arb_cell(rng, &topology, window_us.is_some())));
        }
    }
    let mut digests = Vec::new();
    for _ in 0..rng.gen_range(0..=2u32) {
        let p = protocols[rng.gen_range(0..protocols.len())];
        let s = seeds[rng.gen_range(0..seeds.len())];
        let key = format!("{}/{s}", p.key());
        if !digests.iter().any(|(k, _)| *k == key) {
            digests.push((key, format!("{:016x}", rng.gen_range(0..u64::MAX))));
        }
    }

    Scenario {
        name: arb_name(rng),
        description: arb_description(rng),
        seeds,
        horizon_us,
        protocols,
        mtp: MtpOpts {
            failover: rng.gen_bool(0.5),
        },
        topology: topology.clone(),
        workload,
        faults,
        asserts: Asserts {
            conservation: rng.gen_bool(0.8),
            corruption_accounting: matches!(topology, Topology::Diamond { .. })
                && rng.gen_bool(0.3),
            window_us,
            warmup_bins: rng.gen_range(0..=1000),
            cells,
            digests,
        },
    }
}

// ----------------------------------------------------------- properties

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn roundtrip_is_lossless(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let s = arb_scenario(&mut rng);
        let text = to_toml(&s);
        let back = from_str(&text)
            .unwrap_or_else(|e| panic!("emitted scenario failed to parse: {e}\n---\n{text}"));
        prop_assert_eq!(back, s);
    }

    #[test]
    fn decode_never_panics_on_byte_soup(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = from_str(&text);
    }

    #[test]
    fn decode_never_panics_on_mutated_valid(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let s = arb_scenario(&mut rng);
        let mut bytes = to_toml(&s).into_bytes();
        if !bytes.is_empty() {
            for _ in 0..rng.gen_range(1..=8usize) {
                let i = rng.gen_range(0..bytes.len());
                bytes[i] = rng.gen_range(0..=255u32) as u8;
            }
        }
        let _ = from_str(&String::from_utf8_lossy(&bytes));
    }
}

// ------------------------------------------------------ typed rejection

/// A minimal valid diamond document the rejection tests mutate.
const BASE: &str = r#"
[scenario]
name = "base"
seeds = [1]
horizon_us = 1000
protocols = ["mtp"]

[topology]
kind = "diamond"
[topology.path]
rate_gbps = 10
delay_us = 5

[workload]
kind = "single"
bytes = 1000
"#;

fn schema_err(input: &str) -> schema::SchemaError {
    match from_str(input) {
        Err(LoadError::Schema(e)) => e,
        Err(LoadError::Parse(e)) => panic!("expected schema error, got parse error: {e}"),
        Ok(_) => panic!("expected rejection, input decoded"),
    }
}

#[test]
fn base_is_valid() {
    from_str(BASE).expect("base document decodes");
}

#[test]
fn unknown_keys_are_rejected_by_name() {
    let e = schema_err(&format!("{BASE}\n[assert]\nbogus = 1\n"));
    assert_eq!(e.field, "assert.bogus");
    let e = schema_err(&BASE.replace("delay_us = 5", "delay_us = 5\njunk = 1"));
    assert_eq!(e.field, "topology.path.junk");
    let e = schema_err(&format!("stray = true\n{BASE}"));
    assert_eq!(e.field, "stray");
}

#[test]
fn out_of_range_values_are_rejected_by_name() {
    let e = schema_err(&BASE.replace("rate_gbps = 10", "rate_gbps = 0"));
    assert_eq!(e.field, "topology.path.rate_gbps");
    assert!(e.msg.contains("out of range"), "msg: {}", e.msg);

    let e = schema_err(&BASE.replace("horizon_us = 1000", "horizon_us = 999999999999"));
    assert_eq!(e.field, "scenario.horizon_us");

    let e = schema_err(&format!(
        "{BASE}\n[[fault]]\nkind = \"bitflip_burst\"\nlink = \"a_fwd\"\nat_us = 1\npkts = 1\nflips = 7\n"
    ));
    assert_eq!(e.field, "fault[0].flips");
}

#[test]
fn zero_latency_links_are_rejected() {
    let e = schema_err(&BASE.replace("delay_us = 5", "delay_us = 0"));
    assert_eq!(e.field, "topology.path.delay_us");
    assert!(
        e.msg.contains("zero-latency links are not supported"),
        "msg: {}",
        e.msg
    );
}

#[test]
fn cut_window_must_be_ordered() {
    let e = schema_err(&format!(
        "{BASE}\n[[fault]]\nkind = \"cut_both\"\nlink = \"a\"\nfrom_us = 500\nto_us = 400\nmode = \"blackhole\"\n"
    ));
    assert_eq!(e.field, "fault[0].to_us");
}

#[test]
fn mice_load_must_be_in_unit_interval() {
    let doc = r#"
[scenario]
name = "m"
seeds = [1]
horizon_us = 1000
protocols = ["mtp"]

[topology]
kind = "dumbbell"
[topology.edge]
rate_gbps = 10
delay_us = 2
[topology.shared]
rate_gbps = 40
delay_us = 5

[workload]
kind = "tenants"
elephants = 1
elephant_bytes = 1000
mice = 1
mice_load = 1.5
mice_min_bytes = 100
mice_max_bytes = 200
"#;
    let e = schema_err(doc);
    assert_eq!(e.field, "workload.mice_load");
}

#[test]
fn window_bounds_need_a_window() {
    let e = schema_err(&format!(
        "{BASE}\n[assert.cells.mtp]\nduring_window_min = 1\n"
    ));
    assert_eq!(e.field, "assert.cells.mtp");
    assert!(e.msg.contains("window_us"), "msg: {}", e.msg);
}

#[test]
fn digest_keys_and_values_are_validated() {
    let e = schema_err(&format!("{BASE}\n[assert.digests]\n\"mtp/1\" = \"nope\"\n"));
    assert!(e.field.starts_with("assert.digests"), "field: {}", e.field);

    let e = schema_err(&format!(
        "{BASE}\n[assert.digests]\n\"mtp/99\" = \"0123456789abcdef\"\n"
    ));
    assert!(e.msg.contains("99"), "msg: {}", e.msg);

    let e = schema_err(&format!(
        "{BASE}\n[assert.digests]\n\"tcp-dctcp/1\" = \"0123456789abcdef\"\n"
    ));
    assert!(
        e.msg.contains("not in scenario.protocols"),
        "msg: {}",
        e.msg
    );
}

#[test]
fn unsupported_protocol_topology_pairs_are_rejected() {
    let doc = r#"
[scenario]
name = "x"
seeds = [1]
horizon_us = 1000
protocols = ["mtp", "tcp-newreno"]

[topology]
kind = "dumbbell"
[topology.edge]
rate_gbps = 10
delay_us = 2
[topology.shared]
rate_gbps = 40
delay_us = 5

[workload]
kind = "tenants"
elephants = 1
elephant_bytes = 1000
mice = 1
mice_load = 0.5
mice_min_bytes = 100
mice_max_bytes = 200
"#;
    let e = schema_err(doc);
    assert!(
        e.msg.contains("tcp-newreno"),
        "error should name the unsupported protocol: {e}"
    );
}

#[test]
fn corruption_accounting_needs_the_diamond() {
    let doc = r#"
[scenario]
name = "x"
seeds = [1]
horizon_us = 1000
protocols = ["mtp"]

[topology]
kind = "two-path"
strategy = "ecmp"
[topology.a]
rate_gbps = 10
delay_us = 1
[topology.b]
rate_gbps = 10
delay_us = 1

[workload]
kind = "single"
bytes = 1000

[assert]
corruption_accounting = true
"#;
    let e = schema_err(doc);
    assert_eq!(e.field, "assert.corruption_accounting");
}
