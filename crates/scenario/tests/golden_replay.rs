//! Golden replay: the three ported corpus scenarios are byte-identical
//! to the figure binaries they were ported from.
//!
//! Each test replicates the figure binary's exact build-and-run sequence
//! inline (same builders, same constants, same fault schedule, same
//! seed) and compares against the scenario engine's cell run: same
//! exactly-once ledger, same clean conservation audit, same engine
//! digest. It also pins the digest recorded in the checked-in scenario
//! file, so editing `scenarios/*.toml` out from under the figures fails
//! here, not in CI archaeology.

use std::path::Path;

use mtp_core::{MtpConfig, MtpSenderNode, MtpSinkNode};
use mtp_faults::{diamond_mtp, diamond_tcp, Diamond, FaultDriver, FaultSchedule, Ledger, LinkSpec};
use mtp_scenario::run::{engine_digest, execute_cell};
use mtp_scenario::schema::{from_str, Protocol, Scenario};
use mtp_sim::time::{Duration, Time};
use mtp_sim::LinkFailMode;
use mtp_tcp::{TcpConfig, TcpSenderNode, TcpSinkNode, TcpWorkloadMode};

use mtp_bench::study::{mtp_periodic, tcp_periodic, us};
use mtp_bench::topo::{two_path_mtp, two_path_tcp, PathSpec};
use mtp_net::Strategy;

fn load_scenario(name: &str) -> Scenario {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../scenarios")
        .join(name);
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    from_str(&text).unwrap_or_else(|e| panic!("parse {}: {e}", path.display()))
}

fn pinned_digest(s: &Scenario, proto: &str, seed: u64) -> String {
    let key = format!("{proto}/{seed}");
    s.asserts
        .digests
        .iter()
        .find(|(k, _)| *k == key)
        .map(|(_, v)| v.clone())
        .unwrap_or_else(|| panic!("scenario `{}` pins no digest for {key}", s.name))
}

// ----------------------------------------------------- fig_failover

/// fig_failover's constants, verbatim.
const FO_SEED: u64 = 11;
const FO_N_MSGS: u64 = 40;
const FO_MSG_BYTES: u64 = 30_000;
const FO_EVERY_US: u64 = 50;
const FO_OUT_START: u64 = 500;
const FO_OUT_END: u64 = 2_500;
const FO_HORIZON: u64 = 60_000;

fn failover_outage(d: &Diamond) -> FaultSchedule {
    let mut sched = FaultSchedule::new();
    sched.cut_both(
        d.a_fwd,
        d.a_rev,
        us(FO_OUT_START),
        us(FO_OUT_END),
        LinkFailMode::Blackhole,
    );
    sched
}

#[test]
fn failover_scenario_is_byte_identical_to_figure_binary() {
    let s = load_scenario("failover_diamond.toml");

    // Figure-binary path, inline: MTP contender.
    let mut d = diamond_mtp(
        FO_SEED,
        MtpConfig::default().with_failover(),
        mtp_periodic(FO_N_MSGS, FO_MSG_BYTES, FO_EVERY_US),
        LinkSpec::path_default(),
    );
    let mut drv = FaultDriver::new(failover_outage(&d));
    drv.run_until(&mut d.sim, us(FO_HORIZON));
    assert!(d.sim.audit().ok(), "figure run fails conservation");
    let fig_ledger = Ledger::capture(&d.sim, d.sender, d.sink);
    let records: Vec<(Time, Option<Time>)> = d
        .sim
        .node_as::<MtpSenderNode>(d.sender)
        .msgs
        .iter()
        .map(|m| (m.submitted, m.completed))
        .collect();
    let fig_digest = engine_digest(&d.sim, &records);

    // Scenario-engine path.
    let cell = execute_cell(&s, Protocol::Mtp, FO_SEED);
    assert_eq!(
        cell.result.violations,
        Vec::<String>::new(),
        "scenario cell must pass"
    );
    assert_eq!(cell.result.digest, fig_digest, "engine digest diverged");
    assert_eq!(
        cell.ledger.as_ref(),
        Some(&fig_ledger),
        "exactly-once ledger diverged"
    );
    assert_eq!(fig_ledger.check_exactly_once(), Vec::<String>::new());
    assert_eq!(
        pinned_digest(&s, "mtp", FO_SEED),
        fig_digest,
        "scenario file pins a stale digest"
    );

    // TCP contenders share the figure's schedule byte-for-byte too.
    for (proto, cfg) in [
        (Protocol::TcpNewReno, TcpConfig::default()),
        (Protocol::TcpDctcp, TcpConfig::dctcp()),
    ] {
        let mut d = diamond_tcp(
            FO_SEED,
            cfg,
            TcpWorkloadMode::Persistent,
            tcp_periodic(FO_N_MSGS, FO_MSG_BYTES, FO_EVERY_US),
            LinkSpec::path_default(),
        );
        let mut drv = FaultDriver::new(failover_outage(&d));
        drv.run_until(&mut d.sim, us(FO_HORIZON));
        let records: Vec<(Time, Option<Time>)> = d
            .sim
            .node_as::<TcpSenderNode>(d.sender)
            .msgs
            .iter()
            .map(|m| (m.submitted, m.completed))
            .collect();
        let fig_digest = engine_digest(&d.sim, &records);
        let cell = execute_cell(&s, proto, FO_SEED);
        assert_eq!(cell.result.digest, fig_digest, "{proto:?} digest diverged");
        assert_eq!(pinned_digest(&s, proto.key(), FO_SEED), fig_digest);
    }
}

// --------------------------------------------------- fig_corruption

/// fig_corruption's constants, verbatim.
const CO_SEED: u64 = 23;
const CO_RATE_ON: u64 = 100;
const CO_RATE_OFF: u64 = 3_000;
const CO_PPM: u32 = 40_000;
const CO_FLIPS: u8 = 2;
const CO_HORIZON: u64 = 60_000;

fn corruption_storm(d: &Diamond) -> FaultSchedule {
    let mut sched = FaultSchedule::new();
    sched.corrupt_rate(us(CO_RATE_ON), d.a_fwd, CO_PPM, CO_FLIPS, CO_SEED ^ 0xA);
    sched.corrupt_rate(us(CO_RATE_ON), d.b_fwd, CO_PPM, CO_FLIPS, CO_SEED ^ 0xB);
    sched.corrupt_rate(us(CO_RATE_OFF), d.a_fwd, 0, 0, 0);
    sched.corrupt_rate(us(CO_RATE_OFF), d.b_fwd, 0, 0, 0);
    sched.bitflip_burst(us(400), d.a_rev, 12, 2, CO_SEED ^ 0xC);
    sched.truncate_burst(us(900), d.b_fwd, 8, CO_SEED ^ 0xD);
    sched
}

#[test]
fn corruption_scenario_is_byte_identical_to_figure_binary() {
    let s = load_scenario("corruption_diamond.toml");

    let mut d = diamond_mtp(
        CO_SEED,
        MtpConfig::default().with_failover(),
        mtp_periodic(40, 30_000, 50),
        LinkSpec::path_default(),
    );
    let mut drv = FaultDriver::new(corruption_storm(&d));
    drv.run_until(&mut d.sim, us(CO_HORIZON));
    assert!(d.sim.audit().ok(), "figure run fails conservation");
    let fig_ledger = Ledger::capture(&d.sim, d.sender, d.sink);
    let records: Vec<(Time, Option<Time>)> = d
        .sim
        .node_as::<MtpSenderNode>(d.sender)
        .msgs
        .iter()
        .map(|m| (m.submitted, m.completed))
        .collect();
    let fig_digest = engine_digest(&d.sim, &records);

    let cell = execute_cell(&s, Protocol::Mtp, CO_SEED);
    assert_eq!(cell.result.violations, Vec::<String>::new());
    assert_eq!(cell.result.digest, fig_digest);
    assert_eq!(cell.ledger.as_ref(), Some(&fig_ledger));
    assert_eq!(pinned_digest(&s, "mtp", CO_SEED), fig_digest);
    // The storm must actually have damaged frames for the accounting
    // assertion to mean anything.
    assert!(cell.result.corrupted_frames.unwrap_or(0) > 0);
}

// ------------------------------------------------------------- fig5

#[test]
fn fig5_scenario_is_byte_identical_to_figure_binary() {
    let s = load_scenario("fig5_alternation.toml");

    // fig5's constants, verbatim: 384 us alternation, 32 us sampling,
    // 8 ms horizon, 100 Gbps vs 10 Gbps paths, one 200 MB message.
    let period = Duration::from_micros(384);
    let sample = Duration::from_micros(32);
    let horizon = us(8_000);
    let fast = PathSpec::new(
        mtp_sim::time::Bandwidth::from_gbps(100),
        Duration::from_micros(1),
    );
    let slow = PathSpec::new(
        mtp_sim::time::Bandwidth::from_gbps(10),
        Duration::from_micros(1),
    );
    let flow: u64 = 200_000_000;

    let mut m = two_path_mtp(
        5,
        Strategy::Alternate { period },
        fast,
        slow,
        vec![mtp_core::ScheduledMsg::new(Time::ZERO, flow as u32)],
        MtpConfig::default(),
        sample,
    );
    m.sim.run_until(horizon);
    let records: Vec<(Time, Option<Time>)> = m
        .sim
        .node_as::<MtpSenderNode>(m.sender)
        .msgs
        .iter()
        .map(|r| (r.submitted, r.completed))
        .collect();
    let mtp_digest = engine_digest(&m.sim, &records);
    let mtp_series = m.sim.node_as::<MtpSinkNode>(m.sink).goodput.rates_gbps();

    let mut t = two_path_tcp(
        5,
        Strategy::Alternate { period },
        fast,
        slow,
        vec![(Time::ZERO, flow)],
        TcpConfig::dctcp(),
        TcpWorkloadMode::Persistent,
        sample,
    );
    t.sim.run_until(horizon);
    let records: Vec<(Time, Option<Time>)> = t
        .sim
        .node_as::<TcpSenderNode>(t.sender)
        .msgs
        .iter()
        .map(|r| (r.submitted, r.completed))
        .collect();
    let tcp_digest = engine_digest(&t.sim, &records);
    let tcp_series = t.sim.node_as::<TcpSinkNode>(t.sink).goodput.rates_gbps();

    let mtp_cell = execute_cell(&s, Protocol::Mtp, 5);
    assert_eq!(mtp_cell.result.violations, Vec::<String>::new());
    assert_eq!(mtp_cell.result.digest, mtp_digest);
    assert_eq!(pinned_digest(&s, "mtp", 5), mtp_digest);

    let tcp_cell = execute_cell(&s, Protocol::TcpDctcp, 5);
    assert_eq!(tcp_cell.result.violations, Vec::<String>::new());
    assert_eq!(tcp_cell.result.digest, tcp_digest);
    assert_eq!(pinned_digest(&s, "tcp-dctcp", 5), tcp_digest);

    // The scenario's goodput means are the figure's means: same series,
    // same 31-bin warmup.
    let mean = |series: &[f64]| {
        let tail = &series[31.min(series.len())..];
        tail.iter().sum::<f64>() / tail.len() as f64
    };
    assert_eq!(mtp_cell.result.goodput_mean_gbps, Some(mean(&mtp_series)));
    assert_eq!(tcp_cell.result.goodput_mean_gbps, Some(mean(&tcp_series)));
    // And the figure's headline stands: MTP beats DCTCP across the flips.
    assert!(mean(&mtp_series) > mean(&tcp_series));
}
