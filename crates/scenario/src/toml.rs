//! A strict TOML-subset parser for scenario files.
//!
//! The build environment vendors no `toml` crate, so the harness carries
//! its own reader. It is a *total* parser over the subset the scenario
//! schema uses — bare/quoted keys, `[table]` and `[[array-of-table]]`
//! headers, dotted keys, basic and literal strings, integers (decimal,
//! hex, octal, binary, underscores), floats, booleans, arrays, and inline
//! tables — and a *typed rejector* of everything else: any input, valid
//! TOML or byte noise, yields either a [`Table`] or a [`TomlError`]
//! carrying the line/column and a message. It never panics (the decode
//! fuzz property in `tests/schema_prop.rs` pins this), and nesting depth
//! is bounded so adversarial `[[[[…` input cannot overflow the stack.
//!
//! Deliberately unsupported, with explicit errors: datetimes and
//! multi-line strings. Scenario files have no use for either.

use std::fmt;

/// A parsed TOML value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A string (basic or literal).
    Str(String),
    /// An integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// An array (static `[…]` or `[[table]]` list).
    Array(Vec<Value>),
    /// A table (header, dotted-key, or inline).
    Table(Table),
}

impl Value {
    /// The value's type name, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Bool(_) => "boolean",
            Value::Array(_) => "array",
            Value::Table(_) => "table",
        }
    }
}

/// An insertion-ordered string-keyed table.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Table {
    pairs: Vec<(String, Value)>,
}

impl Table {
    /// An empty table.
    pub fn new() -> Table {
        Table::default()
    }

    /// Look up `key`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Look up `key` mutably.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.pairs
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Remove and return `key`'s value.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let i = self.pairs.iter().position(|(k, _)| k == key)?;
        Some(self.pairs.remove(i).1)
    }

    /// Insert `key = value`, replacing any existing entry.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) {
        let key = key.into();
        if let Some(slot) = self.pairs.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.pairs.push((key, value));
        }
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.pairs.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.pairs.iter().map(|(k, _)| k.as_str())
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

/// A parse failure: where and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TomlError {
    /// 1-based line of the offending input.
    pub line: usize,
    /// 1-based column (in characters) of the offending input.
    pub col: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for TomlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TOML error at line {}:{}: {}",
            self.line, self.col, self.msg
        )
    }
}

impl std::error::Error for TomlError {}

/// Maximum array/inline-table nesting depth; deeper input is rejected
/// rather than risking stack exhaustion on adversarial documents.
const MAX_DEPTH: usize = 32;

/// Parse a TOML document into its root [`Table`].
pub fn parse(input: &str) -> Result<Table, TomlError> {
    let mut p = Parser {
        src: input,
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut doc = Doc::default();
    loop {
        p.skip_blank();
        if p.at_end() {
            break;
        }
        if p.peek() == Some('[') {
            let at = p.mark();
            let header = p.parse_header()?;
            doc.apply_header(header, at)?;
        } else {
            let at = p.mark();
            let keys = p.parse_key_path()?;
            p.expect_eq()?;
            let value = p.parse_value(0)?;
            doc.insert_keyval(keys, value, at)?;
        }
        p.skip_inline_ws();
        p.skip_comment();
        if !p.at_end() && !p.eat_newline() {
            return Err(p.err("expected end of line"));
        }
    }
    Ok(doc.root)
}

/// One step into the document tree: a table key or an index into an
/// array-of-tables. Paths are compared structurally, so keys containing
/// dots (or any separator) cannot alias each other.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Step {
    Key(String),
    Idx(usize),
}

/// A parsed `[header]` or `[[header]]` line.
struct Header {
    keys: Vec<String>,
    array: bool,
}

/// Source position for error reporting.
#[derive(Clone, Copy)]
struct Mark {
    line: usize,
    col: usize,
}

/// Parser-side document state: the tree plus duplicate-definition
/// bookkeeping.
#[derive(Default)]
struct Doc {
    root: Table,
    /// Steps to the table the current `[header]` points at.
    cursor: Vec<Step>,
    /// Explicitly defined `[table]` header paths.
    defined_headers: Vec<Vec<Step>>,
    /// Paths created by `[[array-of-tables]]` headers (the array itself).
    aot: Vec<Vec<Step>>,
    /// Fully-written key paths (duplicate-key detection).
    defined_keys: Vec<Vec<Step>>,
}

fn err_at(at: Mark, msg: impl Into<String>) -> TomlError {
    TomlError {
        line: at.line,
        col: at.col,
        msg: msg.into(),
    }
}

/// Resolve `steps` against `root`; every step must already exist and be a
/// table (or an indexed array-of-tables element).
fn navigate<'t>(root: &'t mut Table, steps: &[Step]) -> Option<&'t mut Table> {
    let mut cur = root;
    let mut i = 0;
    while i < steps.len() {
        let Step::Key(k) = &steps[i] else { return None };
        match cur.get_mut(k)? {
            Value::Table(t) => {
                cur = t;
                i += 1;
            }
            Value::Array(a) => {
                let Some(Step::Idx(n)) = steps.get(i + 1) else {
                    return None;
                };
                match a.get_mut(*n)? {
                    Value::Table(t) => {
                        cur = t;
                        i += 2;
                    }
                    _ => return None,
                }
            }
            _ => return None,
        }
    }
    Some(cur)
}

impl Doc {
    /// Walk/create the intermediate tables for `keys[..keys.len()-1]`
    /// starting from `base` steps; returns the extended step path.
    fn ensure_intermediates(
        &mut self,
        base: Vec<Step>,
        keys: &[String],
        at: Mark,
    ) -> Result<Vec<Step>, TomlError> {
        let mut steps = base;
        for k in keys {
            let Some(cur) = navigate(&mut self.root, &steps) else {
                return Err(err_at(at, "internal path resolution failure"));
            };
            if cur.get(k).is_none() {
                cur.insert(k.clone(), Value::Table(Table::new()));
            }
            steps.push(Step::Key(k.clone()));
            match cur.get(k) {
                Some(Value::Table(_)) => {}
                Some(Value::Array(a)) => {
                    if self.aot.contains(&steps) {
                        steps.push(Step::Idx(a.len().saturating_sub(1)));
                    } else {
                        return Err(err_at(
                            at,
                            format!("key `{k}` is a static array, not a table"),
                        ));
                    }
                }
                Some(v) => {
                    return Err(err_at(
                        at,
                        format!("key `{k}` is a {}, not a table", v.type_name()),
                    ));
                }
                None => return Err(err_at(at, "internal path resolution failure")),
            }
        }
        Ok(steps)
    }

    fn apply_header(&mut self, h: Header, at: Mark) -> Result<(), TomlError> {
        let Some((last, parents)) = h.keys.split_last() else {
            return Err(err_at(at, "empty table header"));
        };
        let steps = self.ensure_intermediates(Vec::new(), parents, at)?;
        let mut steps = steps;
        steps.push(Step::Key(last.clone()));
        let parent_steps = &steps[..steps.len() - 1];
        let Some(parent) = navigate(&mut self.root, parent_steps) else {
            return Err(err_at(at, "internal path resolution failure"));
        };
        if h.array {
            match parent.get_mut(last) {
                None => {
                    parent.insert(last.clone(), Value::Array(vec![Value::Table(Table::new())]));
                    self.aot.push(steps.clone());
                    steps.push(Step::Idx(0));
                }
                Some(Value::Array(a)) => {
                    if !self.aot.contains(&steps) {
                        return Err(err_at(
                            at,
                            format!("cannot extend static array `{last}` with [[{last}]]"),
                        ));
                    }
                    a.push(Value::Table(Table::new()));
                    steps.push(Step::Idx(a.len() - 1));
                }
                Some(v) => {
                    return Err(err_at(
                        at,
                        format!(
                            "cannot redefine {} `{last}` as an array of tables",
                            v.type_name()
                        ),
                    ));
                }
            }
        } else {
            match parent.get(last) {
                None => {
                    parent.insert(last.clone(), Value::Table(Table::new()));
                }
                Some(Value::Table(_)) => {
                    if self.defined_headers.contains(&steps) {
                        return Err(err_at(at, format!("duplicate table header `{last}`")));
                    }
                    if self.defined_keys.contains(&steps) {
                        return Err(err_at(
                            at,
                            format!("table `{last}` was already defined as an inline value"),
                        ));
                    }
                }
                Some(v) => {
                    return Err(err_at(
                        at,
                        format!("cannot redefine {} `{last}` as a table", v.type_name()),
                    ));
                }
            }
            self.defined_headers.push(steps.clone());
        }
        self.cursor = steps;
        Ok(())
    }

    fn insert_keyval(
        &mut self,
        keys: Vec<String>,
        value: Value,
        at: Mark,
    ) -> Result<(), TomlError> {
        let Some((last, parents)) = keys.split_last() else {
            return Err(err_at(at, "empty key"));
        };
        let base = self.cursor.clone();
        let mut steps = self.ensure_intermediates(base, parents, at)?;
        let Some(cur) = navigate(&mut self.root, &steps) else {
            return Err(err_at(at, "internal path resolution failure"));
        };
        if cur.get(last).is_some() {
            return Err(err_at(at, format!("duplicate key `{last}`")));
        }
        cur.insert(last.clone(), value);
        steps.push(Step::Key(last.clone()));
        self.defined_keys.push(steps);
        Ok(())
    }
}

struct Parser<'a> {
    src: &'a str,
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> TomlError {
        TomlError {
            line: self.line,
            col: self.col,
            msg: msg.into(),
        }
    }

    fn mark(&self) -> Mark {
        Mark {
            line: self.line,
            col: self.col,
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.src.len()
    }

    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn peek2(&self) -> Option<char> {
        let mut it = self.src[self.pos..].chars();
        it.next();
        it.next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_newline(&mut self) -> bool {
        if self.peek() == Some('\r') && self.peek2() == Some('\n') {
            self.bump();
            self.bump();
            true
        } else if self.peek() == Some('\n') {
            self.bump();
            true
        } else {
            false
        }
    }

    fn skip_inline_ws(&mut self) {
        while matches!(self.peek(), Some(' ') | Some('\t')) {
            self.bump();
        }
    }

    fn skip_comment(&mut self) {
        if self.peek() == Some('#') {
            while let Some(c) = self.peek() {
                if c == '\n' {
                    break;
                }
                self.bump();
            }
        }
    }

    /// Skip whitespace, comments, and newlines (between top-level lines
    /// and inside arrays).
    fn skip_blank(&mut self) {
        loop {
            self.skip_inline_ws();
            self.skip_comment();
            if !self.eat_newline() {
                break;
            }
        }
    }

    fn expect_eq(&mut self) -> Result<(), TomlError> {
        self.skip_inline_ws();
        if !self.eat('=') {
            return Err(self.err("expected `=` after key"));
        }
        self.skip_inline_ws();
        Ok(())
    }

    fn parse_header(&mut self) -> Result<Header, TomlError> {
        // Caller guarantees the leading '['.
        self.bump();
        let array = self.eat('[');
        self.skip_inline_ws();
        let keys = self.parse_key_path()?;
        self.skip_inline_ws();
        if !self.eat(']') {
            return Err(self.err("expected `]` closing table header"));
        }
        if array && !self.eat(']') {
            return Err(self.err("expected `]]` closing array-of-tables header"));
        }
        Ok(Header { keys, array })
    }

    /// A dotted key path: `a.b."c.d"`, whitespace allowed around dots.
    fn parse_key_path(&mut self) -> Result<Vec<String>, TomlError> {
        let mut keys = Vec::new();
        loop {
            self.skip_inline_ws();
            keys.push(self.parse_key_segment()?);
            self.skip_inline_ws();
            if !self.eat('.') {
                break;
            }
        }
        Ok(keys)
    }

    fn parse_key_segment(&mut self) -> Result<String, TomlError> {
        match self.peek() {
            Some('"') => self.parse_basic_string(),
            Some('\'') => self.parse_literal_string(),
            Some(c) if is_bare_key_char(c) => {
                let mut k = String::new();
                while let Some(c) = self.peek() {
                    if is_bare_key_char(c) {
                        k.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                Ok(k)
            }
            _ => Err(self.err("expected a key")),
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, TomlError> {
        if depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        match self.peek() {
            Some('"') => {
                if self.src[self.pos..].starts_with("\"\"\"") {
                    return Err(self.err("multi-line strings are not supported"));
                }
                Ok(Value::Str(self.parse_basic_string()?))
            }
            Some('\'') => {
                if self.src[self.pos..].starts_with("'''") {
                    return Err(self.err("multi-line strings are not supported"));
                }
                Ok(Value::Str(self.parse_literal_string()?))
            }
            Some('[') => self.parse_array(depth),
            Some('{') => self.parse_inline_table(depth),
            Some(_) => self.parse_scalar(),
            None => Err(self.err("expected a value")),
        }
    }

    fn parse_basic_string(&mut self) -> Result<String, TomlError> {
        // Caller guarantees the opening quote.
        self.bump();
        let mut out = String::new();
        loop {
            match self.peek() {
                None | Some('\n') => return Err(self.err("unterminated string")),
                Some('"') => {
                    self.bump();
                    return Ok(out);
                }
                Some('\\') => {
                    self.bump();
                    let esc = self.bump().ok_or_else(|| self.err("unterminated escape"))?;
                    match esc {
                        'b' => out.push('\u{0008}'),
                        't' => out.push('\t'),
                        'n' => out.push('\n'),
                        'f' => out.push('\u{000C}'),
                        'r' => out.push('\r'),
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        'u' => out.push(self.parse_unicode_escape(4)?),
                        'U' => out.push(self.parse_unicode_escape(8)?),
                        other => {
                            return Err(self.err(format!("invalid escape `\\{other}`")));
                        }
                    }
                }
                Some(c) => {
                    out.push(c);
                    self.bump();
                }
            }
        }
    }

    fn parse_unicode_escape(&mut self, digits: usize) -> Result<char, TomlError> {
        let mut v: u32 = 0;
        for _ in 0..digits {
            let c = self
                .bump()
                .ok_or_else(|| self.err("unterminated unicode escape"))?;
            let d = c
                .to_digit(16)
                .ok_or_else(|| self.err(format!("invalid hex digit `{c}` in unicode escape")))?;
            v = v.wrapping_mul(16).wrapping_add(d);
        }
        char::from_u32(v).ok_or_else(|| self.err(format!("invalid unicode scalar U+{v:X}")))
    }

    fn parse_literal_string(&mut self) -> Result<String, TomlError> {
        // Caller guarantees the opening quote.
        self.bump();
        let mut out = String::new();
        loop {
            match self.peek() {
                None | Some('\n') => return Err(self.err("unterminated literal string")),
                Some('\'') => {
                    self.bump();
                    return Ok(out);
                }
                Some(c) => {
                    out.push(c);
                    self.bump();
                }
            }
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value, TomlError> {
        // Caller guarantees the '['.
        self.bump();
        let mut items = Vec::new();
        loop {
            self.skip_blank();
            if self.eat(']') {
                return Ok(Value::Array(items));
            }
            items.push(self.parse_value(depth + 1)?);
            self.skip_blank();
            if self.eat(',') {
                continue;
            }
            if self.eat(']') {
                return Ok(Value::Array(items));
            }
            return Err(self.err("expected `,` or `]` in array"));
        }
    }

    fn parse_inline_table(&mut self, depth: usize) -> Result<Value, TomlError> {
        // Caller guarantees the '{'.
        self.bump();
        let mut t = Table::new();
        self.skip_inline_ws();
        if self.eat('}') {
            return Ok(Value::Table(t));
        }
        loop {
            self.skip_inline_ws();
            let at = self.mark();
            let keys = self.parse_key_path()?;
            self.expect_eq()?;
            let value = self.parse_value(depth + 1)?;
            insert_dotted(&mut t, &keys, value, at)?;
            self.skip_inline_ws();
            if self.eat(',') {
                continue;
            }
            if self.eat('}') {
                return Ok(Value::Table(t));
            }
            return Err(self.err("expected `,` or `}` in inline table"));
        }
    }

    /// Bools, integers, floats — and typed rejections of datetime-shaped
    /// tokens.
    fn parse_scalar(&mut self) -> Result<Value, TomlError> {
        let at = self.mark();
        let mut tok = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, '_' | '+' | '-' | '.' | ':') {
                tok.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if tok.is_empty() {
            return Err(err_at(at, "expected a value"));
        }
        match tok.as_str() {
            "true" => return Ok(Value::Bool(true)),
            "false" => return Ok(Value::Bool(false)),
            "inf" | "+inf" => return Ok(Value::Float(f64::INFINITY)),
            "-inf" => return Ok(Value::Float(f64::NEG_INFINITY)),
            "nan" | "+nan" | "-nan" => return Ok(Value::Float(f64::NAN)),
            _ => {}
        }
        if tok.contains(':') || looks_like_date(&tok) {
            return Err(err_at(at, "datetime values are not supported"));
        }
        let (sign, body) = match tok.split_at(1) {
            ("+", rest) => (1i64, rest),
            ("-", rest) => (-1i64, rest),
            _ => (1i64, tok.as_str()),
        };
        for (prefix, radix) in [("0x", 16), ("0o", 8), ("0b", 2)] {
            if let Some(digits) = body.strip_prefix(prefix) {
                let clean: String = digits.chars().filter(|&c| c != '_').collect();
                return match i64::from_str_radix(&clean, radix) {
                    Ok(v) => Ok(Value::Int(sign.wrapping_mul(v))),
                    Err(_) => Err(err_at(at, format!("invalid integer `{tok}`"))),
                };
            }
        }
        let clean: String = tok.chars().filter(|&c| c != '_').collect();
        if tok.contains('.') || tok.contains('e') || tok.contains('E') {
            return match clean.parse::<f64>() {
                Ok(v) => Ok(Value::Float(v)),
                Err(_) => Err(err_at(at, format!("invalid float `{tok}`"))),
            };
        }
        match clean.parse::<i64>() {
            Ok(v) => Ok(Value::Int(v)),
            Err(_) => Err(err_at(at, format!("invalid integer `{tok}`"))),
        }
    }
}

/// `1979-05-27`-shaped tokens: a `-` or `+` in a non-leading position
/// that is not an exponent sign.
fn looks_like_date(tok: &str) -> bool {
    let chars: Vec<char> = tok.chars().collect();
    for (i, &c) in chars.iter().enumerate().skip(1) {
        if (c == '-' || c == '+') && !matches!(chars.get(i - 1), Some('e') | Some('E')) {
            return true;
        }
    }
    false
}

fn is_bare_key_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '-'
}

/// Dotted-key insert used inside inline tables.
fn insert_dotted(t: &mut Table, keys: &[String], value: Value, at: Mark) -> Result<(), TomlError> {
    let Some((last, parents)) = keys.split_last() else {
        return Err(err_at(at, "empty key"));
    };
    let mut cur = t;
    for k in parents {
        if cur.get(k).is_none() {
            cur.insert(k.clone(), Value::Table(Table::new()));
        }
        match cur.get_mut(k) {
            Some(Value::Table(next)) => cur = next,
            Some(v) => {
                return Err(err_at(
                    at,
                    format!("key `{k}` is a {}, not a table", v.type_name()),
                ));
            }
            None => return Err(err_at(at, "internal path resolution failure")),
        }
    }
    if cur.get(last).is_some() {
        return Err(err_at(at, format!("duplicate key `{last}`")));
    }
    cur.insert(last.clone(), value);
    Ok(())
}

// ------------------------------------------------------------- emission

/// Render a key for TOML output: bare when possible, basic-quoted
/// otherwise.
pub fn format_key(key: &str) -> String {
    if !key.is_empty() && key.chars().all(is_bare_key_char) {
        key.to_string()
    } else {
        escape_basic(key)
    }
}

/// Render `s` as a quoted TOML basic string.
pub fn escape_basic(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04X}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render a float so it parses back exactly and is unambiguously a
/// float (always contains `.` or an exponent).
pub fn format_float(v: f64) -> String {
    if v.is_infinite() {
        return if v > 0.0 { "inf" } else { "-inf" }.to_string();
    }
    if v.is_nan() {
        return "nan".to_string();
    }
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_document() {
        let doc = r#"
# a scenario
[scenario]
name = "failover" # trailing comment
seeds = [11, 12]
horizon_us = 60_000
ratio = 1.5

[topology]
kind = "diamond"
path = { rate_gbps = 10, delay_us = 5 }

[[fault]]
kind = "cut_both"

[[fault]]
kind = "link_up"
"#;
        let t = parse(doc).expect("parse");
        let Some(Value::Table(s)) = t.get("scenario") else {
            panic!("scenario table");
        };
        assert_eq!(s.get("name"), Some(&Value::Str("failover".into())));
        assert_eq!(
            s.get("seeds"),
            Some(&Value::Array(vec![Value::Int(11), Value::Int(12)]))
        );
        assert_eq!(s.get("horizon_us"), Some(&Value::Int(60_000)));
        assert_eq!(s.get("ratio"), Some(&Value::Float(1.5)));
        let Some(Value::Array(faults)) = t.get("fault") else {
            panic!("fault array");
        };
        assert_eq!(faults.len(), 2);
    }

    #[test]
    fn quoted_keys_and_dotted_paths() {
        let t = parse("[assert.digests]\n\"mtp/11\" = \"abc\"\na.b = 1\n").expect("parse");
        let Some(Value::Table(a)) = t.get("assert") else {
            panic!("assert");
        };
        let Some(Value::Table(d)) = a.get("digests") else {
            panic!("digests");
        };
        assert_eq!(d.get("mtp/11"), Some(&Value::Str("abc".into())));
        let Some(Value::Table(ab)) = d.get("a") else {
            panic!("dotted");
        };
        assert_eq!(ab.get("b"), Some(&Value::Int(1)));
    }

    #[test]
    fn rejects_duplicates_and_unsupported() {
        assert!(parse("a = 1\na = 2\n").is_err());
        assert!(parse("[t]\n[t]\n").is_err());
        assert!(parse("d = 1979-05-27\n").is_err());
        assert!(parse("t = 07:32:00\n").is_err());
        assert!(parse("s = \"\"\"x\"\"\"\n").is_err());
        assert!(parse("x = [1, [2, [3").is_err());
        assert!(parse("x = ").is_err());
        assert!(parse("[a]\nb.c = 1\nb.c = 2\n").is_err());
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let mut s = String::from("x = ");
        for _ in 0..200 {
            s.push('[');
        }
        let e = parse(&s).expect_err("too deep");
        assert!(e.msg.contains("nesting"), "{e}");
    }

    #[test]
    fn exponent_minus_is_not_a_date() {
        let t = parse("x = 1e-3\ny = -2.5E+4\n").expect("parse");
        assert_eq!(t.get("x"), Some(&Value::Float(1e-3)));
        assert_eq!(t.get("y"), Some(&Value::Float(-2.5e4)));
    }

    #[test]
    fn mixed_headers_and_arrays() {
        let doc = "[[srv]]\nport = 1\n[srv.limits]\ncap = 2\n[[srv]]\nport = 3\n";
        let t = parse(doc).expect("parse");
        let Some(Value::Array(srv)) = t.get("srv") else {
            panic!("srv");
        };
        assert_eq!(srv.len(), 2);
        let Value::Table(first) = &srv[0] else {
            panic!("table");
        };
        let Some(Value::Table(lim)) = first.get("limits") else {
            panic!("limits bound to first element");
        };
        assert_eq!(lim.get("cap"), Some(&Value::Int(2)));
    }

    #[test]
    fn roundtrip_helpers() {
        assert_eq!(format_key("abc-1_2"), "abc-1_2");
        assert_eq!(format_key("mtp/11"), "\"mtp/11\"");
        assert_eq!(escape_basic("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(format_float(2.0), "2.0");
        assert_eq!(format_float(0.5), "0.5");
    }
}
