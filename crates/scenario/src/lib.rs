//! # mtp-scenario — the declarative scenario harness
//!
//! Every figure binary in `mtp-bench` is one hand-written Rust program:
//! topology, workload, fault script, contenders, and pass/fail checks all
//! fused together. This crate splits that fusion into data + one engine:
//!
//! * [`toml`] — a strict, never-panicking TOML-subset parser (the build
//!   environment vendors no `toml` crate);
//! * [`schema`] — the typed scenario model: topology selection and
//!   parameters, workload mix, fault schedule, protocol matrix, and a
//!   typed `[assert]` block (exactly-once ledger, conservation audit,
//!   corruption accounting, completion counts, FCT percentile bounds,
//!   pinned digests). Decoding rejects unknown keys and out-of-range
//!   values with errors naming the offending field;
//! * [`run`] — executes each scenario × protocol × seed cell against the
//!   existing `mtp-sim` / `mtp-faults` / `mtp-workload` APIs and checks
//!   every assertion, reporting violations as data (never panicking);
//! * [`report`] — per-scenario JSON plus a collated machine-readable
//!   report under `results/scenarios/`.
//!
//! The `scn` binary loads a file or a directory of `.toml` scenarios and
//! runs the whole matrix; the checked-in `scenarios/` corpus is the CI
//! regression suite.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;
pub mod run;
pub mod schema;
pub mod toml;

pub use run::{run_scenario, CellResult, ScenarioResult};
pub use schema::{Scenario, SchemaError};
