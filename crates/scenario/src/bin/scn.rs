//! `scn` — run a scenario file or a directory of them.
//!
//! ```text
//! scn scenarios/              # whole corpus
//! scn scenarios/fig5_alternation.toml
//! ```
//!
//! Each scenario executes every protocol × seed cell, per-scenario JSON
//! and a collated report land under `results/scenarios/`, and the exit
//! status is non-zero when any assertion is violated — a load/schema
//! error or a failed cell is a red CI run, never a panic.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use mtp_scenario::report::{collate, scenarios_results_dir, write_report, write_scenario};
use mtp_scenario::run_scenario;
use mtp_scenario::schema::from_str;

fn collect_files(arg: &Path) -> Result<Vec<PathBuf>, String> {
    if arg.is_dir() {
        let mut files: Vec<PathBuf> = std::fs::read_dir(arg)
            .map_err(|e| format!("{}: {e}", arg.display()))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "toml"))
            .collect();
        files.sort();
        if files.is_empty() {
            return Err(format!("{}: no .toml scenarios found", arg.display()));
        }
        Ok(files)
    } else if arg.is_file() {
        Ok(vec![arg.to_path_buf()])
    } else {
        Err(format!("{}: no such file or directory", arg.display()))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: scn <scenario.toml | scenarios-dir> ...");
        return ExitCode::FAILURE;
    }

    let mut files = Vec::new();
    for a in &args {
        match collect_files(Path::new(a)) {
            Ok(mut f) => files.append(&mut f),
            Err(e) => {
                eprintln!("scn: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut results = Vec::new();
    let mut load_errors = 0usize;
    for f in &files {
        let text = match std::fs::read_to_string(f) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("scn: {}: {e}", f.display());
                load_errors += 1;
                continue;
            }
        };
        let scenario = match from_str(&text) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("scn: {}: {e}", f.display());
                load_errors += 1;
                continue;
            }
        };
        println!(
            "=== {} ({} protocols x {} seeds)",
            scenario.name,
            scenario.protocols.len(),
            scenario.seeds.len()
        );
        let r = run_scenario(&scenario);
        for c in &r.cells {
            let verdict = if c.violations.is_empty() {
                "ok"
            } else {
                "FAIL"
            };
            println!(
                "  {:<12} seed {:<4} completed {:<6} digest {}  {verdict}",
                c.protocol, c.seed, c.completed, c.digest
            );
            for v in &c.violations {
                println!("      {v}");
            }
        }
        results.push(r);
    }

    let report = collate(results);
    let dir = scenarios_results_dir();
    for s in &report.scenarios {
        write_scenario(&dir, s);
    }
    let path = write_report(&dir, &report);

    println!(
        "\n{}/{} scenarios passed, {}/{} cells passed; report: {}",
        report.scenarios_passed,
        report.scenarios_run,
        report.cells_passed,
        report.cells_run,
        path.display()
    );
    if load_errors > 0 {
        eprintln!("scn: {load_errors} scenario file(s) failed to load");
    }
    if load_errors == 0 && report.failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
