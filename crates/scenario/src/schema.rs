//! The typed scenario model.
//!
//! A scenario file composes five ingredients, each a TOML table:
//!
//! * `[scenario]` — name, seeds, horizon, and the protocol matrix;
//! * `[topology]` — which network shape to build and its link parameters;
//! * `[workload]` — what the application submits;
//! * `[[fault]]` — the scripted fault schedule, referring to links and
//!   nodes by the topology's published names;
//! * `[assert]` — the typed pass/fail contract: conservation audit,
//!   exactly-once ledger, corruption accounting, completion counts, FCT
//!   percentile bounds, goodput bounds, and pinned per-cell digests.
//!
//! Decoding is strict: unknown keys anywhere, out-of-range values
//! (zero-latency links, zero-byte messages, >3-bit corruption flips, …),
//! and incompatible combinations (a TCP cell on a topology with no TCP
//! driver, a during-outage bound with no outage window) are all rejected
//! with a [`SchemaError`] naming the offending field. Decode never
//! panics on arbitrary input — the proptest suite pins this.

use std::fmt;

use crate::toml::{escape_basic, format_float, format_key, parse, Table, TomlError, Value};

/// A schema-level rejection: which field, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaError {
    /// Dotted path of the offending field (e.g. `topology.path.delay_us`).
    pub field: String,
    /// What is wrong with it.
    pub msg: String,
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scenario field `{}`: {}", self.field, self.msg)
    }
}

impl std::error::Error for SchemaError {}

/// Any way loading a scenario file can fail.
#[derive(Debug, Clone, PartialEq)]
pub enum LoadError {
    /// The bytes were not parseable TOML (subset).
    Parse(TomlError),
    /// The TOML was well-formed but not a valid scenario.
    Schema(SchemaError),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Parse(e) => write!(f, "{e}"),
            LoadError::Schema(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LoadError {}

fn err(field: impl Into<String>, msg: impl Into<String>) -> SchemaError {
    SchemaError {
        field: field.into(),
        msg: msg.into(),
    }
}

/// One transport contender.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// MTP (`mtp-core` sender/sink).
    Mtp,
    /// TCP NewReno.
    TcpNewReno,
    /// DCTCP.
    TcpDctcp,
}

impl Protocol {
    /// The wire name used in scenario files and reports.
    pub fn key(&self) -> &'static str {
        match self {
            Protocol::Mtp => "mtp",
            Protocol::TcpNewReno => "tcp-newreno",
            Protocol::TcpDctcp => "tcp-dctcp",
        }
    }

    fn from_key(s: &str, field: &str) -> Result<Protocol, SchemaError> {
        match s {
            "mtp" => Ok(Protocol::Mtp),
            "tcp-newreno" => Ok(Protocol::TcpNewReno),
            "tcp-dctcp" => Ok(Protocol::TcpDctcp),
            other => Err(err(
                field,
                format!("unknown protocol `{other}` (expected mtp, tcp-newreno, or tcp-dctcp)"),
            )),
        }
    }
}

/// MTP-specific options.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MtpOpts {
    /// Enable the endpoint failover machinery.
    pub failover: bool,
}

/// One link's parameters. The queue is always the paper's standard
/// 128-packet ECN(20) queue — scenarios vary rate and delay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkParams {
    /// Link rate in Gbps (1..=1000).
    pub rate_gbps: u64,
    /// One-way propagation delay in microseconds (1..=1_000_000;
    /// zero-latency links are rejected).
    pub delay_us: u64,
}

/// The fan-out strategy at the first-hop switch of a two-path topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TwoPathStrategy {
    /// Switch between the paths every `period_us` (Fig. 5's optical
    /// switch).
    Alternate {
        /// Flip period in microseconds.
        period_us: u64,
    },
    /// Per-message ECMP hashing.
    Ecmp,
    /// Per-packet spray.
    Spray,
}

/// The network shape a scenario runs on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Topology {
    /// One sender, one sink, two identical parallel paths; MTP runs the
    /// message-aware load balancer, TCP is pinned to path A. Supports
    /// all protocols.
    Diamond {
        /// Both inter-switch paths.
        path: LinkParams,
    },
    /// One sender, one sink, two (possibly asymmetric) paths with a
    /// scripted fan-out strategy. Supports all protocols.
    TwoPath {
        /// Path A.
        a: LinkParams,
        /// Path B.
        b: LinkParams,
        /// The first-hop fan-out strategy.
        strategy: TwoPathStrategy,
        /// Sink goodput sampling bin in microseconds.
        goodput_bin_us: u64,
    },
    /// N sender/receiver pairs through one shared bottleneck (MTP only).
    Dumbbell {
        /// Host-to-switch edge links.
        edge: LinkParams,
        /// The shared bottleneck.
        shared: LinkParams,
    },
    /// A 2-tier Clos fabric with every non-aggregator host sending to
    /// one aggregator (MTP only).
    LeafSpine {
        /// Number of leaf switches (>= 2).
        leaves: u64,
        /// Number of spine switches (>= 1).
        spines: u64,
        /// Hosts per leaf (>= 1).
        hosts_per_leaf: u64,
        /// Host-to-leaf links.
        host_link: LinkParams,
        /// Leaf-to-spine links.
        spine_link: LinkParams,
    },
}

impl Topology {
    /// The wire name of this topology kind.
    pub fn kind(&self) -> &'static str {
        match self {
            Topology::Diamond { .. } => "diamond",
            Topology::TwoPath { .. } => "two-path",
            Topology::Dumbbell { .. } => "dumbbell",
            Topology::LeafSpine { .. } => "leaf-spine",
        }
    }

    /// True when `p` has a driver on this topology.
    pub fn supports(&self, p: Protocol) -> bool {
        match self {
            Topology::Diamond { .. } | Topology::TwoPath { .. } => true,
            Topology::Dumbbell { .. } | Topology::LeafSpine { .. } => p == Protocol::Mtp,
        }
    }

    /// Directed-link names fault scripts may reference on this topology.
    pub fn link_names(&self) -> &'static [&'static str] {
        match self {
            Topology::Diamond { .. } => &["a_fwd", "a_rev", "b_fwd", "b_rev"],
            Topology::TwoPath { .. } => &["a_fwd", "b_fwd"],
            Topology::Dumbbell { .. } => &["shared"],
            Topology::LeafSpine { .. } => &[],
        }
    }

    /// Link-*pair* names `cut_both` may reference on this topology.
    pub fn pair_names(&self) -> &'static [&'static str] {
        match self {
            Topology::Diamond { .. } => &["a", "b"],
            _ => &[],
        }
    }

    /// True when `node` is a crashable node name on this topology
    /// (`spine0..spineN` on leaf-spine).
    pub fn node_name_ok(&self, node: &str) -> bool {
        match self {
            Topology::LeafSpine { spines, .. } => match node.strip_prefix("spine") {
                Some(idx) => idx
                    .parse::<u64>()
                    .is_ok_and(|i| i < *spines && idx == i.to_string()),
                None => false,
            },
            _ => false,
        }
    }
}

/// What the application submits.
#[derive(Debug, Clone, PartialEq)]
pub enum Workload {
    /// `count` messages of `bytes` each, one every `interval_us`
    /// (diamond / two-path).
    Periodic {
        /// Number of messages.
        count: u64,
        /// Message size in bytes.
        bytes: u64,
        /// Submission interval in microseconds.
        interval_us: u64,
    },
    /// One message of `bytes` at t = 0 (diamond / two-path).
    Single {
        /// Message size in bytes.
        bytes: u64,
    },
    /// Elephant and mice tenant classes on a dumbbell: `elephants`
    /// senders each submit one `elephant_bytes` message at t = 0;
    /// `mice` senders each run an open-loop Poisson arrival process at
    /// `mice_load` of the edge capacity with bounded-Pareto sizes.
    Tenants {
        /// Number of elephant senders.
        elephants: u64,
        /// Elephant message size in bytes.
        elephant_bytes: u64,
        /// Number of mice senders.
        mice: u64,
        /// Mice offered load as a fraction of edge capacity (0, 1].
        mice_load: f64,
        /// Smallest mouse message in bytes.
        mice_min_bytes: u64,
        /// Largest mouse message in bytes.
        mice_max_bytes: u64,
    },
    /// RPC fan-in rounds on a leaf-spine fabric: every host except the
    /// aggregator (leaf 0, host 0) submits `rounds` messages of `bytes`,
    /// host `k` staggered by `k * stagger_us`, round `m` at
    /// `m * round_gap_us`.
    Fanin {
        /// Rounds per sender.
        rounds: u64,
        /// Message size in bytes.
        bytes: u64,
        /// Per-host stagger in microseconds.
        stagger_us: u64,
        /// Gap between a host's rounds in microseconds.
        round_gap_us: u64,
    },
}

impl Workload {
    /// The wire name of this workload kind.
    pub fn kind(&self) -> &'static str {
        match self {
            Workload::Periodic { .. } => "periodic",
            Workload::Single { .. } => "single",
            Workload::Tenants { .. } => "tenants",
            Workload::Fanin { .. } => "fanin",
        }
    }
}

/// Link failure mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailMode {
    /// Destroy the queue and in-flight packet.
    Blackhole,
    /// Finish accepted packets, refuse new offers.
    Drain,
}

impl FailMode {
    fn key(&self) -> &'static str {
        match self {
            FailMode::Blackhole => "blackhole",
            FailMode::Drain => "drain",
        }
    }
}

/// One scripted fault, with links/nodes referenced by topology name.
/// Burst/rate seeds are expressed as `seed_xor`: the injected seed is
/// `cell_seed ^ seed_xor`, so every seed in the matrix draws distinct
/// but reproducible damage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultSpec {
    /// Cut both directions of a path over `[from_us, to_us)`.
    CutBoth {
        /// Pair name (see [`Topology::pair_names`]).
        link: String,
        /// Cut time, microseconds.
        from_us: u64,
        /// Restore time, microseconds.
        to_us: u64,
        /// Failure mode.
        mode: FailMode,
    },
    /// Take one link direction down at `at_us`.
    LinkDown {
        /// Directed-link name.
        link: String,
        /// Injection time, microseconds.
        at_us: u64,
        /// Failure mode.
        mode: FailMode,
    },
    /// Bring one link direction back up at `at_us`.
    LinkUp {
        /// Directed-link name.
        link: String,
        /// Injection time, microseconds.
        at_us: u64,
    },
    /// Change a link direction's rate and delay at `at_us`.
    Degrade {
        /// Directed-link name.
        link: String,
        /// Injection time, microseconds.
        at_us: u64,
        /// New rate, Gbps.
        rate_gbps: u64,
        /// New one-way delay, microseconds.
        delay_us: u64,
    },
    /// Arm (`ppm > 0`) or disarm (`ppm = 0`) a steady bit-flip rate.
    CorruptRate {
        /// Directed-link name.
        link: String,
        /// Injection time, microseconds.
        at_us: u64,
        /// Damage probability, packets per million.
        ppm: u64,
        /// Bits flipped per damaged packet (0 only when disarming).
        flips: u64,
        /// XORed into the cell seed for the damage RNG.
        seed_xor: u64,
    },
    /// Flip bits in each of the next `pkts` packets and deliver them.
    BitflipBurst {
        /// Directed-link name.
        link: String,
        /// Injection time, microseconds.
        at_us: u64,
        /// Packets to damage.
        pkts: u64,
        /// Bits flipped per packet (1..=3 for exact accounting).
        flips: u64,
        /// XORed into the cell seed.
        seed_xor: u64,
    },
    /// Truncate each of the next `pkts` packets and deliver them.
    TruncateBurst {
        /// Directed-link name.
        link: String,
        /// Injection time, microseconds.
        at_us: u64,
        /// Packets to truncate.
        pkts: u64,
        /// XORed into the cell seed.
        seed_xor: u64,
    },
    /// Crash a node at `from_us`, restart it at `to_us`.
    CrashRestart {
        /// Node name (see [`Topology::node_name_ok`]).
        node: String,
        /// Crash time, microseconds.
        from_us: u64,
        /// Restart time, microseconds.
        to_us: u64,
    },
}

impl FaultSpec {
    fn kind_key(&self) -> &'static str {
        match self {
            FaultSpec::CutBoth { .. } => "cut_both",
            FaultSpec::LinkDown { .. } => "link_down",
            FaultSpec::LinkUp { .. } => "link_up",
            FaultSpec::Degrade { .. } => "degrade",
            FaultSpec::CorruptRate { .. } => "corrupt_rate",
            FaultSpec::BitflipBurst { .. } => "bitflip_burst",
            FaultSpec::TruncateBurst { .. } => "truncate_burst",
            FaultSpec::CrashRestart { .. } => "crash_restart",
        }
    }
}

/// Per-protocol assertion bounds. Every field is optional; unset bounds
/// are not checked.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CellAsserts {
    /// MTP: the full exactly-once ledger must balance. TCP: the sender
    /// must report `all_done` (every transfer completed).
    pub exactly_once: bool,
    /// Exact completed-message count.
    pub completed: Option<u64>,
    /// Lower bound on completed messages.
    pub completed_min: Option<u64>,
    /// Lower bound on completions inside `assert.window_us`.
    pub during_window_min: Option<u64>,
    /// Upper bound on completions inside `assert.window_us`.
    pub during_window_max: Option<u64>,
    /// Upper bound on the p50 message completion time, microseconds.
    pub p50_max_us: Option<f64>,
    /// Upper bound on the p99 message completion time, microseconds.
    pub p99_max_us: Option<f64>,
    /// Upper bound on sender timeouts.
    pub timeouts_max: Option<u64>,
    /// Lower bound on mean sink goodput (after `assert.warmup_bins`
    /// bins), Gbps.
    pub goodput_mean_min_gbps: Option<f64>,
}

impl CellAsserts {
    fn is_default(&self) -> bool {
        *self == CellAsserts::default()
    }
}

/// The scenario's typed pass/fail contract.
#[derive(Debug, Clone, PartialEq)]
pub struct Asserts {
    /// Run the packet/byte conservation audit on every cell.
    pub conservation: bool,
    /// Check the corruption ledger: detected + destroyed == damaged
    /// (diamond only).
    pub corruption_accounting: bool,
    /// The `[from, to)` window `during_window_*` bounds refer to,
    /// microseconds.
    pub window_us: Option<(u64, u64)>,
    /// Goodput bins skipped before the mean (slow-start warmup).
    pub warmup_bins: u64,
    /// Per-protocol bounds, in file order.
    pub cells: Vec<(Protocol, CellAsserts)>,
    /// Pinned cell digests: `("proto/seed", fnv64-hex)`, in file order.
    pub digests: Vec<(String, String)>,
}

impl Default for Asserts {
    fn default() -> Asserts {
        Asserts {
            conservation: true,
            corruption_accounting: false,
            window_us: None,
            warmup_bins: 0,
            cells: Vec::new(),
            digests: Vec::new(),
        }
    }
}

/// One fully-validated scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name (also the report file stem): `[a-z0-9_-]+`.
    pub name: String,
    /// Free-form description.
    pub description: String,
    /// Seeds to run every protocol against.
    pub seeds: Vec<u64>,
    /// Simulation horizon in microseconds.
    pub horizon_us: u64,
    /// The protocol matrix.
    pub protocols: Vec<Protocol>,
    /// MTP options.
    pub mtp: MtpOpts,
    /// The network.
    pub topology: Topology,
    /// The application workload.
    pub workload: Workload,
    /// The scripted fault schedule.
    pub faults: Vec<FaultSpec>,
    /// The pass/fail contract.
    pub asserts: Asserts,
}

// -------------------------------------------------------------- decode

fn field(prefix: &str, key: &str) -> String {
    if prefix.is_empty() {
        key.to_string()
    } else {
        format!("{prefix}.{key}")
    }
}

/// Reject leftover (unknown) keys in `t`.
fn ensure_empty(t: &Table, prefix: &str) -> Result<(), SchemaError> {
    if let Some(k) = t.keys().next() {
        return Err(err(field(prefix, k), "unknown key"));
    }
    Ok(())
}

fn take(t: &mut Table, key: &str, prefix: &str) -> Result<Value, SchemaError> {
    t.remove(key)
        .ok_or_else(|| err(field(prefix, key), "missing required key"))
}

fn as_table(v: Value, f: &str) -> Result<Table, SchemaError> {
    match v {
        Value::Table(t) => Ok(t),
        other => Err(err(
            f,
            format!("expected a table, got {}", other.type_name()),
        )),
    }
}

fn as_str(v: Value, f: &str) -> Result<String, SchemaError> {
    match v {
        Value::Str(s) => Ok(s),
        other => Err(err(
            f,
            format!("expected a string, got {}", other.type_name()),
        )),
    }
}

fn as_u64(v: Value, f: &str) -> Result<u64, SchemaError> {
    match v {
        Value::Int(i) if i >= 0 => Ok(i as u64),
        Value::Int(i) => Err(err(f, format!("must be non-negative, got {i}"))),
        other => Err(err(
            f,
            format!("expected an integer, got {}", other.type_name()),
        )),
    }
}

fn as_f64(v: Value, f: &str) -> Result<f64, SchemaError> {
    match v {
        Value::Float(x) if x.is_finite() => Ok(x),
        Value::Int(i) => Ok(i as f64),
        Value::Float(_) => Err(err(f, "must be a finite number")),
        other => Err(err(
            f,
            format!("expected a number, got {}", other.type_name()),
        )),
    }
}

fn as_bool(v: Value, f: &str) -> Result<bool, SchemaError> {
    match v {
        Value::Bool(b) => Ok(b),
        other => Err(err(
            f,
            format!("expected a boolean, got {}", other.type_name()),
        )),
    }
}

fn take_table(t: &mut Table, key: &str, prefix: &str) -> Result<Table, SchemaError> {
    let f = field(prefix, key);
    as_table(take(t, key, prefix)?, &f)
}

fn take_str(t: &mut Table, key: &str, prefix: &str) -> Result<String, SchemaError> {
    let f = field(prefix, key);
    as_str(take(t, key, prefix)?, &f)
}

fn take_u64_in(
    t: &mut Table,
    key: &str,
    prefix: &str,
    lo: u64,
    hi: u64,
) -> Result<u64, SchemaError> {
    let f = field(prefix, key);
    let v = as_u64(take(t, key, prefix)?, &f)?;
    if v < lo || v > hi {
        return Err(err(
            f,
            format!("out of range: must be in {lo}..={hi}, got {v}"),
        ));
    }
    Ok(v)
}

fn take_opt_u64_in(
    t: &mut Table,
    key: &str,
    prefix: &str,
    lo: u64,
    hi: u64,
) -> Result<Option<u64>, SchemaError> {
    let f = field(prefix, key);
    match t.remove(key) {
        None => Ok(None),
        Some(v) => {
            let v = as_u64(v, &f)?;
            if v < lo || v > hi {
                return Err(err(
                    f,
                    format!("out of range: must be in {lo}..={hi}, got {v}"),
                ));
            }
            Ok(Some(v))
        }
    }
}

fn take_opt_f64_min(
    t: &mut Table,
    key: &str,
    prefix: &str,
    lo: f64,
) -> Result<Option<f64>, SchemaError> {
    let f = field(prefix, key);
    match t.remove(key) {
        None => Ok(None),
        Some(v) => {
            let v = as_f64(v, &f)?;
            if v < lo {
                return Err(err(f, format!("out of range: must be >= {lo}, got {v}")));
            }
            Ok(Some(v))
        }
    }
}

fn take_bool_or(
    t: &mut Table,
    key: &str,
    prefix: &str,
    default: bool,
) -> Result<bool, SchemaError> {
    let f = field(prefix, key);
    match t.remove(key) {
        None => Ok(default),
        Some(v) => as_bool(v, &f),
    }
}

/// Largest message MTP's `ScheduledMsg` can carry (u32 byte count).
const MAX_MSG_BYTES: u64 = u32::MAX as u64;
/// Largest `seed_xor`: TOML integers are i64, so anything larger could
/// not be re-read after emission.
const MAX_SEED_XOR: u64 = i64::MAX as u64;
/// Horizon ceiling: 10 simulated seconds.
const MAX_HORIZON_US: u64 = 10_000_000;

fn decode_link(mut t: Table, prefix: &str) -> Result<LinkParams, SchemaError> {
    let rate_gbps = take_u64_in(&mut t, "rate_gbps", prefix, 1, 1_000)?;
    let delay_us = match take_u64_in(&mut t, "delay_us", prefix, 1, 1_000_000) {
        Err(e) if e.msg.starts_with("out of range") => {
            // Name the real constraint for the zero-latency case.
            let f = field(prefix, "delay_us");
            return Err(err(
                f,
                format!("{} (zero-latency links are not supported)", e.msg),
            ));
        }
        other => other?,
    };
    ensure_empty(&t, prefix)?;
    Ok(LinkParams {
        rate_gbps,
        delay_us,
    })
}

fn take_link(t: &mut Table, key: &str, prefix: &str) -> Result<LinkParams, SchemaError> {
    let f = field(prefix, key);
    decode_link(take_table(t, key, prefix)?, &f)
}

fn decode_topology(mut t: Table) -> Result<Topology, SchemaError> {
    const P: &str = "topology";
    let kind = take_str(&mut t, "kind", P)?;
    let topo = match kind.as_str() {
        "diamond" => Topology::Diamond {
            path: take_link(&mut t, "path", P)?,
        },
        "two-path" => {
            let a = take_link(&mut t, "a", P)?;
            let b = take_link(&mut t, "b", P)?;
            let goodput_bin_us =
                take_opt_u64_in(&mut t, "goodput_bin_us", P, 1, 1_000_000)?.unwrap_or(100);
            let strategy = match take_str(&mut t, "strategy", P)?.as_str() {
                "alternate" => TwoPathStrategy::Alternate {
                    period_us: take_u64_in(&mut t, "alternate_period_us", P, 1, MAX_HORIZON_US)?,
                },
                "ecmp" => TwoPathStrategy::Ecmp,
                "spray" => TwoPathStrategy::Spray,
                other => {
                    return Err(err(
                        field(P, "strategy"),
                        format!("unknown strategy `{other}` (expected alternate, ecmp, or spray)"),
                    ));
                }
            };
            Topology::TwoPath {
                a,
                b,
                strategy,
                goodput_bin_us,
            }
        }
        "dumbbell" => Topology::Dumbbell {
            edge: take_link(&mut t, "edge", P)?,
            shared: take_link(&mut t, "shared", P)?,
        },
        "leaf-spine" => Topology::LeafSpine {
            leaves: take_u64_in(&mut t, "leaves", P, 2, 16)?,
            spines: take_u64_in(&mut t, "spines", P, 1, 16)?,
            hosts_per_leaf: take_u64_in(&mut t, "hosts_per_leaf", P, 1, 16)?,
            host_link: take_link(&mut t, "host_link", P)?,
            spine_link: take_link(&mut t, "spine_link", P)?,
        },
        other => {
            return Err(err(
                field(P, "kind"),
                format!(
                    "unknown topology `{other}` (expected diamond, two-path, dumbbell, or leaf-spine)"
                ),
            ));
        }
    };
    ensure_empty(&t, P)?;
    Ok(topo)
}

fn decode_workload(mut t: Table) -> Result<Workload, SchemaError> {
    const P: &str = "workload";
    let kind = take_str(&mut t, "kind", P)?;
    let w = match kind.as_str() {
        "periodic" => Workload::Periodic {
            count: take_u64_in(&mut t, "count", P, 1, 100_000)?,
            bytes: take_u64_in(&mut t, "bytes", P, 1, MAX_MSG_BYTES)?,
            interval_us: take_u64_in(&mut t, "interval_us", P, 1, MAX_HORIZON_US)?,
        },
        "single" => Workload::Single {
            bytes: take_u64_in(&mut t, "bytes", P, 1, MAX_MSG_BYTES)?,
        },
        "tenants" => {
            let w = Workload::Tenants {
                elephants: take_u64_in(&mut t, "elephants", P, 0, 16)?,
                elephant_bytes: take_u64_in(&mut t, "elephant_bytes", P, 1, MAX_MSG_BYTES)?,
                mice: take_u64_in(&mut t, "mice", P, 0, 16)?,
                mice_load: {
                    let f = field(P, "mice_load");
                    let v = as_f64(take(&mut t, "mice_load", P)?, &f)?;
                    if v <= 0.0 || v > 1.0 {
                        return Err(err(f, format!("out of range: must be in (0, 1], got {v}")));
                    }
                    v
                },
                mice_min_bytes: take_u64_in(&mut t, "mice_min_bytes", P, 1, MAX_MSG_BYTES)?,
                mice_max_bytes: take_u64_in(&mut t, "mice_max_bytes", P, 1, MAX_MSG_BYTES)?,
            };
            if let Workload::Tenants {
                elephants,
                mice,
                mice_min_bytes,
                mice_max_bytes,
                ..
            } = &w
            {
                if elephants + mice == 0 {
                    return Err(err(field(P, "elephants"), "need at least one tenant"));
                }
                if mice_min_bytes > mice_max_bytes {
                    return Err(err(
                        field(P, "mice_min_bytes"),
                        format!("must be <= mice_max_bytes ({mice_max_bytes})"),
                    ));
                }
            }
            w
        }
        "fanin" => Workload::Fanin {
            rounds: take_u64_in(&mut t, "rounds", P, 1, 1_000)?,
            bytes: take_u64_in(&mut t, "bytes", P, 1, MAX_MSG_BYTES)?,
            stagger_us: take_u64_in(&mut t, "stagger_us", P, 0, MAX_HORIZON_US)?,
            round_gap_us: take_u64_in(&mut t, "round_gap_us", P, 1, MAX_HORIZON_US)?,
        },
        other => {
            return Err(err(
                field(P, "kind"),
                format!(
                    "unknown workload `{other}` (expected periodic, single, tenants, or fanin)"
                ),
            ));
        }
    };
    ensure_empty(&t, P)?;
    Ok(w)
}

fn decode_fault(mut t: Table, prefix: &str, horizon_us: u64) -> Result<FaultSpec, SchemaError> {
    let kind = take_str(&mut t, "kind", prefix)?;
    let mode = |t: &mut Table, prefix: &str| -> Result<FailMode, SchemaError> {
        let f = field(prefix, "mode");
        match take_str(t, "mode", prefix)?.as_str() {
            "blackhole" => Ok(FailMode::Blackhole),
            "drain" => Ok(FailMode::Drain),
            other => Err(err(
                f,
                format!("unknown mode `{other}` (expected blackhole or drain)"),
            )),
        }
    };
    let spec = match kind.as_str() {
        "cut_both" => {
            let from_us = take_u64_in(&mut t, "from_us", prefix, 0, horizon_us)?;
            let to_us = take_u64_in(&mut t, "to_us", prefix, 0, horizon_us)?;
            if to_us <= from_us {
                return Err(err(
                    field(prefix, "to_us"),
                    format!("must be > from_us ({from_us}), got {to_us}"),
                ));
            }
            FaultSpec::CutBoth {
                link: take_str(&mut t, "link", prefix)?,
                from_us,
                to_us,
                mode: mode(&mut t, prefix)?,
            }
        }
        "link_down" => FaultSpec::LinkDown {
            link: take_str(&mut t, "link", prefix)?,
            at_us: take_u64_in(&mut t, "at_us", prefix, 0, horizon_us)?,
            mode: mode(&mut t, prefix)?,
        },
        "link_up" => FaultSpec::LinkUp {
            link: take_str(&mut t, "link", prefix)?,
            at_us: take_u64_in(&mut t, "at_us", prefix, 0, horizon_us)?,
        },
        "degrade" => FaultSpec::Degrade {
            link: take_str(&mut t, "link", prefix)?,
            at_us: take_u64_in(&mut t, "at_us", prefix, 0, horizon_us)?,
            rate_gbps: take_u64_in(&mut t, "rate_gbps", prefix, 1, 1_000)?,
            delay_us: take_u64_in(&mut t, "delay_us", prefix, 1, 1_000_000)?,
        },
        "corrupt_rate" => {
            let ppm = take_u64_in(&mut t, "ppm", prefix, 0, 1_000_000)?;
            let flips = take_u64_in(&mut t, "flips", prefix, 0, 3)?;
            if ppm > 0 && flips == 0 {
                return Err(err(field(prefix, "flips"), "must be >= 1 when ppm > 0"));
            }
            FaultSpec::CorruptRate {
                link: take_str(&mut t, "link", prefix)?,
                at_us: take_u64_in(&mut t, "at_us", prefix, 0, horizon_us)?,
                ppm,
                flips,
                seed_xor: take_opt_u64_in(&mut t, "seed_xor", prefix, 0, MAX_SEED_XOR)?
                    .unwrap_or(0),
            }
        }
        "bitflip_burst" => FaultSpec::BitflipBurst {
            link: take_str(&mut t, "link", prefix)?,
            at_us: take_u64_in(&mut t, "at_us", prefix, 0, horizon_us)?,
            pkts: take_u64_in(&mut t, "pkts", prefix, 1, 1_000_000)?,
            flips: take_u64_in(&mut t, "flips", prefix, 1, 3)?,
            seed_xor: take_opt_u64_in(&mut t, "seed_xor", prefix, 0, MAX_SEED_XOR)?.unwrap_or(0),
        },
        "truncate_burst" => FaultSpec::TruncateBurst {
            link: take_str(&mut t, "link", prefix)?,
            at_us: take_u64_in(&mut t, "at_us", prefix, 0, horizon_us)?,
            pkts: take_u64_in(&mut t, "pkts", prefix, 1, 1_000_000)?,
            seed_xor: take_opt_u64_in(&mut t, "seed_xor", prefix, 0, MAX_SEED_XOR)?.unwrap_or(0),
        },
        "crash_restart" => {
            let from_us = take_u64_in(&mut t, "from_us", prefix, 0, horizon_us)?;
            let to_us = take_u64_in(&mut t, "to_us", prefix, 0, horizon_us)?;
            if to_us <= from_us {
                return Err(err(
                    field(prefix, "to_us"),
                    format!("must be > from_us ({from_us}), got {to_us}"),
                ));
            }
            FaultSpec::CrashRestart {
                node: take_str(&mut t, "node", prefix)?,
                from_us,
                to_us,
            }
        }
        other => {
            return Err(err(
                field(prefix, "kind"),
                format!("unknown fault kind `{other}`"),
            ));
        }
    };
    ensure_empty(&t, prefix)?;
    Ok(spec)
}

fn decode_cell_asserts(mut t: Table, prefix: &str) -> Result<CellAsserts, SchemaError> {
    let c = CellAsserts {
        exactly_once: take_bool_or(&mut t, "exactly_once", prefix, false)?,
        completed: take_opt_u64_in(&mut t, "completed", prefix, 0, u64::MAX)?,
        completed_min: take_opt_u64_in(&mut t, "completed_min", prefix, 0, u64::MAX)?,
        during_window_min: take_opt_u64_in(&mut t, "during_window_min", prefix, 0, u64::MAX)?,
        during_window_max: take_opt_u64_in(&mut t, "during_window_max", prefix, 0, u64::MAX)?,
        p50_max_us: take_opt_f64_min(&mut t, "p50_max_us", prefix, 0.0)?,
        p99_max_us: take_opt_f64_min(&mut t, "p99_max_us", prefix, 0.0)?,
        timeouts_max: take_opt_u64_in(&mut t, "timeouts_max", prefix, 0, u64::MAX)?,
        goodput_mean_min_gbps: take_opt_f64_min(&mut t, "goodput_mean_min_gbps", prefix, 0.0)?,
    };
    ensure_empty(&t, prefix)?;
    Ok(c)
}

fn decode_asserts(mut t: Table) -> Result<Asserts, SchemaError> {
    const P: &str = "assert";
    let conservation = take_bool_or(&mut t, "conservation", P, true)?;
    let corruption_accounting = take_bool_or(&mut t, "corruption_accounting", P, false)?;
    let window_us = match t.remove("window_us") {
        None => None,
        Some(Value::Array(items)) if items.len() == 2 => {
            let f = field(P, "window_us");
            let a = as_u64(items[0].clone(), &f)?;
            let b = as_u64(items[1].clone(), &f)?;
            if b <= a {
                return Err(err(
                    f,
                    format!("window end must be > start, got [{a}, {b}]"),
                ));
            }
            Some((a, b))
        }
        Some(_) => {
            return Err(err(
                field(P, "window_us"),
                "expected a [from_us, to_us] pair",
            ));
        }
    };
    let warmup_bins = take_opt_u64_in(&mut t, "warmup_bins", P, 0, 1_000_000)?.unwrap_or(0);
    let mut cells = Vec::new();
    if let Some(v) = t.remove("cells") {
        let ct = as_table(v, &field(P, "cells"))?;
        for (k, v) in ct.iter() {
            let f = format!("{P}.cells.{k}");
            let proto = Protocol::from_key(k, &f)?;
            cells.push((proto, decode_cell_asserts(as_table(v.clone(), &f)?, &f)?));
        }
    }
    let mut digests = Vec::new();
    if let Some(v) = t.remove("digests") {
        let dt = as_table(v, &field(P, "digests"))?;
        for (k, v) in dt.iter() {
            let f = format!("{P}.digests.{}", format_key(k));
            let hex = as_str(v.clone(), &f)?;
            if hex.len() != 16 || !hex.chars().all(|c| c.is_ascii_hexdigit()) {
                return Err(err(f, "digest must be 16 lowercase hex characters"));
            }
            if hex.chars().any(|c| c.is_ascii_uppercase()) {
                return Err(err(f, "digest must be 16 lowercase hex characters"));
            }
            digests.push((k.to_string(), hex));
        }
    }
    ensure_empty(&t, P)?;
    Ok(Asserts {
        conservation,
        corruption_accounting,
        window_us,
        warmup_bins,
        cells,
        digests,
    })
}

/// Decode and validate a scenario from parsed TOML.
pub fn from_table(mut root: Table) -> Result<Scenario, SchemaError> {
    const P: &str = "scenario";
    let mut s = take_table(&mut root, "scenario", "")?;
    let name = take_str(&mut s, "name", P)?;
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-' || c == '_')
    {
        return Err(err(
            field(P, "name"),
            "must be non-empty and use only [a-z0-9_-] (it names the report file)",
        ));
    }
    let description = match s.remove("description") {
        None => String::new(),
        Some(v) => as_str(v, &field(P, "description"))?,
    };
    let seeds = {
        let f = field(P, "seeds");
        match take(&mut s, "seeds", P)? {
            Value::Array(items) if !items.is_empty() && items.len() <= 64 => {
                let mut out = Vec::new();
                for v in items {
                    out.push(as_u64(v, &f)?);
                }
                for w in out.windows(2) {
                    if out.iter().filter(|&&x| x == w[0]).count() > 1 {
                        return Err(err(f, format!("duplicate seed {}", w[0])));
                    }
                }
                out
            }
            Value::Array(items) if items.is_empty() => {
                return Err(err(f, "need at least one seed"));
            }
            Value::Array(_) => return Err(err(f, "at most 64 seeds")),
            other => {
                return Err(err(
                    f,
                    format!("expected an array, got {}", other.type_name()),
                ));
            }
        }
    };
    let horizon_us = take_u64_in(&mut s, "horizon_us", P, 1, MAX_HORIZON_US)?;
    let protocols = {
        let f = field(P, "protocols");
        match take(&mut s, "protocols", P)? {
            Value::Array(items) if !items.is_empty() => {
                let mut out: Vec<Protocol> = Vec::new();
                for v in items {
                    let p = Protocol::from_key(&as_str(v, &f)?, &f)?;
                    if out.contains(&p) {
                        return Err(err(f, format!("duplicate protocol `{}`", p.key())));
                    }
                    out.push(p);
                }
                out
            }
            Value::Array(_) => return Err(err(f, "need at least one protocol")),
            other => {
                return Err(err(
                    f,
                    format!("expected an array, got {}", other.type_name()),
                ));
            }
        }
    };
    ensure_empty(&s, P)?;

    let mtp = match root.remove("mtp") {
        None => MtpOpts::default(),
        Some(v) => {
            let mut t = as_table(v, "mtp")?;
            let o = MtpOpts {
                failover: take_bool_or(&mut t, "failover", "mtp", false)?,
            };
            ensure_empty(&t, "mtp")?;
            o
        }
    };

    let topology = decode_topology(take_table(&mut root, "topology", "")?)?;
    let workload = decode_workload(take_table(&mut root, "workload", "")?)?;

    let mut faults = Vec::new();
    if let Some(v) = root.remove("fault") {
        let items = match v {
            Value::Array(items) => items,
            other => {
                return Err(err(
                    "fault",
                    format!("expected [[fault]] tables, got {}", other.type_name()),
                ));
            }
        };
        for (i, item) in items.into_iter().enumerate() {
            let prefix = format!("fault[{i}]");
            faults.push(decode_fault(as_table(item, &prefix)?, &prefix, horizon_us)?);
        }
    }

    let asserts = match root.remove("assert") {
        None => Asserts::default(),
        Some(v) => decode_asserts(as_table(v, "assert")?)?,
    };
    ensure_empty(&root, "")?;

    let sc = Scenario {
        name,
        description,
        seeds,
        horizon_us,
        protocols,
        mtp,
        topology,
        workload,
        faults,
        asserts,
    };
    validate(&sc)?;
    Ok(sc)
}

/// Cross-field validation: protocol/topology/workload compatibility,
/// link and node references, assertion prerequisites.
fn validate(s: &Scenario) -> Result<(), SchemaError> {
    for p in &s.protocols {
        if !s.topology.supports(*p) {
            return Err(err(
                "scenario.protocols",
                format!(
                    "protocol `{}` has no driver on topology `{}` (only mtp runs there)",
                    p.key(),
                    s.topology.kind()
                ),
            ));
        }
    }
    let workload_ok = matches!(
        (&s.topology, &s.workload),
        (
            Topology::Diamond { .. } | Topology::TwoPath { .. },
            Workload::Periodic { .. } | Workload::Single { .. },
        ) | (Topology::Dumbbell { .. }, Workload::Tenants { .. })
            | (Topology::LeafSpine { .. }, Workload::Fanin { .. })
    );
    if !workload_ok {
        return Err(err(
            "workload.kind",
            format!(
                "workload `{}` does not run on topology `{}`",
                s.workload.kind(),
                s.topology.kind()
            ),
        ));
    }
    for (i, f) in s.faults.iter().enumerate() {
        let prefix = format!("fault[{i}]");
        match f {
            FaultSpec::CutBoth { link, .. } => {
                if !s.topology.pair_names().contains(&link.as_str()) {
                    return Err(err(
                        field(&prefix, "link"),
                        format!(
                            "unknown link pair `{link}` on `{}` (valid: {:?})",
                            s.topology.kind(),
                            s.topology.pair_names()
                        ),
                    ));
                }
            }
            FaultSpec::LinkDown { link, .. }
            | FaultSpec::LinkUp { link, .. }
            | FaultSpec::Degrade { link, .. }
            | FaultSpec::CorruptRate { link, .. }
            | FaultSpec::BitflipBurst { link, .. }
            | FaultSpec::TruncateBurst { link, .. } => {
                if !s.topology.link_names().contains(&link.as_str()) {
                    return Err(err(
                        field(&prefix, "link"),
                        format!(
                            "unknown link `{link}` on `{}` (valid: {:?})",
                            s.topology.kind(),
                            s.topology.link_names()
                        ),
                    ));
                }
            }
            FaultSpec::CrashRestart { node, .. } => {
                if !s.topology.node_name_ok(node) {
                    return Err(err(
                        field(&prefix, "node"),
                        format!("unknown node `{node}` on `{}`", s.topology.kind()),
                    ));
                }
            }
        }
    }
    // Corruption accounting needs hardened-device counters, which the
    // runner reads off the diamond's named switches.
    if s.asserts.corruption_accounting && !matches!(s.topology, Topology::Diamond { .. }) {
        return Err(err(
            "assert.corruption_accounting",
            "only supported on the diamond topology",
        ));
    }
    for (p, c) in &s.asserts.cells {
        let f = format!("assert.cells.{}", p.key());
        if !s.protocols.contains(p) {
            return Err(err(f, "protocol is not in scenario.protocols"));
        }
        if (c.during_window_min.is_some() || c.during_window_max.is_some())
            && s.asserts.window_us.is_none()
        {
            return Err(err(f, "during_window_* bounds need assert.window_us"));
        }
        if c.goodput_mean_min_gbps.is_some()
            && !matches!(
                s.topology,
                Topology::TwoPath { .. } | Topology::Diamond { .. }
            )
        {
            return Err(err(f, "goodput bounds need a single-sink topology"));
        }
    }
    for (key, _) in &s.asserts.digests {
        let f = format!("assert.digests.{}", format_key(key));
        let Some((proto, seed)) = key.split_once('/') else {
            return Err(err(f, "digest key must be `protocol/seed`"));
        };
        let p = Protocol::from_key(proto, &f)?;
        if !s.protocols.contains(&p) {
            return Err(err(f, "protocol is not in scenario.protocols"));
        }
        let Ok(seed) = seed.parse::<u64>() else {
            return Err(err(f, format!("`{seed}` is not a seed")));
        };
        if !s.seeds.contains(&seed) {
            return Err(err(f, format!("seed {seed} is not in scenario.seeds")));
        }
    }
    Ok(())
}

/// Parse + decode + validate a scenario from TOML text.
pub fn from_str(input: &str) -> Result<Scenario, LoadError> {
    let root = parse(input).map_err(LoadError::Parse)?;
    from_table(root).map_err(LoadError::Schema)
}

// ---------------------------------------------------------------- emit

fn emit_link(out: &mut String, header: &str, l: &LinkParams) {
    out.push_str(&format!(
        "[{header}]\nrate_gbps = {}\ndelay_us = {}\n",
        l.rate_gbps, l.delay_us
    ));
}

/// Render a scenario back to canonical TOML. `from_str(to_toml(s))`
/// yields a scenario equal to `s` — the roundtrip property the proptest
/// suite pins.
pub fn to_toml(s: &Scenario) -> String {
    let mut o = String::new();
    o.push_str("[scenario]\n");
    o.push_str(&format!("name = {}\n", escape_basic(&s.name)));
    if !s.description.is_empty() {
        o.push_str(&format!("description = {}\n", escape_basic(&s.description)));
    }
    let seeds: Vec<String> = s.seeds.iter().map(|x| x.to_string()).collect();
    o.push_str(&format!("seeds = [{}]\n", seeds.join(", ")));
    o.push_str(&format!("horizon_us = {}\n", s.horizon_us));
    let protos: Vec<String> = s.protocols.iter().map(|p| escape_basic(p.key())).collect();
    o.push_str(&format!("protocols = [{}]\n", protos.join(", ")));

    if s.mtp != MtpOpts::default() {
        o.push_str("\n[mtp]\n");
        o.push_str(&format!("failover = {}\n", s.mtp.failover));
    }

    o.push_str("\n[topology]\n");
    o.push_str(&format!("kind = {}\n", escape_basic(s.topology.kind())));
    match &s.topology {
        Topology::Diamond { path } => emit_link(&mut o, "topology.path", path),
        Topology::TwoPath {
            a,
            b,
            strategy,
            goodput_bin_us,
        } => {
            o.push_str(&format!("goodput_bin_us = {goodput_bin_us}\n"));
            match strategy {
                TwoPathStrategy::Alternate { period_us } => {
                    o.push_str("strategy = \"alternate\"\n");
                    o.push_str(&format!("alternate_period_us = {period_us}\n"));
                }
                TwoPathStrategy::Ecmp => o.push_str("strategy = \"ecmp\"\n"),
                TwoPathStrategy::Spray => o.push_str("strategy = \"spray\"\n"),
            }
            emit_link(&mut o, "topology.a", a);
            emit_link(&mut o, "topology.b", b);
        }
        Topology::Dumbbell { edge, shared } => {
            emit_link(&mut o, "topology.edge", edge);
            emit_link(&mut o, "topology.shared", shared);
        }
        Topology::LeafSpine {
            leaves,
            spines,
            hosts_per_leaf,
            host_link,
            spine_link,
        } => {
            o.push_str(&format!("leaves = {leaves}\n"));
            o.push_str(&format!("spines = {spines}\n"));
            o.push_str(&format!("hosts_per_leaf = {hosts_per_leaf}\n"));
            emit_link(&mut o, "topology.host_link", host_link);
            emit_link(&mut o, "topology.spine_link", spine_link);
        }
    }

    o.push_str("\n[workload]\n");
    o.push_str(&format!("kind = {}\n", escape_basic(s.workload.kind())));
    match &s.workload {
        Workload::Periodic {
            count,
            bytes,
            interval_us,
        } => {
            o.push_str(&format!("count = {count}\n"));
            o.push_str(&format!("bytes = {bytes}\n"));
            o.push_str(&format!("interval_us = {interval_us}\n"));
        }
        Workload::Single { bytes } => o.push_str(&format!("bytes = {bytes}\n")),
        Workload::Tenants {
            elephants,
            elephant_bytes,
            mice,
            mice_load,
            mice_min_bytes,
            mice_max_bytes,
        } => {
            o.push_str(&format!("elephants = {elephants}\n"));
            o.push_str(&format!("elephant_bytes = {elephant_bytes}\n"));
            o.push_str(&format!("mice = {mice}\n"));
            o.push_str(&format!("mice_load = {}\n", format_float(*mice_load)));
            o.push_str(&format!("mice_min_bytes = {mice_min_bytes}\n"));
            o.push_str(&format!("mice_max_bytes = {mice_max_bytes}\n"));
        }
        Workload::Fanin {
            rounds,
            bytes,
            stagger_us,
            round_gap_us,
        } => {
            o.push_str(&format!("rounds = {rounds}\n"));
            o.push_str(&format!("bytes = {bytes}\n"));
            o.push_str(&format!("stagger_us = {stagger_us}\n"));
            o.push_str(&format!("round_gap_us = {round_gap_us}\n"));
        }
    }

    for f in &s.faults {
        o.push_str("\n[[fault]]\n");
        o.push_str(&format!("kind = {}\n", escape_basic(f.kind_key())));
        match f {
            FaultSpec::CutBoth {
                link,
                from_us,
                to_us,
                mode,
            } => {
                o.push_str(&format!("link = {}\n", escape_basic(link)));
                o.push_str(&format!("from_us = {from_us}\n"));
                o.push_str(&format!("to_us = {to_us}\n"));
                o.push_str(&format!("mode = {}\n", escape_basic(mode.key())));
            }
            FaultSpec::LinkDown { link, at_us, mode } => {
                o.push_str(&format!("link = {}\n", escape_basic(link)));
                o.push_str(&format!("at_us = {at_us}\n"));
                o.push_str(&format!("mode = {}\n", escape_basic(mode.key())));
            }
            FaultSpec::LinkUp { link, at_us } => {
                o.push_str(&format!("link = {}\n", escape_basic(link)));
                o.push_str(&format!("at_us = {at_us}\n"));
            }
            FaultSpec::Degrade {
                link,
                at_us,
                rate_gbps,
                delay_us,
            } => {
                o.push_str(&format!("link = {}\n", escape_basic(link)));
                o.push_str(&format!("at_us = {at_us}\n"));
                o.push_str(&format!("rate_gbps = {rate_gbps}\n"));
                o.push_str(&format!("delay_us = {delay_us}\n"));
            }
            FaultSpec::CorruptRate {
                link,
                at_us,
                ppm,
                flips,
                seed_xor,
            } => {
                o.push_str(&format!("link = {}\n", escape_basic(link)));
                o.push_str(&format!("at_us = {at_us}\n"));
                o.push_str(&format!("ppm = {ppm}\n"));
                o.push_str(&format!("flips = {flips}\n"));
                o.push_str(&format!("seed_xor = {seed_xor}\n"));
            }
            FaultSpec::BitflipBurst {
                link,
                at_us,
                pkts,
                flips,
                seed_xor,
            } => {
                o.push_str(&format!("link = {}\n", escape_basic(link)));
                o.push_str(&format!("at_us = {at_us}\n"));
                o.push_str(&format!("pkts = {pkts}\n"));
                o.push_str(&format!("flips = {flips}\n"));
                o.push_str(&format!("seed_xor = {seed_xor}\n"));
            }
            FaultSpec::TruncateBurst {
                link,
                at_us,
                pkts,
                seed_xor,
            } => {
                o.push_str(&format!("link = {}\n", escape_basic(link)));
                o.push_str(&format!("at_us = {at_us}\n"));
                o.push_str(&format!("pkts = {pkts}\n"));
                o.push_str(&format!("seed_xor = {seed_xor}\n"));
            }
            FaultSpec::CrashRestart {
                node,
                from_us,
                to_us,
            } => {
                o.push_str(&format!("node = {}\n", escape_basic(node)));
                o.push_str(&format!("from_us = {from_us}\n"));
                o.push_str(&format!("to_us = {to_us}\n"));
            }
        }
    }

    o.push_str("\n[assert]\n");
    o.push_str(&format!("conservation = {}\n", s.asserts.conservation));
    if s.asserts.corruption_accounting {
        o.push_str("corruption_accounting = true\n");
    }
    if let Some((a, b)) = s.asserts.window_us {
        o.push_str(&format!("window_us = [{a}, {b}]\n"));
    }
    if s.asserts.warmup_bins != 0 {
        o.push_str(&format!("warmup_bins = {}\n", s.asserts.warmup_bins));
    }
    for (p, c) in &s.asserts.cells {
        if c.is_default() {
            // An empty cell table would decode back to the same default,
            // but emit a marker key-free table anyway for clarity.
            o.push_str(&format!("\n[assert.cells.{}]\n", p.key()));
            continue;
        }
        o.push_str(&format!("\n[assert.cells.{}]\n", p.key()));
        if c.exactly_once {
            o.push_str("exactly_once = true\n");
        }
        if let Some(v) = c.completed {
            o.push_str(&format!("completed = {v}\n"));
        }
        if let Some(v) = c.completed_min {
            o.push_str(&format!("completed_min = {v}\n"));
        }
        if let Some(v) = c.during_window_min {
            o.push_str(&format!("during_window_min = {v}\n"));
        }
        if let Some(v) = c.during_window_max {
            o.push_str(&format!("during_window_max = {v}\n"));
        }
        if let Some(v) = c.p50_max_us {
            o.push_str(&format!("p50_max_us = {}\n", format_float(v)));
        }
        if let Some(v) = c.p99_max_us {
            o.push_str(&format!("p99_max_us = {}\n", format_float(v)));
        }
        if let Some(v) = c.timeouts_max {
            o.push_str(&format!("timeouts_max = {v}\n"));
        }
        if let Some(v) = c.goodput_mean_min_gbps {
            o.push_str(&format!("goodput_mean_min_gbps = {}\n", format_float(v)));
        }
    }
    if !s.asserts.digests.is_empty() {
        o.push_str("\n[assert.digests]\n");
        for (k, v) in &s.asserts.digests {
            o.push_str(&format!("{} = {}\n", format_key(k), escape_basic(v)));
        }
    }
    o
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal() -> String {
        r#"
[scenario]
name = "smoke"
seeds = [1]
horizon_us = 1000
protocols = ["mtp"]

[topology]
kind = "diamond"
[topology.path]
rate_gbps = 10
delay_us = 5

[workload]
kind = "periodic"
count = 2
bytes = 1000
interval_us = 10
"#
        .to_string()
    }

    #[test]
    fn minimal_decodes() {
        let s = from_str(&minimal()).expect("decode");
        assert_eq!(s.name, "smoke");
        assert!(s.asserts.conservation);
        assert_eq!(s.topology.kind(), "diamond");
    }

    #[test]
    fn unknown_key_is_named() {
        let doc = minimal() + "\n[extra]\nx = 1\n";
        let e = from_str(&doc).expect_err("unknown table");
        match e {
            LoadError::Schema(e) => assert_eq!(e.field, "extra"),
            other => panic!("wrong error: {other}"),
        }
        let doc = minimal().replace("count = 2", "count = 2\nbogus = 3");
        let e = from_str(&doc).expect_err("unknown key");
        match e {
            LoadError::Schema(e) => assert_eq!(e.field, "workload.bogus"),
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn zero_latency_link_is_rejected_by_name() {
        let doc = minimal().replace("delay_us = 5", "delay_us = 0");
        let e = from_str(&doc).expect_err("zero latency");
        match e {
            LoadError::Schema(e) => {
                assert_eq!(e.field, "topology.path.delay_us");
                assert!(e.msg.contains("zero-latency"), "{}", e.msg);
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn tcp_on_leaf_spine_is_rejected() {
        let doc = r#"
[scenario]
name = "bad"
seeds = [1]
horizon_us = 1000
protocols = ["tcp-dctcp"]

[topology]
kind = "leaf-spine"
leaves = 2
spines = 2
hosts_per_leaf = 2
[topology.host_link]
rate_gbps = 100
delay_us = 1
[topology.spine_link]
rate_gbps = 100
delay_us = 1

[workload]
kind = "fanin"
rounds = 1
bytes = 1000
stagger_us = 1
round_gap_us = 10
"#;
        let e = from_str(doc).expect_err("tcp on clos");
        match e {
            LoadError::Schema(e) => assert_eq!(e.field, "scenario.protocols"),
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn roundtrips_through_emitter() {
        let s = from_str(&minimal()).expect("decode");
        let emitted = to_toml(&s);
        let back = from_str(&emitted).expect("re-decode");
        assert_eq!(s, back, "emitted:\n{emitted}");
    }
}
