//! Report emission: per-scenario JSON plus a collated run report under
//! `results/scenarios/`.

use std::path::{Path, PathBuf};

use serde::Serialize;

use crate::run::ScenarioResult;

/// The collated outcome of one `scn` invocation over a corpus.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RunReport {
    /// Scenario files executed.
    pub scenarios_run: usize,
    /// Scenarios whose every cell passed.
    pub scenarios_passed: usize,
    /// Total cells executed (scenario × protocol × seed).
    pub cells_run: usize,
    /// Cells with no violated assertion.
    pub cells_passed: usize,
    /// Flattened `<scenario>/<protocol>/<seed>: <violation>` lines, empty
    /// on a green run.
    pub failures: Vec<String>,
    /// Every scenario result, in execution order.
    pub scenarios: Vec<ScenarioResult>,
}

/// Collate scenario results into a run report.
pub fn collate(scenarios: Vec<ScenarioResult>) -> RunReport {
    let mut failures = Vec::new();
    let mut cells_run = 0;
    let mut cells_passed = 0;
    for s in &scenarios {
        for c in &s.cells {
            cells_run += 1;
            if c.violations.is_empty() {
                cells_passed += 1;
            } else {
                for v in &c.violations {
                    failures.push(format!("{}/{}/{}: {v}", c.scenario, c.protocol, c.seed));
                }
            }
        }
    }
    RunReport {
        scenarios_run: scenarios.len(),
        scenarios_passed: scenarios.iter().filter(|s| s.passed).count(),
        cells_run,
        cells_passed,
        failures,
        scenarios,
    }
}

/// Locate (and create) `results/scenarios/` at the workspace root, the
/// same walk-up the figure binaries use for `results/`.
pub fn scenarios_results_dir() -> PathBuf {
    let mut dir = std::env::current_dir().expect("cwd");
    loop {
        if dir.join("results").is_dir() || dir.join("Cargo.toml").is_file() {
            let r = dir.join("results").join("scenarios");
            std::fs::create_dir_all(&r).expect("create results/scenarios dir");
            return r;
        }
        if !dir.pop() {
            let r = Path::new("results").join("scenarios");
            std::fs::create_dir_all(&r).expect("create results/scenarios dir");
            return r;
        }
    }
}

/// Write one scenario's result to `results/scenarios/<name>.json`.
pub fn write_scenario(dir: &Path, s: &ScenarioResult) -> PathBuf {
    let path = dir.join(format!("{}.json", s.name));
    let json = serde_json::to_string_pretty(s).expect("serializable scenario result");
    std::fs::write(&path, json).expect("write scenario result");
    path
}

/// Write the collated report to `results/scenarios/report.json`.
pub fn write_report(dir: &Path, r: &RunReport) -> PathBuf {
    let path = dir.join("report.json");
    let json = serde_json::to_string_pretty(r).expect("serializable run report");
    std::fs::write(&path, json).expect("write run report");
    path
}
