//! The cell engine: build, run, measure, and check one scenario ×
//! protocol × seed cell.
//!
//! A cell is executed against the exact builders the figure binaries use
//! ([`mtp_faults::diamond_mtp`], [`mtp_bench::topo::two_path_mtp`], …),
//! so a scenario file that names the same parameters reproduces the same
//! packet-level run — the golden-replay tests pin this byte-for-byte.
//! Every assertion is checked non-panicking: violations come back as
//! strings naming the assertion, never as a crash, so one broken cell
//! cannot take down a corpus run.

use mtp_bench::study::{completion_stats, corrupted_frames, percentile, us};
use mtp_bench::topo::{
    dumbbell, dumbbell_dst, dumbbell_src, leaf_spine, ls_addr, two_path_mtp, two_path_tcp,
};
use mtp_core::{MtpConfig, MtpSenderNode, MtpSinkNode, ScheduledMsg};
use mtp_faults::{diamond_mtp, diamond_tcp, Diamond, FaultDriver, FaultSchedule, Ledger, LinkSpec};
use mtp_net::{Strategy, SwitchNode};
use mtp_sim::time::{Bandwidth, Duration, Time};
use mtp_sim::{DirLinkId, LinkFailMode, NodeId, Simulator};
use mtp_tcp::{TcpConfig, TcpSenderNode, TcpSinkNode, TcpWorkloadMode};
use mtp_wire::PathletId;
use mtp_workload::{poisson_schedule, SizeDist};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::Serialize;

use crate::schema::{
    Asserts, CellAsserts, FailMode, FaultSpec, LinkParams, Protocol, Scenario, Topology,
    TwoPathStrategy, Workload,
};

/// Measured outcome of one cell, as written to the report.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CellResult {
    /// Owning scenario name.
    pub scenario: String,
    /// Protocol key (`mtp`, `tcp-newreno`, `tcp-dctcp`).
    pub protocol: String,
    /// The cell's simulator seed.
    pub seed: u64,
    /// Messages completed at their senders.
    pub completed: u64,
    /// Scheduled messages that never completed.
    pub unfinished: u64,
    /// Completions strictly inside `assert.window_us` (absent without a
    /// window).
    pub during_window: Option<u64>,
    /// Nearest-rank p50 message completion time, microseconds.
    pub p50_us: Option<f64>,
    /// Nearest-rank p99 message completion time, microseconds.
    pub p99_us: Option<f64>,
    /// Sender retransmission timeouts.
    pub timeouts: u64,
    /// Sender retransmissions.
    pub retransmissions: u64,
    /// Mean sink goodput after `assert.warmup_bins` bins, Gbps
    /// (single-sink topologies only).
    pub goodput_mean_gbps: Option<f64>,
    /// Frames damaged in flight (diamond only).
    pub corrupted_frames: Option<u64>,
    /// FNV-1a-64 digest of the run's observable state.
    pub digest: String,
    /// Violated assertions, empty when the cell passed.
    pub violations: Vec<String>,
}

/// One executed cell: the reportable result plus the raw exactly-once
/// ledger (single-sender MTP cells only), which the golden-replay tests
/// compare against the figure binaries'.
pub struct CellRun {
    /// The reportable result.
    pub result: CellResult,
    /// The captured ledger, when the topology has exactly one MTP
    /// sender/sink pair.
    pub ledger: Option<Ledger>,
}

/// Outcome of a whole scenario: every protocol × seed cell.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ScenarioResult {
    /// Scenario name.
    pub name: String,
    /// Scenario description.
    pub description: String,
    /// True when no cell has violations.
    pub passed: bool,
    /// All cells, protocol-major in matrix order.
    pub cells: Vec<CellResult>,
}

/// Run every protocol × seed cell of `s`.
pub fn run_scenario(s: &Scenario) -> ScenarioResult {
    let mut cells = Vec::new();
    for p in &s.protocols {
        for &seed in &s.seeds {
            cells.push(execute_cell(s, *p, seed).result);
        }
    }
    ScenarioResult {
        name: s.name.clone(),
        description: s.description.clone(),
        passed: cells.iter().all(|c| c.violations.is_empty()),
        cells,
    }
}

// ------------------------------------------------------------- plumbing

/// FNV-1a 64-bit, rendered as 16 lowercase hex digits.
pub fn fnv64(s: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    format!("{h:016x}")
}

fn to_spec(l: LinkParams) -> LinkSpec {
    LinkSpec::new(
        Bandwidth::from_gbps(l.rate_gbps),
        Duration::from_micros(l.delay_us),
    )
}

/// Name → handle maps a topology publishes for fault resolution.
struct Names {
    pairs: Vec<(&'static str, (DirLinkId, DirLinkId))>,
    links: Vec<(&'static str, DirLinkId)>,
    nodes: Vec<(String, NodeId)>,
}

impl Names {
    fn pair(&self, name: &str) -> (DirLinkId, DirLinkId) {
        self.pairs
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, p)| p)
            .expect("schema validated pair name")
    }

    fn link(&self, name: &str) -> DirLinkId {
        self.links
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, l)| l)
            .expect("schema validated link name")
    }

    fn node(&self, name: &str) -> NodeId {
        self.nodes
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, n)| n)
            .expect("schema validated node name")
    }
}

/// Materialize the scenario's fault specs against resolved handles. Burst
/// seeds mix the cell seed with the spec's `seed_xor`, matching the
/// figure binaries' `SEED ^ 0xA` idiom.
fn build_schedule(faults: &[FaultSpec], names: &Names, seed: u64) -> FaultSchedule {
    let mut sched = FaultSchedule::new();
    let mode = |m: FailMode| match m {
        FailMode::Blackhole => LinkFailMode::Blackhole,
        FailMode::Drain => LinkFailMode::Drain,
    };
    for f in faults {
        match f {
            FaultSpec::CutBoth {
                link,
                from_us,
                to_us,
                mode: m,
            } => {
                let (fwd, rev) = names.pair(link);
                sched.cut_both(fwd, rev, us(*from_us), us(*to_us), mode(*m));
            }
            FaultSpec::LinkDown {
                link,
                at_us,
                mode: m,
            } => {
                sched.link_down(us(*at_us), names.link(link), mode(*m));
            }
            FaultSpec::LinkUp { link, at_us } => {
                sched.link_up(us(*at_us), names.link(link));
            }
            FaultSpec::Degrade {
                link,
                at_us,
                rate_gbps,
                delay_us,
            } => {
                sched.degrade(
                    us(*at_us),
                    names.link(link),
                    Bandwidth::from_gbps(*rate_gbps),
                    Duration::from_micros(*delay_us),
                );
            }
            FaultSpec::CorruptRate {
                link,
                at_us,
                ppm,
                flips,
                seed_xor,
            } => {
                let s = if *ppm == 0 { 0 } else { seed ^ seed_xor };
                sched.corrupt_rate(us(*at_us), names.link(link), *ppm as u32, *flips as u8, s);
            }
            FaultSpec::BitflipBurst {
                link,
                at_us,
                pkts,
                flips,
                seed_xor,
            } => {
                sched.bitflip_burst(
                    us(*at_us),
                    names.link(link),
                    *pkts as u32,
                    *flips as u8,
                    seed ^ seed_xor,
                );
            }
            FaultSpec::TruncateBurst {
                link,
                at_us,
                pkts,
                seed_xor,
            } => {
                sched.truncate_burst(us(*at_us), names.link(link), *pkts as u32, seed ^ seed_xor);
            }
            FaultSpec::CrashRestart {
                node,
                from_us,
                to_us,
            } => {
                sched.crash_restart(names.node(node), us(*from_us), us(*to_us));
            }
        }
    }
    sched
}

/// Where each damaged frame was caught, diamond cells only.
struct CorruptionLedger {
    corrupted: u64,
    caught: u64,
}

/// Everything measured from one finished cell, before assertion checking.
struct Measured {
    sim: Simulator,
    /// `(submitted, completed)` per scheduled message, sender order.
    records: Vec<(Time, Option<Time>)>,
    timeouts: u64,
    retransmissions: u64,
    goodput_series: Option<Vec<f64>>,
    corruption: Option<CorruptionLedger>,
    ledger: Option<Ledger>,
    /// Exactly-once violations for multi-pair topologies (where a single
    /// [`Ledger`] does not apply).
    multi_exactly_once: Option<Vec<String>>,
}

/// The cell digest: FNV-1a-64 over [`cell_dump`]'s deterministic state.
/// Public so the golden-replay tests can digest an inline
/// figure-binary-style run and compare byte-for-byte.
pub fn engine_digest(sim: &Simulator, records: &[(Time, Option<Time>)]) -> String {
    fnv64(&cell_dump(sim, records))
}

/// The deterministic dump digested per cell: the engine-observable state
/// (event count, clock, per-link counters — the same lines the perf-gate
/// digests) plus every message's submit/complete picoseconds.
fn cell_dump(sim: &Simulator, records: &[(Time, Option<Time>)]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    writeln!(
        out,
        "events={} final_now={}",
        sim.events_processed(),
        sim.now().0
    )
    .expect("write to String");
    for i in 0..sim.num_links() {
        let s = sim.link_stats(DirLinkId(i));
        writeln!(
            out,
            "link {i}: offered={} tx={} bytes={} dropped={} marked={} trimmed={} maxq={}",
            s.offered_pkts,
            s.tx_pkts,
            s.tx_bytes,
            s.dropped_pkts,
            s.marked_pkts,
            s.trimmed_pkts,
            s.max_qlen_pkts
        )
        .expect("write to String");
    }
    for (k, (submitted, done)) in records.iter().enumerate() {
        match done {
            Some(t) => writeln!(out, "msg {k}: submitted={} completed={}", submitted.0, t.0),
            None => writeln!(out, "msg {k}: submitted={} completed=-", submitted.0),
        }
        .expect("write to String");
    }
    out
}

fn mtp_cfg(s: &Scenario) -> MtpConfig {
    if s.mtp.failover {
        MtpConfig::default().with_failover()
    } else {
        MtpConfig::default()
    }
}

fn tcp_cfg(p: Protocol) -> TcpConfig {
    match p {
        Protocol::TcpNewReno => TcpConfig::default(),
        Protocol::TcpDctcp => TcpConfig::dctcp(),
        Protocol::Mtp => unreachable!("mtp cells never build a TCP config"),
    }
}

fn single_flow_schedule_mtp(w: &Workload) -> Vec<ScheduledMsg> {
    match w {
        Workload::Periodic {
            count,
            bytes,
            interval_us,
        } => mtp_bench::study::mtp_periodic(*count, *bytes, *interval_us),
        Workload::Single { bytes } => vec![ScheduledMsg::new(Time::ZERO, *bytes as u32)],
        _ => unreachable!("schema restricts single-sender topologies to periodic/single"),
    }
}

fn single_flow_schedule_tcp(w: &Workload) -> Vec<(Time, u64)> {
    match w {
        Workload::Periodic {
            count,
            bytes,
            interval_us,
        } => mtp_bench::study::tcp_periodic(*count, *bytes, *interval_us),
        Workload::Single { bytes } => vec![(Time::ZERO, *bytes)],
        _ => unreachable!("schema restricts single-sender topologies to periodic/single"),
    }
}

// ---------------------------------------------------------------- drive

fn diamond_names(d: &Diamond) -> Names {
    Names {
        pairs: vec![("a", (d.a_fwd, d.a_rev)), ("b", (d.b_fwd, d.b_rev))],
        links: vec![
            ("a_fwd", d.a_fwd),
            ("a_rev", d.a_rev),
            ("b_fwd", d.b_fwd),
            ("b_rev", d.b_rev),
        ],
        nodes: Vec::new(),
    }
}

fn run_diamond(s: &Scenario, p: Protocol, seed: u64) -> Measured {
    let path = match &s.topology {
        Topology::Diamond { path } => to_spec(*path),
        _ => unreachable!("caller dispatched on topology"),
    };
    let horizon = us(s.horizon_us);
    match p {
        Protocol::Mtp => {
            let mut d = diamond_mtp(
                seed,
                mtp_cfg(s),
                single_flow_schedule_mtp(&s.workload),
                path,
            );
            let names = diamond_names(&d);
            let mut drv = FaultDriver::new(build_schedule(&s.faults, &names, seed));
            drv.run_until(&mut d.sim, horizon);
            let corruption = s.asserts.corruption_accounting.then(|| CorruptionLedger {
                corrupted: corrupted_frames(&d),
                caught: d.sim.node_as::<MtpSenderNode>(d.sender).malformed
                    + d.sim.node_as::<MtpSinkNode>(d.sink).malformed
                    + d.sim.node_as::<SwitchNode>(d.sw1).stats.malformed
                    + d.sim.node_as::<SwitchNode>(d.sw2).stats.malformed
                    + d.sim.corrupted_destroyed(),
            });
            let ledger = Ledger::capture(&d.sim, d.sender, d.sink);
            let snd = d.sim.node_as::<MtpSenderNode>(d.sender);
            let records: Vec<_> = snd
                .msgs
                .iter()
                .map(|m| (m.submitted, m.completed))
                .collect();
            let (timeouts, retransmissions) =
                (snd.sender.stats.timeouts, snd.sender.stats.retransmissions);
            let goodput_series = d.sim.node_as::<MtpSinkNode>(d.sink).goodput.rates_gbps();
            Measured {
                sim: d.sim,
                records,
                timeouts,
                retransmissions,
                goodput_series: Some(goodput_series),
                corruption,
                ledger: Some(ledger),
                multi_exactly_once: None,
            }
        }
        tcp => {
            let mut d = diamond_tcp(
                seed,
                tcp_cfg(tcp),
                TcpWorkloadMode::Persistent,
                single_flow_schedule_tcp(&s.workload),
                path,
            );
            let names = diamond_names(&d);
            let mut drv = FaultDriver::new(build_schedule(&s.faults, &names, seed));
            drv.run_until(&mut d.sim, horizon);
            let corruption = s.asserts.corruption_accounting.then(|| CorruptionLedger {
                corrupted: corrupted_frames(&d),
                caught: d.sim.node_as::<TcpSenderNode>(d.sender).malformed
                    + d.sim.node_as::<TcpSinkNode>(d.sink).malformed
                    + d.sim.node_as::<SwitchNode>(d.sw1).stats.malformed
                    + d.sim.node_as::<SwitchNode>(d.sw2).stats.malformed
                    + d.sim.corrupted_destroyed(),
            });
            let snd = d.sim.node_as::<TcpSenderNode>(d.sender);
            let records: Vec<_> = snd
                .msgs
                .iter()
                .map(|m| (m.submitted, m.completed))
                .collect();
            let (timeouts, retransmissions) = (snd.timeouts(), snd.retransmissions());
            let all_done = snd.all_done();
            let goodput_series = d.sim.node_as::<TcpSinkNode>(d.sink).goodput.rates_gbps();
            Measured {
                sim: d.sim,
                records,
                timeouts,
                retransmissions,
                goodput_series: Some(goodput_series),
                corruption,
                ledger: None,
                multi_exactly_once: Some(if all_done {
                    Vec::new()
                } else {
                    vec!["tcp sender did not complete every transfer".to_string()]
                }),
            }
        }
    }
}

fn run_two_path(s: &Scenario, p: Protocol, seed: u64) -> Measured {
    let (a, b, strategy, bin) = match &s.topology {
        Topology::TwoPath {
            a,
            b,
            strategy,
            goodput_bin_us,
        } => {
            let strat = match strategy {
                TwoPathStrategy::Alternate { period_us } => Strategy::Alternate {
                    period: Duration::from_micros(*period_us),
                },
                TwoPathStrategy::Ecmp => Strategy::Ecmp,
                TwoPathStrategy::Spray => Strategy::Spray { next: 0 },
            };
            (
                to_spec(*a),
                to_spec(*b),
                strat,
                Duration::from_micros(*goodput_bin_us),
            )
        }
        _ => unreachable!("caller dispatched on topology"),
    };
    let horizon = us(s.horizon_us);
    match p {
        Protocol::Mtp => {
            let mut t = two_path_mtp(
                seed,
                strategy,
                a,
                b,
                single_flow_schedule_mtp(&s.workload),
                mtp_cfg(s),
                bin,
            );
            let names = Names {
                pairs: Vec::new(),
                links: vec![("a_fwd", t.path_a), ("b_fwd", t.path_b)],
                nodes: Vec::new(),
            };
            let mut drv = FaultDriver::new(build_schedule(&s.faults, &names, seed));
            drv.run_until(&mut t.sim, horizon);
            let ledger = Ledger::capture(&t.sim, t.sender, t.sink);
            let snd = t.sim.node_as::<MtpSenderNode>(t.sender);
            let records: Vec<_> = snd
                .msgs
                .iter()
                .map(|m| (m.submitted, m.completed))
                .collect();
            let (timeouts, retransmissions) =
                (snd.sender.stats.timeouts, snd.sender.stats.retransmissions);
            let goodput_series = t.sim.node_as::<MtpSinkNode>(t.sink).goodput.rates_gbps();
            Measured {
                sim: t.sim,
                records,
                timeouts,
                retransmissions,
                goodput_series: Some(goodput_series),
                corruption: None,
                ledger: Some(ledger),
                multi_exactly_once: None,
            }
        }
        tcp => {
            let mut t = two_path_tcp(
                seed,
                strategy,
                a,
                b,
                single_flow_schedule_tcp(&s.workload),
                tcp_cfg(tcp),
                TcpWorkloadMode::Persistent,
                bin,
            );
            let names = Names {
                pairs: Vec::new(),
                links: vec![("a_fwd", t.path_a), ("b_fwd", t.path_b)],
                nodes: Vec::new(),
            };
            let mut drv = FaultDriver::new(build_schedule(&s.faults, &names, seed));
            drv.run_until(&mut t.sim, horizon);
            let snd = t.sim.node_as::<TcpSenderNode>(t.sender);
            let records: Vec<_> = snd
                .msgs
                .iter()
                .map(|m| (m.submitted, m.completed))
                .collect();
            let (timeouts, retransmissions) = (snd.timeouts(), snd.retransmissions());
            let all_done = snd.all_done();
            let goodput_series = t.sim.node_as::<TcpSinkNode>(t.sink).goodput.rates_gbps();
            Measured {
                sim: t.sim,
                records,
                timeouts,
                retransmissions,
                goodput_series: Some(goodput_series),
                corruption: None,
                ledger: None,
                multi_exactly_once: Some(if all_done {
                    Vec::new()
                } else {
                    vec!["tcp sender did not complete every transfer".to_string()]
                }),
            }
        }
    }
}

fn run_dumbbell(s: &Scenario, seed: u64) -> Measured {
    let (edge, shared) = match &s.topology {
        Topology::Dumbbell { edge, shared } => (to_spec(*edge), to_spec(*shared)),
        _ => unreachable!("caller dispatched on topology"),
    };
    let Workload::Tenants {
        elephants,
        elephant_bytes,
        mice,
        mice_load,
        mice_min_bytes,
        mice_max_bytes,
    } = &s.workload
    else {
        unreachable!("schema restricts dumbbell to the tenants workload")
    };
    let n = (elephants + mice) as usize;
    let cfg = mtp_cfg(s);
    let sizes = SizeDist::BoundedPareto {
        alpha: 1.1,
        min: *mice_min_bytes,
        max: *mice_max_bytes,
    };
    let horizon = Duration::from_micros(s.horizon_us);
    let make_schedule = |i: usize| -> Vec<ScheduledMsg> {
        if (i as u64) < *elephants {
            vec![ScheduledMsg::new(Time::ZERO, *elephant_bytes as u32)]
        } else {
            // Each mouse runs its own seeded open-loop Poisson process at
            // `mice_load` of its edge link.
            let mut rng =
                SmallRng::seed_from_u64(seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            poisson_schedule(
                &mut rng,
                &sizes,
                edge.rate,
                *mice_load,
                Time::ZERO,
                horizon,
                None,
            )
            .into_iter()
            .map(|(t, b)| ScheduledMsg::new(t, b as u32))
            .collect()
        }
    };
    let d = dumbbell(
        seed,
        n,
        |i| {
            Box::new(MtpSenderNode::new(
                cfg.clone(),
                dumbbell_src(i),
                dumbbell_dst(i),
                mtp_wire::EntityId(dumbbell_src(i)),
                ((i as u64) + 1) << 40,
                make_schedule(i),
            ))
        },
        |i| {
            Box::new(MtpSinkNode::new(
                dumbbell_dst(i),
                Duration::from_micros(100),
            ))
        },
        edge,
        shared,
        None,
        None,
    );
    let mut sim = d.sim;
    let names = Names {
        pairs: Vec::new(),
        links: vec![("shared", d.bottleneck)],
        nodes: Vec::new(),
    };
    let mut drv = FaultDriver::new(build_schedule(&s.faults, &names, seed));
    drv.run_until(&mut sim, us(s.horizon_us));
    let mut records = Vec::new();
    let (mut timeouts, mut retransmissions) = (0u64, 0u64);
    let mut multi = Vec::new();
    for (i, (&snd, &sink)) in d.senders.iter().zip(d.sinks.iter()).enumerate() {
        let node = sim.node_as::<MtpSenderNode>(snd);
        records.extend(node.msgs.iter().map(|m| (m.submitted, m.completed)));
        timeouts += node.sender.stats.timeouts;
        retransmissions += node.sender.stats.retransmissions;
        multi.extend(
            Ledger::capture(&sim, snd, sink)
                .check_exactly_once()
                .into_iter()
                .map(|v| format!("pair {i}: {v}")),
        );
    }
    Measured {
        sim,
        records,
        timeouts,
        retransmissions,
        goodput_series: None,
        corruption: None,
        ledger: None,
        multi_exactly_once: Some(multi),
    }
}

fn run_leaf_spine(s: &Scenario, seed: u64) -> Measured {
    let (leaves, spines, hpl, host_link, spine_link) = match &s.topology {
        Topology::LeafSpine {
            leaves,
            spines,
            hosts_per_leaf,
            host_link,
            spine_link,
        } => (
            *leaves as usize,
            *spines as usize,
            *hosts_per_leaf as usize,
            to_spec(*host_link),
            to_spec(*spine_link),
        ),
        _ => unreachable!("caller dispatched on topology"),
    };
    let Workload::Fanin {
        rounds,
        bytes,
        stagger_us,
        round_gap_us,
    } = &s.workload
    else {
        unreachable!("schema restricts leaf-spine to the fanin workload")
    };
    let cfg = mtp_cfg(s);
    // The aggregator is host 0 of leaf 0; every other host fans in to it.
    let target = ls_addr(0, hpl, 0);
    let failover = s.mtp.failover;
    let ls = leaf_spine(
        seed,
        leaves,
        spines,
        hpl,
        |leaf, i, addr| {
            if addr == target {
                Box::new(MtpSinkNode::new(addr, Duration::from_micros(100)))
            } else {
                let k = (leaf * hpl + i) as u64;
                let sched: Vec<ScheduledMsg> = (0..*rounds)
                    .map(|m| {
                        ScheduledMsg::new(us(stagger_us * k + round_gap_us * m), *bytes as u32)
                    })
                    .collect();
                Box::new(MtpSenderNode::new(
                    cfg.clone(),
                    addr,
                    target,
                    mtp_wire::EntityId(addr),
                    (k + 1) << 40,
                    sched,
                ))
            }
        },
        |_leaf| {
            if failover {
                // Pathlet-aware spreading over the spines, so quarantining
                // a crashed spine's pathlet re-steers onto survivors.
                Strategy::mtp_lb(
                    spines,
                    (1..=spines).map(|p| Some(PathletId(p as u16))).collect(),
                )
            } else {
                Strategy::Ecmp
            }
        },
        host_link,
        spine_link,
    );
    let mut sim = ls.sim;
    let names = Names {
        pairs: Vec::new(),
        links: Vec::new(),
        nodes: ls
            .spines
            .iter()
            .enumerate()
            .map(|(i, &n)| (format!("spine{i}"), n))
            .collect(),
    };
    let mut drv = FaultDriver::new(build_schedule(&s.faults, &names, seed));
    drv.run_until(&mut sim, us(s.horizon_us));

    let sink_node = ls.hosts[0];
    let mut records = Vec::new();
    let (mut timeouts, mut retransmissions) = (0u64, 0u64);
    let mut sent_bytes = 0u64;
    for &h in ls.hosts.iter().skip(1) {
        let node = sim.node_as::<MtpSenderNode>(h);
        records.extend(node.msgs.iter().map(|m| (m.submitted, m.completed)));
        timeouts += node.sender.stats.timeouts;
        retransmissions += node.sender.stats.retransmissions;
        sent_bytes += node
            .msgs
            .iter()
            .filter(|m| m.completed.is_some())
            .map(|m| m.bytes as u64)
            .sum::<u64>();
    }
    // Aggregated exactly-once across the fan-in: all senders' completions
    // vs the single sink's deliveries.
    let mut multi = Vec::new();
    {
        let sink = sim.node_as::<MtpSinkNode>(sink_node);
        let mut ids: Vec<u64> = sink.delivered.iter().map(|d| d.id.0).collect();
        ids.sort_unstable();
        for w in ids.windows(2) {
            if w[0] == w[1] {
                multi.push(format!("duplicate delivery of {}", w[0]));
            }
        }
        let completed = records.iter().filter(|(_, c)| c.is_some()).count();
        if sink.delivered.len() != completed {
            multi.push(format!(
                "{} deliveries != {} completions",
                sink.delivered.len(),
                completed
            ));
        }
        let unfinished = records.len() - completed;
        if unfinished != 0 {
            multi.push(format!("{unfinished} unfinished messages"));
        }
        let got: u64 = sink.delivered.iter().map(|d| d.bytes as u64).sum();
        if got != sent_bytes {
            multi.push(format!(
                "byte totals disagree: sent {sent_bytes}, delivered {got}"
            ));
        }
        if sink.total_goodput() != got {
            multi.push(format!(
                "goodput counts duplicates: goodput {}, delivered {got}",
                sink.total_goodput()
            ));
        }
    }
    Measured {
        sim,
        records,
        timeouts,
        retransmissions,
        goodput_series: None,
        corruption: None,
        ledger: None,
        multi_exactly_once: Some(multi),
    }
}

// ---------------------------------------------------------------- check

fn check_cell_asserts(c: &CellAsserts, r: &CellResult, m: &Measured, out: &mut Vec<String>) {
    if c.exactly_once {
        match (&m.ledger, &m.multi_exactly_once) {
            (Some(l), _) => out.extend(
                l.check_exactly_once()
                    .into_iter()
                    .map(|v| format!("assert exactly_once: {v}")),
            ),
            (None, Some(multi)) => {
                out.extend(multi.iter().map(|v| format!("assert exactly_once: {v}")))
            }
            (None, None) => out.push("assert exactly_once: no ledger captured".to_string()),
        }
    }
    if let Some(want) = c.completed {
        if r.completed != want {
            out.push(format!(
                "assert completed: expected {want}, got {}",
                r.completed
            ));
        }
    }
    if let Some(min) = c.completed_min {
        if r.completed < min {
            out.push(format!(
                "assert completed_min: expected >= {min}, got {}",
                r.completed
            ));
        }
    }
    if let Some(min) = c.during_window_min {
        let got = r.during_window.unwrap_or(0);
        if got < min {
            out.push(format!(
                "assert during_window_min: expected >= {min}, got {got}"
            ));
        }
    }
    if let Some(max) = c.during_window_max {
        let got = r.during_window.unwrap_or(0);
        if got > max {
            out.push(format!(
                "assert during_window_max: expected <= {max}, got {got}"
            ));
        }
    }
    if let Some(bound) = c.p50_max_us {
        match r.p50_us {
            Some(v) if v <= bound => {}
            Some(v) => out.push(format!("assert p50_max_us: expected <= {bound}, got {v}")),
            None => out.push(format!(
                "assert p50_max_us: expected <= {bound}, but nothing completed"
            )),
        }
    }
    if let Some(bound) = c.p99_max_us {
        match r.p99_us {
            Some(v) if v <= bound => {}
            Some(v) => out.push(format!("assert p99_max_us: expected <= {bound}, got {v}")),
            None => out.push(format!(
                "assert p99_max_us: expected <= {bound}, but nothing completed"
            )),
        }
    }
    if let Some(max) = c.timeouts_max {
        if r.timeouts > max {
            out.push(format!(
                "assert timeouts_max: expected <= {max}, got {}",
                r.timeouts
            ));
        }
    }
    if let Some(min) = c.goodput_mean_min_gbps {
        match r.goodput_mean_gbps {
            Some(v) if v >= min => {}
            Some(v) => out.push(format!(
                "assert goodput_mean_min_gbps: expected >= {min}, got {v:.3}"
            )),
            None => out.push(format!(
                "assert goodput_mean_min_gbps: expected >= {min}, but no goodput series"
            )),
        }
    }
}

/// Build, run, measure, and check one cell. Never panics on assertion
/// failure — violations come back inside the result.
pub fn execute_cell(s: &Scenario, p: Protocol, seed: u64) -> CellRun {
    let m = match &s.topology {
        Topology::Diamond { .. } => run_diamond(s, p, seed),
        Topology::TwoPath { .. } => run_two_path(s, p, seed),
        Topology::Dumbbell { .. } => run_dumbbell(s, seed),
        Topology::LeafSpine { .. } => run_leaf_spine(s, seed),
    };

    let stats = completion_stats(m.records.iter().copied(), s.asserts.window_us);
    let warm = s.asserts.warmup_bins as usize;
    let goodput_mean = m.goodput_series.as_ref().map(|series| {
        let tail = &series[warm.min(series.len())..];
        if tail.is_empty() {
            0.0
        } else {
            tail.iter().sum::<f64>() / tail.len() as f64
        }
    });
    let digest = engine_digest(&m.sim, &m.records);

    let mut r = CellResult {
        scenario: s.name.clone(),
        protocol: p.key().to_string(),
        seed,
        completed: stats.completed as u64,
        unfinished: (m.records.len() - stats.completed) as u64,
        during_window: s.asserts.window_us.map(|_| stats.during_window as u64),
        p50_us: (stats.completed > 0).then_some(stats.p50_us),
        p99_us: (stats.completed > 0).then_some(stats.p99_us),
        timeouts: m.timeouts,
        retransmissions: m.retransmissions,
        goodput_mean_gbps: goodput_mean,
        corrupted_frames: m.corruption.as_ref().map(|c| c.corrupted),
        digest,
        violations: Vec::new(),
    };

    let mut v = Vec::new();
    check_asserts(&s.asserts, p, seed, &r, &m, &mut v);
    r.violations = v;
    CellRun {
        result: r,
        ledger: m.ledger,
    }
}

fn check_asserts(
    a: &Asserts,
    p: Protocol,
    seed: u64,
    r: &CellResult,
    m: &Measured,
    out: &mut Vec<String>,
) {
    if a.conservation {
        let report = m.sim.audit();
        out.extend(
            report
                .violations
                .iter()
                .map(|v| format!("assert conservation: {v}")),
        );
    }
    if let Some(c) = m.corruption.as_ref() {
        if c.corrupted == 0 {
            out.push("assert corruption_accounting: the storm never damaged a frame".to_string());
        } else if c.caught != c.corrupted {
            out.push(format!(
                "assert corruption_accounting: {} accounted for, {} damaged",
                c.caught, c.corrupted
            ));
        }
    }
    if let Some((_, cell)) = a.cells.iter().find(|(proto, _)| *proto == p) {
        check_cell_asserts(cell, r, m, out);
    }
    let key = format!("{}/{seed}", p.key());
    if let Some((_, want)) = a.digests.iter().find(|(k, _)| *k == key) {
        if *want != r.digest {
            out.push(format!("assert digests: expected {want}, got {}", r.digest));
        }
    }
}

/// Nearest-rank percentile re-export for report consumers (the same
/// formula the figure binaries use).
pub fn pct(sorted: &[f64], p: f64) -> f64 {
    percentile(sorted, p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::from_str;

    fn smoke_scenario() -> Scenario {
        from_str(
            r#"
[scenario]
name = "smoke"
seeds = [3]
horizon_us = 20000
protocols = ["mtp"]

[topology]
kind = "diamond"
[topology.path]
rate_gbps = 10
delay_us = 5

[workload]
kind = "periodic"
count = 4
bytes = 20000
interval_us = 50

[assert]
conservation = true
[assert.cells.mtp]
exactly_once = true
completed = 4
"#,
        )
        .expect("valid scenario")
    }

    #[test]
    fn smoke_cell_passes_and_is_deterministic() {
        let s = smoke_scenario();
        let a = execute_cell(&s, Protocol::Mtp, 3);
        assert!(
            a.result.violations.is_empty(),
            "violations: {:?}",
            a.result.violations
        );
        assert_eq!(a.result.completed, 4);
        let b = execute_cell(&s, Protocol::Mtp, 3);
        assert_eq!(a.result, b.result, "replay must be byte-identical");
        assert_eq!(a.ledger, b.ledger);
    }

    #[test]
    fn unsatisfiable_bound_reports_instead_of_panicking() {
        let mut s = smoke_scenario();
        s.asserts.cells[0].1.completed = Some(9999);
        let r = run_scenario(&s);
        assert!(!r.passed);
        let v = &r.cells[0].violations;
        assert!(
            v.iter().any(|v| v.contains("assert completed")),
            "violations: {v:?}"
        );
    }
}
