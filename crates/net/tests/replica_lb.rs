//! End-to-end tests of the L7 replica load balancer (paper Fig. 1 ②a/③b).

use mtp_core::MtpConfig;
use mtp_net::{KvClientNode, KvServerNode, ReplicaLbNode, ReplicaPolicy};
use mtp_sim::time::{Bandwidth, Duration, Time};
use mtp_sim::{LinkCfg, NodeId, PortId, Simulator};

const SERVICE: u16 = 50;
const N_REQ: u64 = 120;

/// Client -> LB -> 2 replicas; replica 1 is 10x slower than replica 0.
fn build(policy: ReplicaPolicy) -> (Simulator, NodeId, NodeId) {
    let mut sim = Simulator::new(21);
    let cfg = MtpConfig::default();
    let schedule: Vec<(Time, u64)> = (0..N_REQ)
        .map(|i| (Time::ZERO + Duration::from_micros(4 * i), 10_000 + i))
        .collect();
    let client = sim.add_node(Box::new(KvClientNode::new(
        cfg.clone(),
        1,
        SERVICE,
        256,
        1 << 32,
        schedule,
    )));
    let lb = sim.add_node(Box::new(ReplicaLbNode::new(SERVICE, &[60, 61], policy)));
    let fast_replica = sim.add_node(Box::new(KvServerNode::new(
        cfg.clone(),
        60,
        1024,
        Duration::from_micros(1),
        2 << 32,
    )));
    let slow_replica = sim.add_node(Box::new(KvServerNode::new(
        cfg,
        61,
        1024,
        Duration::from_micros(10),
        3 << 32,
    )));
    let bw = Bandwidth::from_gbps(100);
    let d = Duration::from_micros(1);
    let mk = || LinkCfg::ecn(bw, d, 256, 40);
    sim.connect(client, PortId(0), lb, PortId(0), mk(), mk());
    sim.connect(lb, PortId(1), fast_replica, PortId(0), mk(), mk());
    sim.connect(lb, PortId(2), slow_replica, PortId(0), mk(), mk());
    (sim, client, lb)
}

fn run_audited(sim: &mut Simulator) {
    sim.run_until(Time::ZERO + Duration::from_millis(50));
    mtp_sim::assert_conservation(sim);
}

#[test]
fn round_robin_splits_requests_evenly() {
    let (mut sim, client, lb) = build(ReplicaPolicy::RoundRobin);
    run_audited(&mut sim);
    let served = sim.node_as::<ReplicaLbNode>(lb).served_per_replica();
    assert_eq!(served.iter().sum::<u64>(), N_REQ);
    assert_eq!(served[0], served[1], "RR must split 50/50, got {served:?}");
    assert_eq!(sim.node_as::<KvClientNode>(client).done() as u64, N_REQ);
}

#[test]
fn least_outstanding_favors_the_fast_replica() {
    let (mut sim, client, lb) = build(ReplicaPolicy::LeastOutstanding);
    run_audited(&mut sim);
    let served = sim.node_as::<ReplicaLbNode>(lb).served_per_replica();
    assert_eq!(served.iter().sum::<u64>(), N_REQ);
    assert!(
        served[0] > served[1] * 2,
        "fast replica should absorb most load: {served:?}"
    );
    assert_eq!(sim.node_as::<KvClientNode>(client).done() as u64, N_REQ);
}

#[test]
fn load_aware_beats_round_robin_on_mean_latency() {
    let mean_latency = |policy| {
        let (mut sim, client, _) = build(policy);
        run_audited(&mut sim);
        let c = sim.node_as::<KvClientNode>(client);
        let v: Vec<f64> = c
            .completions
            .iter()
            .map(|(_, l, _)| l.as_micros_f64())
            .collect();
        v.iter().sum::<f64>() / v.len().max(1) as f64
    };
    let rr = mean_latency(ReplicaPolicy::RoundRobin);
    let lo = mean_latency(ReplicaPolicy::LeastOutstanding);
    assert!(
        lo < rr,
        "load-aware selection should cut mean latency: RR {rr:.1}us vs LO {lo:.1}us"
    );
}

#[test]
fn outstanding_counters_drain_to_zero() {
    let (mut sim, _client, lb) = build(ReplicaPolicy::LeastOutstanding);
    run_audited(&mut sim);
    let lb = sim.node_as::<ReplicaLbNode>(lb);
    assert_eq!(
        lb.outstanding_per_replica(),
        vec![0, 0],
        "all requests answered"
    );
    assert_eq!(lb.stats.requests, N_REQ);
    assert_eq!(lb.stats.replies, N_REQ);
}
