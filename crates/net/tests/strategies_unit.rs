//! Focused strategy behaviour: alternation boundaries, spray rotation,
//! ECMP stability, and message pinning — driven through a minimal switch
//! so the `Ctx` plumbing is real.

use mtp_net::{FanoutForwarder, StaticRoutes, Strategy, SwitchNode};
use mtp_sim::packet::{Headers, Packet};
use mtp_sim::time::{Bandwidth, Duration, Time};
use mtp_sim::{Ctx, Node, PortId, Simulator};
use mtp_wire::{MsgId, MtpHeader, PathletId, PktNum, PktType};

/// Sends a scripted packet list at scripted times.
struct Script {
    // (time, packet)
    items: Vec<(Time, Packet)>,
}
impl Node for Script {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for (i, (t, _)) in self.items.iter().enumerate() {
            ctx.set_timer_at(*t, i as u64);
        }
    }
    fn on_packet(&mut self, _: &mut Ctx<'_>, _: PortId, _: Packet) {}
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        let pkt = self.items[token as usize].1.clone();
        ctx.send(PortId(0), pkt);
    }
}

#[derive(Default)]
struct CountSink {
    got: usize,
}
impl Node for CountSink {
    fn on_packet(&mut self, _: &mut Ctx<'_>, _: PortId, _: Packet) {
        self.got += 1;
    }
}

fn data_pkt(msg: u64, pkt: u32, n_pkts: u32) -> Packet {
    let hdr = MtpHeader {
        pkt_type: PktType::Data,
        dst_port: 9,
        msg_id: MsgId(msg),
        msg_len_pkts: n_pkts,
        msg_len_bytes: n_pkts * 1000,
        pkt_num: PktNum(pkt),
        pkt_len: 1000,
        flags: if pkt == n_pkts - 1 {
            mtp_wire::types::flags::LAST_PKT
        } else {
            0
        },
        ..MtpHeader::default()
    };
    Packet::new(Headers::Mtp(Box::new(hdr)), 1040)
}

/// Run the scripted packets through a switch with the given strategy and
/// return how many landed on each of the two fan sinks.
fn split(strategy: Strategy, items: Vec<(Time, Packet)>) -> (usize, usize) {
    let mut sim = Simulator::new(1);
    let src = sim.add_node(Box::new(Script { items }));
    let sw = sim.add_node(Box::new(SwitchNode::new(
        "sw",
        Box::new(FanoutForwarder::new(
            StaticRoutes::new(),
            vec![PortId(1), PortId(2)],
            strategy,
        )),
    )));
    let s1 = sim.add_node(Box::new(CountSink::default()));
    let s2 = sim.add_node(Box::new(CountSink::default()));
    let bw = Bandwidth::from_gbps(100);
    let d = Duration::from_micros(1);
    sim.connect_symmetric(src, PortId(0), sw, PortId(0), bw, d, 1024);
    sim.connect_symmetric(sw, PortId(1), s1, PortId(0), bw, d, 1024);
    sim.connect_symmetric(sw, PortId(2), s2, PortId(0), bw, d, 1024);
    sim.run();
    mtp_sim::assert_conservation(&sim);
    (
        sim.node_as::<CountSink>(s1).got,
        sim.node_as::<CountSink>(s2).got,
    )
}

#[test]
fn spray_alternates_exactly() {
    let items: Vec<(Time, Packet)> = (0..10).map(|i| (Time(i), data_pkt(i, 0, 1))).collect();
    let (a, b) = split(Strategy::Spray { next: 0 }, items);
    assert_eq!((a, b), (5, 5));
}

#[test]
fn alternate_respects_period_boundaries() {
    // Period 10 us: packets at 0..10 us take port 1; 10..20 us port 2.
    let mut items = Vec::new();
    for i in 0..5u64 {
        items.push((Time(Duration::from_micros(i).0), data_pkt(i, 0, 1)));
    }
    for i in 0..5u64 {
        items.push((
            Time(Duration::from_micros(10 + i).0),
            data_pkt(100 + i, 0, 1),
        ));
    }
    let (a, b) = split(
        Strategy::Alternate {
            period: Duration::from_micros(10),
        },
        items,
    );
    assert_eq!((a, b), (5, 5), "clean switchover at the period boundary");
}

#[test]
fn ecmp_is_deterministic_per_message() {
    // The same message id always hashes to the same port; different ids
    // spread.
    let items: Vec<(Time, Packet)> = (0..20)
        .map(|i| (Time(i), data_pkt(7, (i % 4) as u32, 4)))
        .collect();
    let (a, b) = split(Strategy::Ecmp, items);
    assert!(
        a == 20 || b == 20,
        "all packets of one message follow one path: ({a}, {b})"
    );
}

#[test]
fn mtp_lb_never_splits_a_message() {
    // Interleave two multi-packet messages; each must stay whole.
    let mut items = Vec::new();
    for p in 0..6u32 {
        items.push((Time(2 * p as u64), data_pkt(1, p, 6)));
        items.push((Time(2 * p as u64 + 1), data_pkt(2, p, 6)));
    }
    let (a, b) = split(
        Strategy::mtp_lb(2, vec![Some(PathletId(1)), Some(PathletId(2))]),
        items,
    );
    // Two messages of 6 packets: with per-message pinning the only legal
    // splits are 12/0 or 6/6 — anything else tore a message apart.
    assert!(
        (a, b) == (6, 6) || (a, b) == (12, 0) || (a, b) == (0, 12),
        "illegal split ({a}, {b})"
    );
}
