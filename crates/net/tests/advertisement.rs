//! Path advertisement: the network tells end-hosts which pathlets exist
//! (paper §4, the NDP sketch — "end-hosts learn about available paths
//! from the network").

use mtp_core::{MtpConfig, MtpSenderNode, MtpSinkNode, ScheduledMsg};
use mtp_net::{
    AdvertiseCfg, FanoutForwarder, Stamp, StampKind, StaticRoutes, Strategy, SwitchNode,
};
use mtp_sim::time::{Bandwidth, Duration, Time};
use mtp_sim::{LinkCfg, PortId, Simulator};
use mtp_wire::{EntityId, PathletId, TrafficClass};

#[test]
fn sender_learns_pathlets_before_sending_data() {
    let mut sim = Simulator::new(44);
    // The sender's first message is scheduled well after several
    // advertisement periods.
    let snd = sim.add_node(Box::new(MtpSenderNode::new(
        MtpConfig::default(),
        1,
        2,
        EntityId(0),
        1 << 40,
        vec![ScheduledMsg::new(
            Time::ZERO + Duration::from_micros(500),
            100_000,
        )],
    )));
    let sw1 = sim.add_node(Box::new(
        SwitchNode::new(
            "sw1",
            Box::new(FanoutForwarder::new(
                StaticRoutes::new().add(1, PortId(0)),
                vec![PortId(1), PortId(2)],
                Strategy::mtp_lb(2, vec![Some(PathletId(1)), Some(PathletId(2))]),
            )),
        )
        .with_stamp(PortId(1), Stamp::new(PathletId(1), StampKind::Presence))
        .with_stamp(PortId(2), Stamp::new(PathletId(2), StampKind::QueueDepth))
        .with_path_advertisement(AdvertiseCfg {
            interval: Duration::from_micros(100),
            hosts: vec![1],
        }),
    ));
    let sw2 = sim.add_node(Box::new(SwitchNode::new(
        "sw2",
        Box::new(FanoutForwarder::new(
            StaticRoutes::new().add(2, PortId(0)),
            vec![PortId(1), PortId(2)],
            Strategy::Fixed,
        )),
    )));
    let sink = sim.add_node(Box::new(MtpSinkNode::new(2, Duration::from_micros(100))));

    let bw = Bandwidth::from_gbps(100);
    let d = Duration::from_micros(1);
    let mk = || LinkCfg::ecn(bw, d, 128, 20);
    sim.connect(snd, PortId(0), sw1, PortId(0), mk(), mk());
    sim.connect(sw1, PortId(1), sw2, PortId(1), mk(), mk());
    sim.connect(sw1, PortId(2), sw2, PortId(2), mk(), mk());
    sim.connect(sw2, PortId(0), sink, PortId(0), mk(), mk());

    // Run to just before the first message: the sender must already know
    // both pathlets from advertisements alone.
    sim.run_until(Time::ZERO + Duration::from_micros(450));
    {
        let sender = sim.node_as::<MtpSenderNode>(snd);
        assert!(
            sender
                .sender
                .pathlets()
                .get(PathletId(1), TrafficClass::BEST_EFFORT)
                .is_some(),
            "pathlet 1 advertised"
        );
        assert!(
            sender
                .sender
                .pathlets()
                .get(PathletId(2), TrafficClass::BEST_EFFORT)
                .is_some(),
            "pathlet 2 advertised"
        );
        assert_eq!(sender.sender.stats.pkts_sent, 0, "no data sent yet");
    }

    // And the transfer itself still completes.
    sim.run_until(Time::ZERO + Duration::from_millis(20));
    mtp_sim::assert_conservation(&sim);
    assert!(sim.node_as::<MtpSenderNode>(snd).all_done());
    assert_eq!(sim.node_as::<MtpSinkNode>(sink).total_goodput(), 100_000);
}

#[test]
fn advertisements_are_periodic_and_harmless_to_sinks() {
    // A sink receiving Control packets must ignore them gracefully.
    let mut sim = Simulator::new(45);
    let sw = sim.add_node(Box::new(
        SwitchNode::new(
            "sw",
            Box::new(FanoutForwarder::new(
                StaticRoutes::new().add(2, PortId(0)),
                vec![],
                Strategy::Fixed,
            )),
        )
        .with_stamp(PortId(0), Stamp::new(PathletId(9), StampKind::Presence))
        .with_path_advertisement(AdvertiseCfg {
            interval: Duration::from_micros(50),
            hosts: vec![2],
        }),
    ));
    let sink = sim.add_node(Box::new(MtpSinkNode::new(2, Duration::from_micros(100))));
    sim.connect_symmetric(
        sw,
        PortId(0),
        sink,
        PortId(0),
        Bandwidth::from_gbps(10),
        Duration::from_micros(1),
        64,
    );
    sim.run_until(Time::ZERO + Duration::from_micros(500));
    mtp_sim::assert_conservation(&sim);
    let sink = sim.node_as::<MtpSinkNode>(sink);
    assert_eq!(sink.total_goodput(), 0);
    assert_eq!(
        sink.receiver.stats.pkts_seen, 0,
        "control packets are not data"
    );
}
