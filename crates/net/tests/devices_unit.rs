//! Focused device behaviours not covered by the end-to-end scenarios:
//! proxy window coupling, KV server service-order, and compressor
//! interleaving.

use mtp_core::MtpConfig;
use mtp_net::{KvClientNode, KvServerNode, TcpProxyNode};
use mtp_sim::time::{Bandwidth, Duration, Time};
use mtp_sim::{LinkCfg, PortId, Simulator};
use mtp_tcp::TcpConfig;

/// The proxy's advertised client window tracks free relay space: after the
/// relay fills, the client sees rwnd shrink toward zero; after the server
/// drains, the window reopens.
#[test]
fn proxy_window_tracks_relay_occupancy() {
    use mtp_sim::{Ctx, Headers, Node, Packet};
    use mtp_wire::{TcpFlags, TcpHeader};

    /// Captures the rwnd of every ACK the proxy sends the client.
    #[derive(Default)]
    struct WindowProbe {
        windows: Vec<u32>,
        sent: u64,
    }
    impl Node for WindowProbe {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            // Blast 64 segments immediately (no CC — this probe is not a
            // real TCP endpoint, it just offers load).
            for i in 0..64u64 {
                let hdr = TcpHeader {
                    conn_id: 1,
                    src_port: 1,
                    dst_port: 2,
                    seq: i * 1460,
                    payload_len: 1460,
                    flags: TcpFlags::default(),
                    ..TcpHeader::default()
                };
                ctx.send(PortId(0), Packet::new(Headers::Tcp(hdr), 1500));
                self.sent += 1;
            }
        }
        fn on_packet(&mut self, _: &mut Ctx<'_>, _: PortId, pkt: Packet) {
            if let Headers::Tcp(h) = &pkt.headers {
                if h.flags.ack {
                    self.windows.push(h.rwnd);
                }
            }
        }
    }

    let mut sim = Simulator::new(4);
    let cfg = TcpConfig {
        handshake: false,
        ..TcpConfig::default()
    };
    let probe = sim.add_node(Box::new(WindowProbe::default()));
    let cap = 32 * 1024;
    let proxy = sim.add_node(Box::new(TcpProxyNode::new(
        cfg.clone(),
        cfg.clone(),
        1,
        2,
        Some(cap),
    )));
    let sink = sim.add_node(Box::new(mtp_tcp::TcpSinkNode::new(
        cfg,
        Duration::from_micros(100),
    )));
    let fast = Bandwidth::from_gbps(100);
    let slow = Bandwidth::from_gbps(1); // server side drains slowly
    let d = Duration::from_micros(1);
    sim.connect(
        probe,
        PortId(0),
        proxy,
        PortId(0),
        LinkCfg::drop_tail(fast, d, 256),
        LinkCfg::drop_tail(fast, d, 256),
    );
    sim.connect(
        proxy,
        PortId(1),
        sink,
        PortId(0),
        LinkCfg::drop_tail(slow, d, 256),
        LinkCfg::drop_tail(slow, d, 256),
    );
    sim.run_until(Time::ZERO + Duration::from_millis(5));
    mtp_sim::assert_conservation(&sim);

    let probe = sim.node_as::<WindowProbe>(probe);
    assert!(!probe.windows.is_empty());
    let min_w = *probe.windows.iter().min().expect("non-empty");
    let max_w = *probe.windows.iter().max().expect("non-empty");
    assert!(
        min_w < (cap / 4) as u32,
        "window shrinks as the relay fills: min {min_w}"
    );
    assert!(
        max_w <= cap as u32,
        "window never exceeds the relay cap: max {max_w}"
    );
}

/// The KV server answers requests in arrival order with a fixed service
/// time between replies (sequential service discipline).
#[test]
fn kv_server_serves_in_order_at_fixed_rate() {
    let mut sim = Simulator::new(5);
    let cfg = MtpConfig::default();
    let service = Duration::from_micros(10);
    // Requests arrive effectively together.
    let schedule: Vec<(Time, u64)> = (0..5).map(|i| (Time(i), 100 + i)).collect();
    let client = sim.add_node(Box::new(KvClientNode::new(
        cfg.clone(),
        1,
        2,
        256,
        1 << 32,
        schedule,
    )));
    let server = sim.add_node(Box::new(KvServerNode::new(cfg, 2, 512, service, 2 << 32)));
    let bw = Bandwidth::from_gbps(100);
    let d = Duration::from_micros(1);
    sim.connect(
        client,
        PortId(0),
        server,
        PortId(0),
        LinkCfg::ecn(bw, d, 256, 40),
        LinkCfg::ecn(bw, d, 256, 40),
    );
    sim.run_until(Time::ZERO + Duration::from_millis(5));
    mtp_sim::assert_conservation(&sim);

    let client = sim.node_as::<KvClientNode>(client);
    assert_eq!(client.done(), 5);
    // In-order service: completion keys come back in request order.
    let keys: Vec<u64> = client.completions.iter().map(|(k, _, _)| *k).collect();
    assert_eq!(keys, vec![100, 101, 102, 103, 104]);
    // Latencies grow by ~one service time per queue position.
    let lats: Vec<f64> = client
        .completions
        .iter()
        .map(|(_, l, _)| l.as_micros_f64())
        .collect();
    for w in lats.windows(2) {
        let gap = w[1] - w[0];
        assert!(
            (gap - 10.0).abs() < 3.0,
            "sequential service spacing ~10us, got {gap:.1}"
        );
    }
}
