//! Switch-level behaviours: stamping grows packets by exact TLV size,
//! only data packets are stamped, unroutable packets are counted, and
//! ingress policies see every packet.

use mtp_net::{MarkAllPolicy, Stamp, StampKind, StaticForwarder, StaticRoutes, SwitchNode};
use mtp_sim::packet::{Headers, Packet};
use mtp_sim::time::{Bandwidth, Duration};
use mtp_sim::{Ctx, Node, PortId, Simulator};
use mtp_wire::{MtpHeader, PathletId, PktType, PATH_FEEDBACK_PREFIX_LEN};

struct SendList {
    pkts: Vec<Packet>,
}
impl Node for SendList {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for p in self.pkts.drain(..) {
            ctx.send(PortId(0), p);
        }
    }
    fn on_packet(&mut self, _: &mut Ctx<'_>, _: PortId, _: Packet) {}
}

#[derive(Default)]
struct Capture {
    got: Vec<Packet>,
}
impl Node for Capture {
    fn on_packet(&mut self, _: &mut Ctx<'_>, _: PortId, pkt: Packet) {
        self.got.push(pkt);
    }
}

fn mtp_pkt(pkt_type: PktType, dst: u16, wire: u32) -> Packet {
    let hdr = MtpHeader {
        pkt_type,
        dst_port: dst,
        ..MtpHeader::default()
    };
    Packet::new(Headers::Mtp(Box::new(hdr)), wire)
}

fn wire_through_switch(
    switch: SwitchNode,
    pkts: Vec<Packet>,
) -> (Simulator, mtp_sim::NodeId, mtp_sim::NodeId) {
    let mut sim = Simulator::new(1);
    let src = sim.add_node(Box::new(SendList { pkts }));
    let sw = sim.add_node(Box::new(switch));
    let dst = sim.add_node(Box::new(Capture::default()));
    let bw = Bandwidth::from_gbps(10);
    let d = Duration::from_micros(1);
    sim.connect_symmetric(src, PortId(0), sw, PortId(0), bw, d, 64);
    sim.connect_symmetric(sw, PortId(1), dst, PortId(0), bw, d, 64);
    sim.run();
    mtp_sim::assert_conservation(&sim);
    (sim, sw, dst)
}

#[test]
fn stamp_grows_data_packets_by_exact_tlv_size() {
    let sw = SwitchNode::new(
        "sw",
        Box::new(StaticForwarder(StaticRoutes::new().add(2, PortId(1)))),
    )
    .with_stamp(PortId(1), Stamp::new(PathletId(5), StampKind::Presence));
    let (sim, sw_id, dst) = wire_through_switch(sw, vec![mtp_pkt(PktType::Data, 2, 1000)]);
    let got = &sim.node_as::<Capture>(dst).got;
    assert_eq!(got.len(), 1);
    // Presence = EcnMark TLV: 5-byte prefix + 1-byte value.
    let entry_len = (PATH_FEEDBACK_PREFIX_LEN + 1) as u32;
    assert_eq!(got[0].wire_len, 1000 + entry_len);
    let hdr = got[0].headers.as_mtp().expect("mtp");
    assert_eq!(hdr.path_feedback.len(), 1);
    assert_eq!(hdr.path_feedback[0].path, PathletId(5));
    assert_eq!(sim.node_as::<SwitchNode>(sw_id).stats.stamped, 1);
}

#[test]
fn acks_and_control_are_never_stamped() {
    let sw = SwitchNode::new(
        "sw",
        Box::new(StaticForwarder(StaticRoutes::new().add(2, PortId(1)))),
    )
    .with_stamp(PortId(1), Stamp::new(PathletId(5), StampKind::Presence));
    let (sim, sw_id, dst) = wire_through_switch(
        sw,
        vec![
            mtp_pkt(PktType::Ack, 2, 60),
            mtp_pkt(PktType::Nack, 2, 60),
            mtp_pkt(PktType::Control, 2, 60),
        ],
    );
    for p in &sim.node_as::<Capture>(dst).got {
        assert_eq!(p.wire_len, 60, "non-data must not grow");
        assert!(p.headers.as_mtp().expect("mtp").path_feedback.is_empty());
    }
    assert_eq!(sim.node_as::<SwitchNode>(sw_id).stats.stamped, 0);
}

#[test]
fn unroutable_packets_are_counted_and_dropped() {
    let sw = SwitchNode::new(
        "sw",
        Box::new(StaticForwarder(StaticRoutes::new().add(2, PortId(1)))),
    );
    let (sim, sw_id, dst) = wire_through_switch(
        sw,
        vec![
            mtp_pkt(PktType::Data, 99, 500),
            mtp_pkt(PktType::Data, 2, 500),
        ],
    );
    assert_eq!(
        sim.node_as::<Capture>(dst).got.len(),
        1,
        "only the routable one"
    );
    let stats = sim.node_as::<SwitchNode>(sw_id).stats;
    assert_eq!(stats.no_route, 1);
    assert_eq!(stats.forwarded, 1);
}

#[test]
fn ingress_policy_marks_are_counted() {
    let sw = SwitchNode::new(
        "sw",
        Box::new(StaticForwarder(StaticRoutes::new().add(2, PortId(1)))),
    )
    .with_policy(Box::new(MarkAllPolicy));
    let (sim, sw_id, dst) = wire_through_switch(
        sw,
        vec![
            mtp_pkt(PktType::Data, 2, 500),
            mtp_pkt(PktType::Data, 2, 500),
        ],
    );
    let got = &sim.node_as::<Capture>(dst).got;
    assert!(got.iter().all(|p| p.ecn.is_ce()));
    assert_eq!(sim.node_as::<SwitchNode>(sw_id).stats.policy_marked, 2);
}

#[test]
fn raw_packets_pass_policies_and_fail_routing_gracefully() {
    let sw = SwitchNode::new(
        "sw",
        Box::new(StaticForwarder(StaticRoutes::new().add(2, PortId(1)))),
    )
    .with_policy(Box::new(MarkAllPolicy));
    let (sim, sw_id, dst) = wire_through_switch(sw, vec![Packet::new(Headers::Raw, 100)]);
    assert!(
        sim.node_as::<Capture>(dst).got.is_empty(),
        "raw has no address"
    );
    // The structured route error distinguishes "no address" from "no
    // table entry".
    assert_eq!(sim.node_as::<SwitchNode>(sw_id).stats.no_address, 1);
    assert_eq!(sim.node_as::<SwitchNode>(sw_id).stats.no_route, 0);
}
