//! Traffic classes and message priorities acting inside the network.
//!
//! Every MTP packet carries its message's priority and TC (paper §3.1.1),
//! so switches can schedule without flow state: a strict-priority egress
//! queue classifying on `msg_pri` lets urgent messages overtake bulk
//! *inside the network*, and TC-tagging stamps give one pathlet distinct
//! congestion state per class.

use mtp_core::{MtpConfig, MtpSenderNode, MtpSinkNode, ScheduledMsg};
use mtp_net::{Stamp, StampKind, StaticForwarder, StaticRoutes, SwitchNode};
use mtp_sim::time::{Bandwidth, Duration, Time};
use mtp_sim::{Classifier, LinkCfg, PortId, PriorityQueue, Simulator};
use mtp_wire::{EntityId, PathletId, TrafficClass};

/// Priority scheduling at the bottleneck: a tiny urgent message submitted
/// *after* a bulk message still finishes first because the switch's
/// strict-priority queue reads `msg_pri` from every packet.
#[test]
fn urgent_message_overtakes_bulk_in_switch_queue() {
    let run = |priority_queue: bool| -> (Duration, Duration) {
        let mut sim = Simulator::new(51);
        let mut bulk = ScheduledMsg::new(Time::ZERO, 2_000_000);
        bulk.pri = 7;
        // Sender-side scheduling alone cannot help here: the bulk burst is
        // already in the switch queue when the urgent message arrives.
        let mut urgent = ScheduledMsg::new(Time::ZERO + Duration::from_micros(20), 1_460);
        urgent.pri = 0;
        let snd = sim.add_node(Box::new(MtpSenderNode::new(
            MtpConfig::default(),
            1,
            2,
            EntityId(0),
            1 << 40,
            vec![bulk, urgent],
        )));
        let sw = sim.add_node(Box::new(SwitchNode::new(
            "sw",
            Box::new(StaticForwarder(
                StaticRoutes::new().add(1, PortId(0)).add(2, PortId(1)),
            )),
        )));
        let sink = sim.add_node(Box::new(MtpSinkNode::new(2, Duration::from_micros(100))));
        let fast = Bandwidth::from_gbps(100);
        let slow = Bandwidth::from_gbps(1); // bottleneck builds a real queue
        let d = Duration::from_micros(1);
        sim.connect(
            snd,
            PortId(0),
            sw,
            PortId(0),
            LinkCfg::ecn(fast, d, 512, 80),
            LinkCfg::ecn(fast, d, 512, 80),
        );
        let bottleneck_queue: Box<dyn mtp_sim::Qdisc> = if priority_queue {
            let classify: Classifier = Box::new(|p| {
                p.headers
                    .as_mtp()
                    .map(|h| usize::from(h.msg_pri > 0))
                    .unwrap_or(1)
            });
            Box::new(PriorityQueue::new(2, 512, classify))
        } else {
            Box::new(mtp_sim::EcnQueue::new(512, 80))
        };
        sim.connect(
            sw,
            PortId(1),
            sink,
            PortId(0),
            LinkCfg {
                rate: slow,
                delay: d,
                queue: bottleneck_queue,
            },
            LinkCfg::ecn(slow, d, 512, 80),
        );
        sim.run_until(Time::ZERO + Duration::from_millis(100));
        mtp_sim::assert_conservation(&sim);
        let s = sim.node_as::<MtpSenderNode>(snd);
        (
            s.msgs[0].fct().expect("bulk done"),
            s.msgs[1].fct().expect("urgent done"),
        )
    };

    let (_, urgent_fifo) = run(false);
    let (_, urgent_prio) = run(true);
    assert!(
        urgent_prio.0 * 4 < urgent_fifo.0,
        "priority queue must cut the urgent message's FCT sharply: \
         FIFO {urgent_fifo} vs priority {urgent_prio}"
    );
}

/// One pathlet, two traffic classes: the TC-tagging stamp gives each class
/// its own congestion controller at the sender.
#[test]
fn tc_tagging_creates_separate_windows_per_class() {
    let mut sim = Simulator::new(52);
    let mut m1 = ScheduledMsg::new(Time::ZERO, 500_000);
    m1.tc = TrafficClass(1);
    let mut m2 = ScheduledMsg::new(Time::ZERO, 500_000);
    m2.tc = TrafficClass(2);
    let snd = sim.add_node(Box::new(MtpSenderNode::new(
        MtpConfig::default(),
        1,
        2,
        EntityId(0),
        1 << 40,
        vec![m1, m2],
    )));
    // The stamp passes each packet's own TC through (no override).
    let sw = sim.add_node(Box::new(
        SwitchNode::new(
            "sw",
            Box::new(StaticForwarder(
                StaticRoutes::new().add(1, PortId(0)).add(2, PortId(1)),
            )),
        )
        .with_stamp(PortId(1), Stamp::new(PathletId(3), StampKind::Presence)),
    ));
    let sink = sim.add_node(Box::new(MtpSinkNode::new(2, Duration::from_micros(100))));
    let bw = Bandwidth::from_gbps(10);
    let d = Duration::from_micros(1);
    sim.connect(
        snd,
        PortId(0),
        sw,
        PortId(0),
        LinkCfg::ecn(bw, d, 256, 40),
        LinkCfg::ecn(bw, d, 256, 40),
    );
    sim.connect(
        sw,
        PortId(1),
        sink,
        PortId(0),
        LinkCfg::ecn(bw, d, 256, 40),
        LinkCfg::ecn(bw, d, 256, 40),
    );
    sim.run_until(Time::ZERO + Duration::from_millis(50));
    mtp_sim::assert_conservation(&sim);

    let sender = sim.node_as::<MtpSenderNode>(snd);
    assert!(sender.all_done());
    let t = sender.sender.pathlets();
    assert!(
        t.get(PathletId(3), TrafficClass(1)).is_some(),
        "class-1 controller exists"
    );
    assert!(
        t.get(PathletId(3), TrafficClass(2)).is_some(),
        "class-2 controller exists independently"
    );
}

/// A TC-overriding stamp reclassifies traffic: the sender's windows key on
/// the network-assigned class ("network pathlets assign a TC", §3.2).
#[test]
fn stamp_tc_override_reclassifies_feedback() {
    let mut sim = Simulator::new(53);
    let snd = sim.add_node(Box::new(MtpSenderNode::new(
        MtpConfig::default(),
        1,
        2,
        EntityId(0),
        1 << 40,
        vec![ScheduledMsg::new(Time::ZERO, 200_000)], // default TC 0
    )));
    let sw = sim.add_node(Box::new(
        SwitchNode::new(
            "sw",
            Box::new(StaticForwarder(
                StaticRoutes::new().add(1, PortId(0)).add(2, PortId(1)),
            )),
        )
        .with_stamp(
            PortId(1),
            Stamp::new(PathletId(4), StampKind::Presence).with_tc(TrafficClass(9)),
        ),
    ));
    let sink = sim.add_node(Box::new(MtpSinkNode::new(2, Duration::from_micros(100))));
    let bw = Bandwidth::from_gbps(10);
    let d = Duration::from_micros(1);
    sim.connect(
        snd,
        PortId(0),
        sw,
        PortId(0),
        LinkCfg::ecn(bw, d, 256, 40),
        LinkCfg::ecn(bw, d, 256, 40),
    );
    sim.connect(
        sw,
        PortId(1),
        sink,
        PortId(0),
        LinkCfg::ecn(bw, d, 256, 40),
        LinkCfg::ecn(bw, d, 256, 40),
    );
    sim.run_until(Time::ZERO + Duration::from_millis(50));
    mtp_sim::assert_conservation(&sim);

    let sender = sim.node_as::<MtpSenderNode>(snd);
    assert!(sender.all_done());
    assert!(
        sender
            .sender
            .pathlets()
            .get(PathletId(4), TrafficClass(9))
            .is_some(),
        "feedback keyed on the network-assigned class"
    );
}
