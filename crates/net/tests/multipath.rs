//! End-to-end multipath tests: path alternation (the Fig. 5 mechanism),
//! strategy behaviour, and pathlet-state independence.

use mtp_core::{MtpConfig, MtpSenderNode, MtpSinkNode, ScheduledMsg};
use mtp_net::{FanoutForwarder, Stamp, StampKind, StaticRoutes, Strategy, SwitchNode};
use mtp_sim::time::{Bandwidth, Duration, Time};
use mtp_sim::{LinkCfg, NodeId, PortId, Simulator};
use mtp_wire::{EntityId, PathletId, TrafficClass};

const CLIENT: u16 = 1;
const SERVER: u16 = 2;

/// Build client — sw1 =(two paths)= sw2 — server. Returns
/// (sim, sender node, sink node).
fn two_path_topology(
    strategy: Strategy,
    fast: Bandwidth,
    slow: Bandwidth,
    schedule: Vec<ScheduledMsg>,
    cfg: MtpConfig,
) -> (Simulator, NodeId, NodeId) {
    let mut sim = Simulator::new(42);
    let snd = sim.add_node(Box::new(MtpSenderNode::new(
        cfg,
        CLIENT,
        SERVER,
        EntityId(0),
        1 << 40,
        schedule,
    )));
    let sw1 = sim.add_node(Box::new(
        SwitchNode::new(
            "sw1",
            Box::new(FanoutForwarder::new(
                StaticRoutes::new().add(CLIENT, PortId(0)),
                vec![PortId(1), PortId(2)],
                strategy,
            )),
        )
        .with_stamp(PortId(1), Stamp::new(PathletId(1), StampKind::Presence))
        .with_stamp(PortId(2), Stamp::new(PathletId(2), StampKind::Presence)),
    ));
    let sw2 = sim.add_node(Box::new(SwitchNode::new(
        "sw2",
        Box::new(FanoutForwarder::new(
            StaticRoutes::new().add(SERVER, PortId(0)),
            vec![PortId(1), PortId(2)],
            Strategy::Fixed,
        )),
    )));
    let sink = sim.add_node(Box::new(MtpSinkNode::new(
        SERVER,
        Duration::from_micros(32),
    )));

    let d = Duration::from_micros(1);
    let host = Bandwidth::from_gbps(100);
    sim.connect(
        snd,
        PortId(0),
        sw1,
        PortId(0),
        LinkCfg::ecn(host, d, 128, 20),
        LinkCfg::ecn(host, d, 128, 20),
    );
    // Fast path.
    sim.connect(
        sw1,
        PortId(1),
        sw2,
        PortId(1),
        LinkCfg::ecn(fast, d, 128, 20),
        LinkCfg::ecn(fast, d, 128, 20),
    );
    // Slow path.
    sim.connect(
        sw1,
        PortId(2),
        sw2,
        PortId(2),
        LinkCfg::ecn(slow, d, 128, 20),
        LinkCfg::ecn(slow, d, 128, 20),
    );
    sim.connect(
        sw2,
        PortId(0),
        sink,
        PortId(0),
        LinkCfg::ecn(host, d, 128, 20),
        LinkCfg::ecn(host, d, 128, 20),
    );
    (sim, snd, sink)
}

#[test]
fn alternating_paths_build_two_pathlet_controllers() {
    // The Fig. 5 scenario: the first-hop switch flips between a 100 Gbps
    // and a 10 Gbps path every 384 us.
    let (mut sim, snd, sink) = two_path_topology(
        Strategy::Alternate {
            period: Duration::from_micros(384),
        },
        Bandwidth::from_gbps(100),
        Bandwidth::from_gbps(10),
        vec![ScheduledMsg::new(Time::ZERO, 50_000_000)],
        MtpConfig::default(),
    );
    sim.run_until(Time::ZERO + Duration::from_millis(10));
    mtp_sim::assert_conservation(&sim);
    let sender = sim.node_as::<MtpSenderNode>(snd);
    // Both pathlets observed, each with its own converged controller.
    let w1 = sender
        .sender
        .pathlets()
        .get(PathletId(1), TrafficClass::BEST_EFFORT)
        .expect("fast pathlet tracked")
        .cc
        .window();
    let w2 = sender
        .sender
        .pathlets()
        .get(PathletId(2), TrafficClass::BEST_EFFORT)
        .expect("slow pathlet tracked")
        .cc
        .window();
    assert!(
        w1 > w2,
        "fast path window ({w1}) should exceed slow path window ({w2})"
    );
    // Transfer makes progress on both paths.
    let sink = sim.node_as::<MtpSinkNode>(sink);
    assert!(
        sink.total_goodput() > 10_000_000,
        "got {}",
        sink.total_goodput()
    );
}

#[test]
fn alternation_goodput_beats_half_of_slow_path() {
    // With converged per-path windows, mean goodput must approach the
    // time-average of the two path rates (~55 Gbps), certainly exceeding
    // what a single collapsed window would deliver.
    let (mut sim, _snd, sink) = two_path_topology(
        Strategy::Alternate {
            period: Duration::from_micros(384),
        },
        Bandwidth::from_gbps(100),
        Bandwidth::from_gbps(10),
        vec![ScheduledMsg::new(Time::ZERO, 100_000_000)],
        MtpConfig::default(),
    );
    sim.run_until(Time::ZERO + Duration::from_millis(8));
    mtp_sim::assert_conservation(&sim);
    let sink = sim.node_as::<MtpSinkNode>(sink);
    // Skip the first ms (slow start), average the rest.
    let rates = sink.goodput.rates_gbps();
    let from = 1_000 / 32; // 1 ms in 32 us bins
    let mean = rates[from.min(rates.len())..].iter().sum::<f64>()
        / rates[from.min(rates.len())..].len().max(1) as f64;
    assert!(mean > 25.0, "mean goodput {mean:.1} Gbps too low");
}

#[test]
fn spray_balances_but_reorders_across_messages() {
    // Per-packet spraying over equal paths: both link directions carry
    // roughly half the bytes.
    let (mut sim, snd, sink) = two_path_topology(
        Strategy::Spray { next: 0 },
        Bandwidth::from_gbps(100),
        Bandwidth::from_gbps(100),
        vec![ScheduledMsg::new(Time::ZERO, 10_000_000)],
        MtpConfig::default(),
    );
    sim.run_until(Time::ZERO + Duration::from_millis(20));
    mtp_sim::assert_conservation(&sim);
    let sender = sim.node_as::<MtpSenderNode>(snd);
    assert!(sender.all_done());
    assert_eq!(sim.node_as::<MtpSinkNode>(sink).total_goodput(), 10_000_000);
}

#[test]
fn ecmp_pins_whole_flow_to_one_path() {
    let (mut sim, snd, _sink) = two_path_topology(
        Strategy::Ecmp,
        Bandwidth::from_gbps(100),
        Bandwidth::from_gbps(100),
        vec![ScheduledMsg::new(Time::ZERO, 5_000_000)],
        MtpConfig::default(),
    );
    sim.run_until(Time::ZERO + Duration::from_millis(20));
    mtp_sim::assert_conservation(&sim);
    let sender = sim.node_as::<MtpSenderNode>(snd);
    assert!(sender.all_done());
    // Only one pathlet besides the default should carry data: ECMP hashed
    // the single (src, dst) pair onto one path.
    let real_pathlets: Vec<_> = sender
        .sender
        .pathlets()
        .iter()
        .filter(|((p, _), e)| p.0 != 0 && e.cc.window() > 0 && e.last_seen > Time::ZERO)
        .map(|((p, _), _)| *p)
        .collect();
    assert_eq!(
        real_pathlets.len(),
        1,
        "ECMP must use exactly one path, got {real_pathlets:?}"
    );
}

#[test]
fn mtp_lb_pins_messages_and_completes_interleaved_workload() {
    let schedule: Vec<ScheduledMsg> = (0..40)
        .map(|i| ScheduledMsg::new(Time::ZERO + Duration::from_micros(2 * i), 200_000))
        .collect();
    let (mut sim, snd, sink) = two_path_topology(
        Strategy::mtp_lb(2, vec![Some(PathletId(1)), Some(PathletId(2))]),
        Bandwidth::from_gbps(100),
        Bandwidth::from_gbps(100),
        schedule,
        MtpConfig::default(),
    );
    sim.run_until(Time::ZERO + Duration::from_millis(50));
    mtp_sim::assert_conservation(&sim);
    let sender = sim.node_as::<MtpSenderNode>(snd);
    assert!(sender.all_done());
    assert_eq!(sim.node_as::<MtpSinkNode>(sink).delivered.len(), 40);
}

/// CONGA machinery in miniature: a leaf snoops echoed spine feedback and
/// steers new messages away from the congested remote downlink.
#[test]
fn conga_lb_uses_snooped_remote_feedback() {
    use mtp_net::strategies::conga_pathlet;
    use mtp_sim::{Ctx, Headers, Node, Packet};
    use mtp_wire::{Feedback, MsgId, MtpHeader, PathFeedback, PktNum, PktType};

    // Drive the forwarder directly inside a tiny sim so ctx is available.
    struct Harness {
        fwd: FanoutForwarder,
        decisions: Vec<PortId>,
    }
    impl Node for Harness {
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, _p: PortId, pkt: Packet) {
            if let Ok(port) = mtp_net::Forwarder::route(&mut self.fwd, ctx, PortId(0), &pkt) {
                self.decisions.push(port);
            }
        }
    }

    let fwd = FanoutForwarder::new(
        StaticRoutes::new(),
        vec![PortId(0), PortId(1)],
        Strategy::conga_lb(2, Box::new(|_| 0)),
    );
    let mut sim = Simulator::new(1);
    let h = sim.add_node(Box::new(Harness {
        fwd,
        decisions: Vec::new(),
    }));
    let peer = sim.add_node(Box::new({
        struct Sink;
        impl Node for Sink {
            fn on_packet(&mut self, _: &mut Ctx<'_>, _: PortId, _: Packet) {}
        }
        Sink
    }));
    // Two fan ports must exist for egress_len queries.
    sim.connect_symmetric(
        h,
        PortId(0),
        peer,
        PortId(0),
        Bandwidth::from_gbps(10),
        Duration::from_micros(1),
        64,
    );
    let peer2 = sim.add_node(Box::new({
        struct Sink2;
        impl Node for Sink2 {
            fn on_packet(&mut self, _: &mut Ctx<'_>, _: PortId, _: Packet) {}
        }
        Sink2
    }));
    sim.connect_symmetric(
        h,
        PortId(1),
        peer2,
        PortId(0),
        Bandwidth::from_gbps(10),
        Duration::from_micros(1),
        64,
    );

    // 1. An ACK passes through carrying heavy congestion for spine 0's
    //    downlink to leaf 0.
    let ack = MtpHeader {
        pkt_type: PktType::Ack,
        dst_port: 9,
        ack_path_feedback: vec![PathFeedback {
            path: conga_pathlet(0, 0),
            tc: TrafficClass::BEST_EFFORT,
            feedback: Feedback::QueueDepth { bytes: 1_000_000 },
        }],
        ..MtpHeader::default()
    };
    // 2. Then two fresh data messages to leaf 0 arrive back-to-back.
    let data = |msg: u64| {
        let hdr = MtpHeader {
            pkt_type: PktType::Data,
            dst_port: 5,
            msg_id: MsgId(msg),
            msg_len_pkts: 1,
            msg_len_bytes: 1000,
            pkt_num: PktNum(0),
            pkt_len: 1000,
            flags: mtp_wire::types::flags::LAST_PKT,
            ..MtpHeader::default()
        };
        Packet::new(Headers::Mtp(Box::new(hdr)), 1040)
    };
    // Deliver through the sim so the harness gets a Ctx.
    struct Feeder {
        pkts: Vec<Packet>,
    }
    impl Node for Feeder {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            for p in self.pkts.drain(..) {
                ctx.send(PortId(0), p);
            }
        }
        fn on_packet(&mut self, _: &mut Ctx<'_>, _: PortId, _: Packet) {}
    }
    let feeder = sim.add_node(Box::new(Feeder {
        pkts: vec![
            Packet::new(Headers::Mtp(Box::new(ack)), 60),
            data(1),
            data(2),
        ],
    }));
    sim.connect_symmetric(
        feeder,
        PortId(0),
        h,
        PortId(2),
        Bandwidth::from_gbps(10),
        Duration::from_micros(1),
        64,
    );
    sim.run();
    mtp_sim::assert_conservation(&sim);

    let harness = sim.node_as::<Harness>(h);
    // The ACK has no route (empty static table, it IS counted as a fan
    // decision via observe + fan) — only assert the data decisions:
    let data_decisions = &harness.decisions[harness.decisions.len() - 2..];
    assert!(
        data_decisions.iter().all(|p| *p == PortId(1)),
        "both messages avoid the congested spine 0: {data_decisions:?}"
    );
}

/// The full sender→network exclusion loop (paper §3.1.3: "end-hosts
/// provide feedback to the network about the pathlets that should not be
/// used"): a heavily lossy path drives its pathlet window to the floor,
/// the sender advertises the exclusion in its data headers, and the
/// message-aware balancer steers subsequent messages to the healthy path.
#[test]
fn sender_exclusions_steer_the_load_balancer() {
    use mtp_sim::{DropTailQueue, LossyQueue};

    let mut sim = Simulator::new(61);
    let schedule: Vec<ScheduledMsg> = (0..60)
        .map(|i| ScheduledMsg::new(Time::ZERO + Duration::from_micros(20 * i), 100_000))
        .collect();
    let snd = sim.add_node(Box::new(MtpSenderNode::new(
        MtpConfig::default(),
        CLIENT,
        SERVER,
        EntityId(0),
        1 << 40,
        schedule,
    )));
    let sw1 = sim.add_node(Box::new(
        SwitchNode::new(
            "sw1",
            Box::new(FanoutForwarder::new(
                StaticRoutes::new().add(CLIENT, PortId(0)),
                vec![PortId(1), PortId(2)],
                Strategy::mtp_lb(2, vec![Some(PathletId(1)), Some(PathletId(2))]),
            )),
        )
        .with_stamp(PortId(1), Stamp::new(PathletId(1), StampKind::Presence))
        .with_stamp(PortId(2), Stamp::new(PathletId(2), StampKind::Presence)),
    ));
    let sw2 = sim.add_node(Box::new(SwitchNode::new(
        "sw2",
        Box::new(FanoutForwarder::new(
            StaticRoutes::new().add(SERVER, PortId(0)),
            vec![PortId(1), PortId(2)],
            Strategy::Fixed,
        )),
    )));
    let sink = sim.add_node(Box::new(MtpSinkNode::new(
        SERVER,
        Duration::from_micros(100),
    )));
    let bw = Bandwidth::from_gbps(100);
    let d = Duration::from_micros(1);
    let mk = || LinkCfg::ecn(bw, d, 256, 40);
    sim.connect(snd, PortId(0), sw1, PortId(0), mk(), mk());
    // Path A (pathlet 1) loses 40% of everything it carries.
    let (path_a, _) = sim.connect(
        sw1,
        PortId(1),
        sw2,
        PortId(1),
        LinkCfg {
            rate: bw,
            delay: d,
            queue: Box::new(LossyQueue::new(Box::new(DropTailQueue::new(256)), 0.4, 3)),
        },
        mk(),
    );
    let (path_b, _) = sim.connect(sw1, PortId(2), sw2, PortId(2), mk(), mk());
    sim.connect(sw2, PortId(0), sink, PortId(0), mk(), mk());

    sim.run_until(Time::ZERO + Duration::from_millis(100));
    mtp_sim::assert_conservation(&sim);
    let sender = sim.node_as::<MtpSenderNode>(snd);
    assert!(sender.all_done(), "all messages repaired and delivered");
    let a = sim.link_stats(path_a).tx_bytes;
    let b = sim.link_stats(path_b).tx_bytes;
    assert!(
        b > a * 2,
        "healthy path must carry the bulk once exclusions kick in: A={a} B={b}"
    );
}
