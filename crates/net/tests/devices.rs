//! End-to-end tests of the in-network devices: fair-share enforcement,
//! the TCP-terminating proxy, the KV cache offload, and the compressing
//! (data-mutating) offload.

use mtp_core::{MtpConfig, MtpSenderNode, MtpSinkNode, ScheduledMsg};
use mtp_net::{
    CompressorNode, FairShareEnforcer, KvCacheNode, KvClientNode, KvServerNode, StaticForwarder,
    StaticRoutes, SwitchNode, TcpProxyNode,
};
use mtp_sim::time::{Bandwidth, Duration, Time};
use mtp_sim::{Ctx, Headers, Node, Packet};
use mtp_sim::{LinkCfg, PortId, Simulator};
use mtp_tcp::{SenderConn, TcpConfig, TcpSinkNode};
use mtp_wire::EntityId;

/// Fig. 7 mechanism: two tenants share one queue; the enforcer equalizes
/// them even though tenant 2 offers 8x the messages.
#[test]
fn fairshare_enforcer_equalizes_unequal_tenants() {
    let mut sim = Simulator::new(7);
    let mk_sched = |n: u64, bytes: u32| -> Vec<ScheduledMsg> {
        (0..n)
            .map(|i| ScheduledMsg::new(Time::ZERO + Duration::from_micros(i / 8), bytes))
            .collect()
    };
    // Tenant 1: 50 messages; tenant 2: 400 messages, same sizes.
    let t1 = sim.add_node(Box::new(MtpSenderNode::new(
        MtpConfig::default(),
        1,
        10,
        EntityId(1),
        1 << 32,
        mk_sched(50, 100_000),
    )));
    let t2 = sim.add_node(Box::new(MtpSenderNode::new(
        MtpConfig::default(),
        2,
        11,
        EntityId(2),
        2 << 32,
        mk_sched(400, 100_000),
    )));
    let sw = sim.add_node(Box::new(
        SwitchNode::new(
            "shared",
            Box::new(StaticForwarder(
                StaticRoutes::new()
                    .add(1, PortId(0))
                    .add(2, PortId(1))
                    .add(10, PortId(2))
                    .add(11, PortId(2)),
            )),
        )
        .with_policy(Box::new(FairShareEnforcer::new(
            Bandwidth::from_gbps(100),
            Duration::from_micros(20),
        ))),
    ));
    let sw2 = sim.add_node(Box::new(SwitchNode::new(
        "right",
        Box::new(StaticForwarder(
            StaticRoutes::new()
                .add(10, PortId(1))
                .add(11, PortId(2))
                .add(1, PortId(0))
                .add(2, PortId(0)),
        )),
    )));
    let r1 = sim.add_node(Box::new(MtpSinkNode::new(10, Duration::from_micros(100))));
    let r2 = sim.add_node(Box::new(MtpSinkNode::new(11, Duration::from_micros(100))));

    let host = Bandwidth::from_gbps(100);
    let d = Duration::from_micros(1);
    sim.connect(
        t1,
        PortId(0),
        sw,
        PortId(0),
        LinkCfg::ecn(host, d, 256, 40),
        LinkCfg::ecn(host, d, 256, 40),
    );
    sim.connect(
        t2,
        PortId(0),
        sw,
        PortId(1),
        LinkCfg::ecn(host, d, 256, 40),
        LinkCfg::ecn(host, d, 256, 40),
    );
    // The shared bottleneck: one 100 Gbps / 10 us link, single ECN queue.
    sim.connect(
        sw,
        PortId(2),
        sw2,
        PortId(0),
        LinkCfg::ecn(host, Duration::from_micros(10), 256, 40),
        LinkCfg::ecn(host, Duration::from_micros(10), 256, 40),
    );
    sim.connect(
        sw2,
        PortId(1),
        r1,
        PortId(0),
        LinkCfg::ecn(host, d, 256, 40),
        LinkCfg::ecn(host, d, 256, 40),
    );
    sim.connect(
        sw2,
        PortId(2),
        r2,
        PortId(0),
        LinkCfg::ecn(host, d, 256, 40),
        LinkCfg::ecn(host, d, 256, 40),
    );

    let horizon = Time::ZERO + Duration::from_micros(600);
    sim.run_until(horizon);
    mtp_sim::assert_conservation(&sim);
    let g1 = sim.node_as::<MtpSinkNode>(r1).total_goodput() as f64;
    let g2 = sim.node_as::<MtpSinkNode>(r2).total_goodput() as f64;
    assert!(g1 > 0.0 && g2 > 0.0);
    let ratio = g2 / g1;
    assert!(
        ratio < 2.5,
        "tenant 2 must not get ~8x share; goodput ratio {ratio:.2} ({g1} vs {g2})"
    );
}

/// A minimal TCP client node driving the proxy: opens one connection and
/// streams bytes forever (the Fig. 2 bulk sender).
struct BulkTcpClient {
    conn: SenderConn,
    pending: Vec<Packet>,
    armed: Option<Time>,
}

impl BulkTcpClient {
    fn new(cfg: TcpConfig, total: u64) -> BulkTcpClient {
        let mut conn = SenderConn::new(cfg, 1, 1, 2);
        let mut pending = Vec::new();
        conn.open(Time::ZERO, &mut pending);
        conn.app_write(total, Time::ZERO, &mut pending);
        BulkTcpClient {
            conn,
            pending,
            armed: None,
        }
    }

    fn flush(&mut self, ctx: &mut Ctx<'_>, out: Vec<Packet>) {
        for p in out {
            ctx.send(PortId(0), p);
        }
        match self.conn.next_deadline() {
            Some(dl) => {
                if self.armed != Some(dl) {
                    ctx.set_timer_at(dl, 1);
                    self.armed = Some(dl);
                }
            }
            None => self.armed = None,
        }
    }
}

impl Node for BulkTcpClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let out = std::mem::take(&mut self.pending);
        self.flush(ctx, out);
    }
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _port: PortId, pkt: Packet) {
        let Headers::Tcp(hdr) = pkt.headers else {
            return;
        };
        let mut out = Vec::new();
        self.conn.on_segment(ctx.now(), &hdr, &mut out);
        self.flush(ctx, out);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        self.armed = None;
        let mut out = Vec::new();
        self.conn.on_timer(ctx.now(), &mut out);
        self.flush(ctx, out);
    }
}

fn proxy_setup(relay_cap: Option<u64>) -> (Simulator, mtp_sim::NodeId) {
    let mut sim = Simulator::new(2);
    let cfg = TcpConfig {
        handshake: false,
        ..TcpConfig::default()
    };
    let client = sim.add_node(Box::new(BulkTcpClient::new(cfg.clone(), 100_000_000)));
    let proxy = sim.add_node(Box::new(TcpProxyNode::new(
        cfg.clone(),
        cfg.clone(),
        1,
        2,
        relay_cap,
    )));
    let sink = sim.add_node(Box::new(TcpSinkNode::new(cfg, Duration::from_micros(100))));
    let d = Duration::from_micros(2);
    // Client side 100 Gbps, server side 40 Gbps: the Fig. 2 mismatch.
    sim.connect(
        client,
        PortId(0),
        proxy,
        PortId(0),
        LinkCfg::drop_tail(Bandwidth::from_gbps(100), d, 1024),
        LinkCfg::drop_tail(Bandwidth::from_gbps(100), d, 1024),
    );
    sim.connect(
        proxy,
        PortId(1),
        sink,
        PortId(0),
        LinkCfg::drop_tail(Bandwidth::from_gbps(40), d, 1024),
        LinkCfg::drop_tail(Bandwidth::from_gbps(40), d, 1024),
    );
    (sim, proxy)
}

/// Fig. 2(a): unlimited window -> the proxy buffer grows with time.
#[test]
fn proxy_unlimited_window_buffers_grow() {
    let (mut sim, proxy) = proxy_setup(None);
    sim.run_until(Time::ZERO + Duration::from_micros(300));
    let early = sim.node_as::<TcpProxyNode>(proxy).buffered_bytes();
    sim.run_until(Time::ZERO + Duration::from_micros(1500));
    mtp_sim::assert_conservation(&sim);
    let late = sim.node_as::<TcpProxyNode>(proxy).buffered_bytes();
    assert!(
        late > early + 100_000,
        "buffer must keep growing at the 60 Gbps mismatch: {early} -> {late}"
    );
}

/// Fig. 2(b): a bounded relay keeps the proxy buffer flat (the client is
/// throttled by the advertised window instead).
#[test]
fn proxy_bounded_window_caps_buffer() {
    let cap = 64 * 1024;
    let (mut sim, proxy) = proxy_setup(Some(cap));
    sim.run_until(Time::ZERO + Duration::from_millis(2));
    mtp_sim::assert_conservation(&sim);
    let p = sim.node_as::<TcpProxyNode>(proxy);
    assert!(
        p.max_buffered <= 2 * cap + 64 * 1460,
        "relay must stay near the cap: max {}",
        p.max_buffered
    );
    assert!(
        p.relayed > 1_000_000,
        "data still flows through: {}",
        p.relayed
    );
}

/// The Fig. 1 cache scenario: hot keys answered by the cache, cold keys by
/// the (slower) backend.
#[test]
fn cache_answers_hot_keys_faster() {
    let mut sim = Simulator::new(3);
    let cfg = MtpConfig::default();
    // Client at 1, cache at 5 (inline), server at 2.
    // Requests: alternate hot key 7 and cold keys.
    let schedule: Vec<(Time, u64)> = (0..40)
        .map(|i| {
            let key = if i % 2 == 0 { 7 } else { 100 + i };
            (Time::ZERO + Duration::from_micros(5 * i), key)
        })
        .collect();
    let client = sim.add_node(Box::new(KvClientNode::new(
        cfg.clone(),
        1,
        2,
        256,
        1 << 32,
        schedule,
    )));
    let cache = sim.add_node(Box::new(KvCacheNode::new(
        cfg.clone(),
        5,
        [7u64],
        1024,
        2 << 32,
    )));
    let server = sim.add_node(Box::new(KvServerNode::new(
        cfg,
        2,
        1024,
        Duration::from_micros(2),
        3 << 32,
    )));
    let d = Duration::from_micros(1);
    let fast = Bandwidth::from_gbps(100);
    let slow = Bandwidth::from_gbps(10);
    sim.connect(
        client,
        PortId(0),
        cache,
        PortId(0),
        LinkCfg::ecn(fast, d, 256, 40),
        LinkCfg::ecn(fast, d, 256, 40),
    );
    // Backend is behind a slower link (the paper's differing-throughput
    // resources).
    sim.connect(
        cache,
        PortId(1),
        server,
        PortId(0),
        LinkCfg::ecn(slow, Duration::from_micros(5), 256, 40),
        LinkCfg::ecn(slow, Duration::from_micros(5), 256, 40),
    );
    sim.run_until(Time::ZERO + Duration::from_millis(20));
    mtp_sim::assert_conservation(&sim);

    let cache_stats = sim.node_as::<KvCacheNode>(cache).stats;
    assert_eq!(cache_stats.hits, 20, "every hot GET hits");
    assert_eq!(cache_stats.misses, 20);
    let client = sim.node_as::<KvClientNode>(client);
    assert_eq!(client.done(), 40, "all requests answered");
    let hot: Vec<Duration> = client
        .completions
        .iter()
        .filter(|(_, _, from_cache)| *from_cache)
        .map(|(_, l, _)| *l)
        .collect();
    let cold: Vec<Duration> = client
        .completions
        .iter()
        .filter(|(_, _, from_cache)| !*from_cache)
        .map(|(_, l, _)| *l)
        .collect();
    assert_eq!(hot.len(), 20);
    assert_eq!(cold.len(), 20);
    let mean = |v: &[Duration]| v.iter().map(|d| d.0).sum::<u64>() as f64 / v.len() as f64;
    assert!(
        mean(&hot) * 1.5 < mean(&cold),
        "cache hits must be clearly faster: hot {:.1}us cold {:.1}us",
        mean(&hot) / 1e6,
        mean(&cold) / 1e6
    );
}

/// Data mutation end to end: messages shrink in flight and still deliver.
#[test]
fn compressor_mutates_messages_in_flight() {
    let mut sim = Simulator::new(4);
    let cfg = MtpConfig::default();
    let schedule: Vec<ScheduledMsg> = (0..10)
        .map(|i| ScheduledMsg::new(Time::ZERO + Duration::from_micros(10 * i), 50_000))
        .collect();
    let snd = sim.add_node(Box::new(MtpSenderNode::new(
        cfg.clone(),
        1,
        2,
        EntityId(0),
        1 << 32,
        schedule,
    )));
    let comp = sim.add_node(Box::new(CompressorNode::new(cfg.clone(), 5, 0.4, 2 << 32)));
    let sink = sim.add_node(Box::new(MtpSinkNode::new(2, Duration::from_micros(100))));
    let d = Duration::from_micros(1);
    let bw = Bandwidth::from_gbps(100);
    sim.connect(
        snd,
        PortId(0),
        comp,
        PortId(0),
        LinkCfg::ecn(bw, d, 256, 40),
        LinkCfg::ecn(bw, d, 256, 40),
    );
    sim.connect(
        comp,
        PortId(1),
        sink,
        PortId(0),
        LinkCfg::ecn(bw, d, 256, 40),
        LinkCfg::ecn(bw, d, 256, 40),
    );
    sim.run_until(Time::ZERO + Duration::from_millis(20));
    mtp_sim::assert_conservation(&sim);

    let sender = sim.node_as::<MtpSenderNode>(snd);
    assert!(sender.all_done(), "upstream legs all acked");
    let comp = sim.node_as::<CompressorNode>(comp);
    assert_eq!(comp.stats.msgs, 10);
    assert_eq!(comp.stats.bytes_in, 500_000);
    assert_eq!(comp.stats.bytes_out, 200_000);
    // Buffering bounded by one message (the compressor knows sizes ahead).
    assert!(
        comp.stats.max_buffered <= 50_000,
        "bounded reassembly buffer, got {}",
        comp.stats.max_buffered
    );
    let sink = sim.node_as::<MtpSinkNode>(sink);
    assert_eq!(sink.total_goodput(), 200_000, "compressed bytes delivered");
    assert_eq!(sink.delivered.len(), 10);
    // Delivered messages are the *mutated* sizes.
    assert!(sink.delivered.iter().all(|m| m.bytes == 20_000));
}
