//! Multi-algorithm pathlet congestion control, end to end: the same
//! network drives RCP-like (explicit rate), Swift-like (delay target),
//! and DCTCP-like (ECN) controllers purely by choosing what the switch
//! stamps — the coexistence property of paper §3.1.3.

use mtp_core::{CcKind, MtpConfig, MtpSenderNode, MtpSinkNode, ScheduledMsg};
use mtp_net::{Stamp, StampKind, StaticForwarder, StaticRoutes, SwitchNode};
use mtp_sim::time::{Bandwidth, Duration, Time};
use mtp_sim::{LinkCfg, NodeId, PortId, Simulator};
use mtp_wire::{EntityId, PathletId, TrafficClass};

const SRC: u16 = 1;
const DST: u16 = 2;

/// sender — switch (stamping) — sink, bottleneck 10 Gbps.
fn build(cfg: MtpConfig, stamp: Stamp, bytes: u32) -> (Simulator, NodeId, NodeId) {
    let mut sim = Simulator::new(31);
    let snd = sim.add_node(Box::new(MtpSenderNode::new(
        cfg,
        SRC,
        DST,
        EntityId(0),
        1 << 40,
        vec![ScheduledMsg::new(Time::ZERO, bytes)],
    )));
    let sw = sim.add_node(Box::new(
        SwitchNode::new(
            "sw",
            Box::new(StaticForwarder(
                StaticRoutes::new().add(SRC, PortId(0)).add(DST, PortId(1)),
            )),
        )
        .with_stamp(PortId(1), stamp),
    ));
    let sink = sim.add_node(Box::new(MtpSinkNode::new(DST, Duration::from_micros(100))));
    let host = Bandwidth::from_gbps(100);
    let bottleneck = Bandwidth::from_gbps(10);
    let d = Duration::from_micros(2);
    sim.connect(
        snd,
        PortId(0),
        sw,
        PortId(0),
        LinkCfg::ecn(host, d, 256, 40),
        LinkCfg::ecn(host, d, 256, 40),
    );
    sim.connect(
        sw,
        PortId(1),
        sink,
        PortId(0),
        LinkCfg::ecn(bottleneck, d, 256, 40),
        LinkCfg::ecn(bottleneck, d, 256, 40),
    );
    (sim, snd, sink)
}

#[test]
fn rcp_rate_feedback_drives_an_rcp_controller() {
    let cfg = MtpConfig::rcp();
    let stamp = Stamp::new(
        PathletId(3),
        StampKind::RcpRate {
            capacity_mbps: 10_000,
            epoch: Duration::from_micros(50),
        },
    );
    let (mut sim, snd, sink) = build(cfg, stamp, 10_000_000);
    sim.run_until(Time::ZERO + Duration::from_millis(60));
    mtp_sim::assert_conservation(&sim);
    let sender = sim.node_as::<MtpSenderNode>(snd);
    assert!(sender.all_done(), "transfer completed under rate control");
    let entry = sender
        .sender
        .pathlets()
        .get(PathletId(3), TrafficClass::BEST_EFFORT)
        .expect("rcp pathlet tracked");
    assert_eq!(entry.cc.kind(), "rcp-like");
    assert_eq!(sim.node_as::<MtpSinkNode>(sink).total_goodput(), 10_000_000);
}

#[test]
fn delay_feedback_drives_a_swift_controller_and_keeps_queues_short() {
    let cfg = MtpConfig::swift(Duration::from_micros(15));
    let stamp = Stamp::new(
        PathletId(4),
        StampKind::DelayEstimate {
            rate: Bandwidth::from_gbps(10),
        },
    );
    let (mut sim, snd, sink) = build(cfg, stamp, 10_000_000);
    sim.run_until(Time::ZERO + Duration::from_millis(60));
    mtp_sim::assert_conservation(&sim);
    let sender = sim.node_as::<MtpSenderNode>(snd);
    assert!(sender.all_done());
    let entry = sender
        .sender
        .pathlets()
        .get(PathletId(4), TrafficClass::BEST_EFFORT)
        .expect("swift pathlet tracked");
    assert_eq!(entry.cc.kind(), "swift-like");
    // A delay-targeting controller should complete with zero loss: the
    // 256-packet queue is never pushed to overflow.
    assert_eq!(sender.sender.stats.retransmissions, 0);
    assert_eq!(sim.node_as::<MtpSinkNode>(sink).total_goodput(), 10_000_000);
}

#[test]
fn fixed_window_ignores_all_feedback() {
    let cfg = MtpConfig {
        cc: CcKind::Fixed { window: 30_000 },
        ..MtpConfig::default()
    };
    let stamp = Stamp::new(PathletId(5), StampKind::Presence);
    let (mut sim, snd, _sink) = build(cfg, stamp, 5_000_000);
    sim.run_until(Time::ZERO + Duration::from_millis(60));
    mtp_sim::assert_conservation(&sim);
    let sender = sim.node_as::<MtpSenderNode>(snd);
    assert!(sender.all_done());
    let entry = sender
        .sender
        .pathlets()
        .get(PathletId(5), TrafficClass::BEST_EFFORT)
        .expect("pathlet tracked");
    assert_eq!(
        entry.cc.window(),
        30_000,
        "window pinned regardless of marks"
    );
}

/// The multi-algorithm claim itself: two pathlets in series, one speaking
/// RCP rates and one speaking ECN marks, consumed simultaneously by one
/// sender.
#[test]
fn rcp_and_ecn_pathlets_coexist_in_one_ack() {
    let mut sim = Simulator::new(32);
    let snd = sim.add_node(Box::new(MtpSenderNode::new(
        MtpConfig::default(),
        SRC,
        DST,
        EntityId(0),
        1 << 40,
        vec![ScheduledMsg::new(Time::ZERO, 5_000_000)],
    )));
    let sw1 = sim.add_node(Box::new(
        SwitchNode::new(
            "sw1",
            Box::new(StaticForwarder(
                StaticRoutes::new().add(SRC, PortId(0)).add(DST, PortId(1)),
            )),
        )
        .with_stamp(
            PortId(1),
            Stamp::new(
                PathletId(10),
                StampKind::RcpRate {
                    capacity_mbps: 10_000,
                    epoch: Duration::from_micros(50),
                },
            ),
        ),
    ));
    let sw2 = sim.add_node(Box::new(
        SwitchNode::new(
            "sw2",
            Box::new(StaticForwarder(
                StaticRoutes::new().add(SRC, PortId(0)).add(DST, PortId(1)),
            )),
        )
        .with_stamp(PortId(1), Stamp::new(PathletId(11), StampKind::Presence)),
    ));
    let sink = sim.add_node(Box::new(MtpSinkNode::new(DST, Duration::from_micros(100))));
    let host = Bandwidth::from_gbps(100);
    let mid = Bandwidth::from_gbps(10);
    let d = Duration::from_micros(1);
    sim.connect(
        snd,
        PortId(0),
        sw1,
        PortId(0),
        LinkCfg::ecn(host, d, 256, 40),
        LinkCfg::ecn(host, d, 256, 40),
    );
    sim.connect(
        sw1,
        PortId(1),
        sw2,
        PortId(0),
        LinkCfg::ecn(mid, d, 256, 40),
        LinkCfg::ecn(mid, d, 256, 40),
    );
    sim.connect(
        sw2,
        PortId(1),
        sink,
        PortId(0),
        LinkCfg::ecn(mid, d, 128, 20),
        LinkCfg::ecn(mid, d, 128, 20),
    );
    sim.run_until(Time::ZERO + Duration::from_millis(60));
    mtp_sim::assert_conservation(&sim);

    let sender = sim.node_as::<MtpSenderNode>(snd);
    assert!(sender.all_done());
    let table = sender.sender.pathlets();
    // Both pathlets exist, each consuming its own feedback type through a
    // DCTCP-like controller created by the default factory.
    assert!(table
        .get(PathletId(10), TrafficClass::BEST_EFFORT)
        .is_some());
    assert!(table
        .get(PathletId(11), TrafficClass::BEST_EFFORT)
        .is_some());
    assert_eq!(sim.node_as::<MtpSinkNode>(sink).total_goodput(), 5_000_000);
}

/// Aggregated feedback (paper §4): the switch reports an EWMA marking
/// fraction in a single TLV; the DCTCP-like controller consumes it in
/// place of per-packet marks and the transfer still completes with a
/// regulated queue.
#[test]
fn aggregated_fraction_feedback_regulates_the_sender() {
    let cfg = MtpConfig::default();
    let stamp = Stamp::new(
        PathletId(6),
        StampKind::EcnFractionEwma {
            k_pkts: 20,
            gain_num: 4096,
        },
    );
    let (mut sim, snd, sink) = build(cfg, stamp, 10_000_000);
    sim.run_until(Time::ZERO + Duration::from_millis(60));
    mtp_sim::assert_conservation(&sim);
    let sender = sim.node_as::<MtpSenderNode>(snd);
    assert!(sender.all_done());
    assert!(sender
        .sender
        .pathlets()
        .get(PathletId(6), TrafficClass::BEST_EFFORT)
        .is_some());
    assert_eq!(sim.node_as::<MtpSinkNode>(sink).total_goodput(), 10_000_000);
}
