//! A TCP-terminating proxy (paper Fig. 2).
//!
//! The proxy accepts a client-side TCP connection, consumes its stream, and
//! re-originates the bytes on a second connection toward the server —
//! exactly what an L7 load balancer does. The paper's point: when the
//! server side is slower than the client side, the proxy faces a forced
//! trade-off:
//!
//! * **unlimited client window** → the proxy's relay buffer grows without
//!   bound at (client rate − server rate);
//! * **bounded relay buffer** → the proxy advertises a shrinking receive
//!   window and the client stalls: requests queued behind the bulk stream
//!   are head-of-line blocked.
//!
//! [`TcpProxyNode`] implements both configurations; the Fig. 2 harness
//! samples [`buffered_bytes`](TcpProxyNode::buffered_bytes) over time for
//! the first and measures message latencies for the second.

use mtp_sim::packet::{Headers, Packet};
use mtp_sim::time::Time;
use mtp_sim::{Ctx, Node, NodeFault, PortId};
use mtp_tcp::{ReceiverConn, SenderConn, TcpConfig};

/// Which side of the proxy a port faces.
const CLIENT_PORT: PortId = PortId(0);
const SERVER_PORT: PortId = PortId(1);

const TOKEN_RTO: u64 = 1;

/// A TCP-terminating relay between a client (port 0) and a server (port 1).
pub struct TcpProxyNode {
    /// Client-side receiving half (terminates the client's connection).
    recv: ReceiverConn,
    /// Server-side sending half (re-originates the stream).
    send: SenderConn,
    /// Cap on bytes held in the relay (`None` = unlimited, advertise an
    /// unlimited client window).
    relay_cap: Option<u64>,
    /// High-water mark of the relay buffer.
    pub max_buffered: u64,
    /// Bytes relayed end to end.
    pub relayed: u64,
    armed: Option<Time>,
    /// Rebuild info for crash/restart: the (post-override) client config,
    /// server config, and connection ids.
    client_cfg: TcpConfig,
    server_cfg: TcpConfig,
    client_conn: u32,
    server_conn: u32,
    /// Crashes survived so far (restarted connections get fresh ids).
    pub crashes: u64,
    /// Relay-buffered bytes destroyed by crashes. This is the paper's
    /// statefulness cost made measurable: a TCP-terminating middlebox that
    /// dies takes its buffered stream with it.
    pub crash_lost_bytes: u64,
    /// Segments rejected by the integrity check: unverifiable headers on
    /// either side, plus payload-damaged data segments on the client side
    /// (the proxy *terminates* that stream — relaying corrupted bytes
    /// onward would launder the damage into the server's copy).
    pub malformed: u64,
    /// Timeout/retransmission totals of server-side connections destroyed
    /// by crashes (the live connection is summed separately at audit time).
    retired_timeouts: u64,
    retired_retransmissions: u64,
    /// (timeouts, retransmissions) of the live server-side connection
    /// already mirrored into the registry.
    send_mirror: (u64, u64),
    name: String,
}

impl TcpProxyNode {
    /// A proxy terminating client connection `client_conn` and opening
    /// server connection `server_conn`. `relay_cap` bounds the relay
    /// buffer; when bounded, the client-side receive window is coupled to
    /// the free relay space (`client_cfg.recv_buffer` is overridden).
    pub fn new(
        mut client_cfg: TcpConfig,
        server_cfg: TcpConfig,
        client_conn: u32,
        server_conn: u32,
        relay_cap: Option<u64>,
    ) -> TcpProxyNode {
        client_cfg.recv_buffer = relay_cap;
        let recv = ReceiverConn::new(&client_cfg, client_conn, 2, 1);
        let send = SenderConn::new(server_cfg.clone(), server_conn, 2, 3);
        TcpProxyNode {
            recv,
            send,
            relay_cap,
            max_buffered: 0,
            relayed: 0,
            armed: None,
            client_cfg,
            server_cfg,
            client_conn,
            server_conn,
            crashes: 0,
            crash_lost_bytes: 0,
            malformed: 0,
            retired_timeouts: 0,
            retired_retransmissions: 0,
            send_mirror: (0, 0),
            name: "tcp-proxy".to_string(),
        }
    }

    /// Bytes currently buffered inside the proxy: received from the client
    /// but not yet accepted by the server connection's window (its send
    /// backlog), plus anything still in the client-side receive buffer.
    pub fn buffered_bytes(&self) -> u64 {
        self.recv.buffered() + self.send.backlog()
    }

    fn relay(&mut self, now: Time, to_client: &mut Vec<Packet>, to_server: &mut Vec<Packet>) {
        // Move bytes from the client-side receive buffer into the
        // server-side sender. With a bounded relay, only move what keeps
        // the total relay occupancy under the cap — the rest stays in the
        // receive buffer, shrinking the client's advertised window.
        let available = self.recv.available();
        let take = match self.relay_cap {
            None => available,
            Some(cap) => available.min(cap.saturating_sub(self.send.backlog())),
        };
        if take > 0 {
            if let Some(update) = self.recv.app_consume(take) {
                to_client.push(update);
            }
            self.send.app_write(take, now, to_server);
            self.relayed += take;
        }
        self.max_buffered = self.max_buffered.max(self.buffered_bytes());
    }

    /// Mirror timeout/retransmission movement on the server-side
    /// connection into the registry. Runs on every flush and again before
    /// a crash discards the connection, so no delta is ever lost.
    fn sync_send_conn(&mut self, ctx: &mut Ctx<'_>) {
        let d = self.send.stats.timeouts - self.send_mirror.0;
        if d > 0 {
            self.send_mirror.0 = self.send.stats.timeouts;
            ctx.count(mtp_sim::Metric::Timeouts, d);
        }
        let d = self.send.stats.retransmissions - self.send_mirror.1;
        if d > 0 {
            self.send_mirror.1 = self.send.stats.retransmissions;
            ctx.count(mtp_sim::Metric::Retransmissions, d);
        }
    }

    fn flush(&mut self, ctx: &mut Ctx<'_>, to_client: Vec<Packet>, to_server: Vec<Packet>) {
        self.sync_send_conn(ctx);
        let now = ctx.now();
        for mut p in to_client {
            p.sent_at = now;
            ctx.send(CLIENT_PORT, p);
        }
        for mut p in to_server {
            p.sent_at = now;
            ctx.send(SERVER_PORT, p);
        }
        // Keep the server-side RTO armed.
        match self.send.next_deadline() {
            Some(dl) => {
                if self.armed != Some(dl) {
                    ctx.set_timer_at(dl, TOKEN_RTO);
                    self.armed = Some(dl);
                }
            }
            None => self.armed = None,
        }
    }
}

impl Node for TcpProxyNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let mut to_server = Vec::new();
        self.send.open(ctx.now(), &mut to_server);
        self.flush(ctx, Vec::new(), to_server);
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, port: PortId, mut pkt: Packet) {
        // The proxy consumes the client stream and re-originates it, so it
        // is an endpoint for integrity purposes: drop unverifiable headers,
        // and drop payload-damaged data without ACKing it — the client's
        // loss recovery retransmits a clean copy.
        if mtp_sim::corrupt::sanitize(&mut pkt).is_err() || pkt.payload_dirty {
            self.malformed += 1;
            ctx.trace_malformed(&pkt, port);
            mtp_sim::pool::recycle_packet(pkt);
            return;
        }
        let ce = pkt.ecn.is_ce();
        let Headers::Tcp(hdr) = pkt.headers else {
            return;
        };
        let now = ctx.now();
        let mut to_client = Vec::new();
        let mut to_server = Vec::new();
        if port == CLIENT_PORT {
            let (_newly, reply) = self.recv.on_segment(now, &hdr, ce);
            self.relay(now, &mut to_client, &mut to_server);
            // Reply AFTER relaying so the advertised window reflects the
            // post-relay buffer state.
            if let Some(reply) = reply {
                // Rebuild the window field from current state: app_consume
                // inside relay may have freed space.
                let mut reply = reply;
                if let Headers::Tcp(h) = &mut reply.headers {
                    h.rwnd = self.recv.rwnd().min(u32::MAX as u64) as u32;
                }
                to_client.push(reply);
            }
        } else {
            self.send.on_segment(now, &hdr, &mut to_server);
            self.relay(now, &mut to_client, &mut to_server);
        }
        self.flush(ctx, to_client, to_server);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token != TOKEN_RTO {
            return;
        }
        self.armed = None;
        let mut to_server = Vec::new();
        self.send.on_timer(ctx.now(), &mut to_server);
        self.flush(ctx, Vec::new(), to_server);
    }

    fn on_fault(&mut self, ctx: &mut Ctx<'_>, fault: NodeFault) {
        match fault {
            NodeFault::Crash => {
                // The relay buffer and both connections' state are gone.
                // Push any unmirrored deltas and bank the dying
                // connection's totals before rebuilding resets its stats.
                self.sync_send_conn(ctx);
                self.retired_timeouts += self.send.stats.timeouts;
                self.retired_retransmissions += self.send.stats.retransmissions;
                self.send_mirror = (0, 0);
                self.crashes += 1;
                self.crash_lost_bytes += self.buffered_bytes();
                self.armed = None;
                self.recv = ReceiverConn::new(&self.client_cfg, self.client_conn, 2, 1);
                self.send = SenderConn::new(
                    self.server_cfg.clone(),
                    // A restarted proxy opens a *new* server-side
                    // connection; reusing the old id would alias sequence
                    // spaces.
                    self.server_conn.wrapping_add(self.crashes as u32),
                    2,
                    3,
                );
            }
            NodeFault::Restart => {
                // Same bring-up path as on_start: open the server-side
                // connection and re-arm the RTO.
                let mut to_server = Vec::new();
                self.send.open(ctx.now(), &mut to_server);
                self.flush(ctx, Vec::new(), to_server);
            }
        }
    }

    fn audit_counters(&self, out: &mut mtp_sim::NodeAuditCounters) {
        out.malformed += self.malformed;
        out.timeouts += self.send.stats.timeouts + self.retired_timeouts;
        out.retransmissions += self.send.stats.retransmissions + self.retired_retransmissions;
    }

    fn name(&self) -> &str {
        &self.name
    }
}
