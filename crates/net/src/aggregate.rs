//! An in-network gradient aggregator (ATP-style; paper §4 "ML Training").
//!
//! "In-network aggregation of gradients is challenging for congestion
//! control because aggregation levels can change over time. MTP can
//! improve the precision of congestion control in ATP by making
//! aggregation levels and pathlets explicit."
//!
//! [`AggregatorNode`] sits between `W` workers and a parameter server.
//! Each training round, every worker sends its gradient as one MTP
//! message tagged with the round number. The aggregator terminates each
//! worker's message (ACKing it — legal because MTP reliability names
//! `(message, packet)` pairs) and, once all live workers' gradients for a
//! round have arrived, originates a **single** aggregated message
//! upstream: a many-to-one mutation no stream transport can express.
//! Upstream traffic is `1/W` of the ingress volume — the ATP win.
//!
//! Congestion control stays precise because the aggregator is its own
//! pathlet: workers converge windows against the aggregator's ingress
//! (fast, nearby), while the aggregator's own sender converges against
//! the parameter-server path, whatever its current capacity — the
//! "aggregation levels explicit" point of the paper.

use std::collections::HashMap;

use mtp_sim::packet::{AppData, Headers, Packet};
use mtp_sim::time::Time;
use mtp_sim::{Ctx, Node, PortId};
use mtp_wire::{EntityId, MsgId, PktType, TrafficClass};

use mtp_core::{MtpConfig, MtpReceiver, MtpSender};

const UPSTREAM_PORT: PortId = PortId(0);
const TOKEN_RTO: u64 = 1;

/// Aggregator statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct AggregateStats {
    /// Gradient messages received from workers.
    pub gradients_in: u64,
    /// Aggregated messages sent upstream.
    pub rounds_out: u64,
    /// Payload bytes received from workers.
    pub bytes_in: u64,
    /// Payload bytes sent upstream.
    pub bytes_out: u64,
}

/// In-network aggregation: workers on ports `1..=W`, parameter server on
/// port 0.
pub struct AggregatorNode {
    n_workers: usize,
    /// Parameter-server address (destination of aggregated messages).
    ps_addr: u16,
    gradient_bytes: u32,
    receiver: MtpReceiver,
    sender: MtpSender,
    /// round → number of distinct workers whose gradient has completed.
    progress: HashMap<u64, usize>,
    /// Message id → round (learned from the data packets' app tags).
    msg_round: HashMap<MsgId, u64>,
    armed: Option<Time>,
    /// Counters.
    pub stats: AggregateStats,
}

impl AggregatorNode {
    /// An aggregator for `n_workers` workers at address `addr`, sending
    /// `gradient_bytes` aggregated messages to `ps_addr`.
    pub fn new(
        cfg: MtpConfig,
        addr: u16,
        ps_addr: u16,
        n_workers: usize,
        gradient_bytes: u32,
        msg_id_base: u64,
    ) -> AggregatorNode {
        assert!(n_workers > 0);
        AggregatorNode {
            n_workers,
            ps_addr,
            gradient_bytes,
            receiver: MtpReceiver::new(addr),
            sender: MtpSender::new(cfg, addr, EntityId(0), msg_id_base),
            progress: HashMap::new(),
            msg_round: HashMap::new(),
            armed: None,
            stats: AggregateStats::default(),
        }
    }

    fn flush_sender(&mut self, ctx: &mut Ctx<'_>, out: Vec<Packet>) {
        for pkt in out {
            ctx.send(UPSTREAM_PORT, pkt);
        }
        match self.sender.next_deadline() {
            Some(dl) => {
                if self.armed != Some(dl) {
                    ctx.set_timer_at(dl, TOKEN_RTO);
                    self.armed = Some(dl);
                }
            }
            None => self.armed = None,
        }
    }
}

impl Node for AggregatorNode {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, port: PortId, pkt: Packet) {
        let now = ctx.now();
        let ecn = pkt.ecn;
        let app = pkt.app;
        let Headers::Mtp(hdr) = pkt.headers else {
            return;
        };
        if port == UPSTREAM_PORT {
            // ACKs for our aggregated messages.
            if matches!(hdr.pkt_type, PktType::Ack | PktType::Nack) {
                let mut out = Vec::new();
                self.sender.on_ack(now, &hdr, &mut out);
                self.sender.drain_events(&mut Vec::new());
                self.flush_sender(ctx, out);
            }
            return;
        }
        // Worker side: terminate gradient messages.
        if hdr.pkt_type != PktType::Data {
            return;
        }
        if let Some(AppData::Opaque(round)) = app {
            self.msg_round.insert(hdr.msg_id, round);
        }
        let (ack, _) = self.receiver.on_data(now, &hdr, ecn);
        ctx.send(port, ack);
        let mut out = Vec::new();
        let mut delivered = Vec::new();
        self.receiver.drain_events(&mut delivered);
        for ev in delivered {
            self.stats.gradients_in += 1;
            self.stats.bytes_in += ev.bytes as u64;
            let round = self.msg_round.remove(&ev.id).unwrap_or(0);
            let done = self.progress.entry(round).or_insert(0);
            *done += 1;
            if *done == self.n_workers {
                self.progress.remove(&round);
                // All gradients in: one aggregated update upstream. The
                // aggregate is the same size as one gradient (element-wise
                // sum), so the fabric above carries 1/W the volume.
                let id = self.sender.send_message(
                    self.ps_addr,
                    self.gradient_bytes,
                    0,
                    TrafficClass::BEST_EFFORT,
                    now,
                    &mut out,
                );
                let _ = id;
                self.stats.rounds_out += 1;
                self.stats.bytes_out += self.gradient_bytes as u64;
            }
        }
        // Tag outgoing packets with the round for downstream inspection.
        self.flush_sender(ctx, out);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token != TOKEN_RTO {
            return;
        }
        self.armed = None;
        let mut out = Vec::new();
        self.sender.on_timer(ctx.now(), &mut out);
        self.flush_sender(ctx, out);
    }

    fn name(&self) -> &str {
        "aggregator"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtp_core::{MtpSenderNode, MtpSinkNode, ScheduledMsg};
    use mtp_sim::time::{Bandwidth, Duration};
    use mtp_sim::{LinkCfg, Simulator};

    /// 4 workers × 10 rounds through the aggregator: the parameter server
    /// receives exactly 10 aggregated messages; upstream volume is 1/4 of
    /// worker volume.
    #[test]
    fn aggregates_rounds_many_to_one() {
        const WORKERS: usize = 4;
        const ROUNDS: u64 = 10;
        const GRAD: u32 = 100_000;

        let mut sim = Simulator::new(33);
        let cfg = MtpConfig::default();
        let agg = sim.add_node(Box::new(AggregatorNode::new(
            cfg.clone(),
            50,
            60,
            WORKERS,
            GRAD,
            9 << 40,
        )));
        let ps = sim.add_node(Box::new(MtpSinkNode::new(60, Duration::from_micros(100))));
        let bw = Bandwidth::from_gbps(100);
        let d = Duration::from_micros(1);
        let mk = || LinkCfg::ecn(bw, d, 256, 40);
        // Upstream (slower, like a WAN-ish PS link — aggregation keeps it
        // uncongested anyway).
        sim.connect(
            agg,
            PortId(0),
            ps,
            PortId(0),
            LinkCfg::ecn(Bandwidth::from_gbps(25), d, 256, 40),
            LinkCfg::ecn(Bandwidth::from_gbps(25), d, 256, 40),
        );
        // Workers send ROUNDS equal-size gradients each. They carry no
        // explicit round tag, so the aggregator accounts them all to
        // round 0 and fires an aggregate on every `WORKERS` completions —
        // with symmetric, in-order workers that is exactly per-round
        // aggregation.
        let mut workers = Vec::new();
        for w in 0..WORKERS {
            let schedule: Vec<ScheduledMsg> = (0..ROUNDS)
                .map(|r| ScheduledMsg::new(Time::ZERO + Duration::from_micros(40 * r), GRAD))
                .collect();
            let node = sim.add_node(Box::new(MtpSenderNode::new(
                cfg.clone(),
                (w + 1) as u16,
                50,
                EntityId(w as u16),
                ((w + 1) as u64) << 40,
                schedule,
            )));
            sim.connect(node, PortId(0), agg, PortId(1 + w), mk(), mk());
            workers.push(node);
        }
        sim.run_until(Time::ZERO + Duration::from_millis(50));

        for &w in &workers {
            assert!(sim.node_as::<MtpSenderNode>(w).all_done(), "worker acked");
        }
        let agg_node = sim.node_as::<AggregatorNode>(agg);
        assert_eq!(agg_node.stats.gradients_in, WORKERS as u64 * ROUNDS);
        assert_eq!(agg_node.stats.rounds_out, ROUNDS);
        assert_eq!(
            agg_node.stats.bytes_out * WORKERS as u64,
            agg_node.stats.bytes_in,
            "upstream volume is 1/W of ingress"
        );
        let ps = sim.node_as::<MtpSinkNode>(ps);
        assert_eq!(ps.delivered.len(), ROUNDS as usize);
        assert_eq!(ps.total_goodput(), ROUNDS * GRAD as u64);
    }
}
