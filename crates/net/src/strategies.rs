//! Forwarding strategies: static, ECMP, packet spraying, time-driven path
//! alternation, and the MTP message-aware load balancer.
//!
//! All strategies are packaged in [`FanoutForwarder`]: packets whose
//! destination has a static (host-facing) route take it; everything else
//! fans out over a group of parallel uplinks according to the strategy.
//! This covers every topology in the paper's evaluation — the two-path
//! alternating network of Fig. 5, the dual-path load-balancing network of
//! Fig. 6, and the shared-link dumbbells of Figs. 3 and 7.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use mtp_sim::packet::{Headers, Packet};
use mtp_sim::time::{Duration, Time};
use mtp_sim::{Ctx, PortId};
use mtp_wire::{MsgId, PathletId, PktType};

use crate::routes::{dst_addr, src_addr, RouteError, StaticRoutes};
use crate::switch::Forwarder;

/// Encode a spine-downlink pathlet id for CONGA-style balancing:
/// `(spine + 1) << 8 | dst_leaf`. Values are >= 256, so they never collide
/// with the single-byte uplink pathlet ids leaves stamp.
pub fn conga_pathlet(spine: u16, dst_leaf: u16) -> PathletId {
    debug_assert!(spine < 255 && dst_leaf < 256);
    PathletId(((spine + 1) << 8) | dst_leaf)
}

/// Decode a [`conga_pathlet`] id back to `(spine, dst_leaf)`.
pub fn conga_decode(p: PathletId) -> Option<(u16, u16)> {
    if p.0 >= 256 {
        Some(((p.0 >> 8) - 1, p.0 & 0xff))
    } else {
        None
    }
}

/// How the fan-out group is used.
pub enum Strategy {
    /// All fan traffic takes the first port.
    Fixed,
    /// Hash of (src, dst) picks a port — flow-level ECMP. Coarse: one flow
    /// never uses more than one path (paper §5.2's ECMP baseline).
    Ecmp,
    /// Per-packet round robin — perfect balance, maximal reordering
    /// (paper §5.2's packet-spraying baseline).
    Spray {
        /// Next port index.
        next: usize,
    },
    /// The group index is a function of time: `(now / period) % n`. Models
    /// an optical switch reconfiguring every `period` (paper §5.1).
    Alternate {
        /// Reconfiguration period.
        period: Duration,
    },
    /// MTP message-aware balancing: each *message* is pinned to the
    /// lightest path when its first packet arrives, using the message
    /// length advertised in the header plus current egress queue depths;
    /// subsequent packets follow the pin, so no intra-message reordering
    /// occurs; sender path-exclusions are honored (paper §5.2).
    MtpMessageLb {
        /// Message → (port, bytes still expected, committed bytes left).
        pins: HashMap<MsgId, MsgPin>,
        /// Bytes committed to each fan port by pinned messages that have
        /// not yet traversed it.
        committed: Vec<u64>,
        /// Pathlet identity of each fan port (to honor path_exclude).
        pathlets: Vec<Option<PathletId>>,
        /// Per-message commitment cap. A window-limited sender trickles a
        /// large message over many RTTs; committing its full length would
        /// reserve a path it cannot fill. A few BDPs of commitment is
        /// enough to keep two elephants apart without idling paths.
        commit_cap: u64,
        /// Rotating tie-break offset: with empty queues every path scores
        /// zero, and a fixed `min` would herd every new message onto fan
        /// port 0.
        rr: usize,
        /// Retransmission attempt counts per `(message, byte offset)`,
        /// for pin-retired messages only: attempt `k` of a packet takes
        /// the `k`-th allowed port after its hash-spread start, so every
        /// packet cycles through all surviving paths across repair
        /// attempts (bounded memory; cleared wholesale when large).
        retx_seen: HashMap<(MsgId, u32), u32>,
    },
    /// CONGA-style fabric-aware balancing, realized entirely through MTP's
    /// own feedback machinery: spines stamp their per-destination-leaf
    /// downlink queue depth as `QueueDepth` feedback under a
    /// [`conga_pathlet`] id; receivers echo it in ACKs; and this leaf
    /// *snoops* the echoed feedback as ACKs pass through on their way to
    /// the sender — giving the leaf a live remote-congestion table without
    /// any new protocol. Messages are then pinned to the spine minimizing
    /// local uplink queue + committed bytes + remote downlink queue.
    CongaLb {
        /// Message pins (same semantics as [`Strategy::MtpMessageLb`]).
        pins: HashMap<MsgId, MsgPin>,
        /// Locally committed bytes per spine.
        committed: Vec<u64>,
        /// Snooped remote congestion: pathlet id → (bytes, observed at).
        remote: HashMap<PathletId, (u64, Time)>,
        /// Maps a destination host address to its leaf index.
        leaf_of: Box<dyn Fn(u16) -> u16>,
        /// Remote observations older than this decay to irrelevance.
        horizon: Duration,
        /// Per-message commitment cap (see `MtpMessageLb`).
        commit_cap: u64,
        /// Rotating tie-break.
        rr: usize,
    },
}

/// Pin state for one load-balanced message.
#[derive(Debug, Clone, Copy)]
pub struct MsgPin {
    /// Chosen fan index.
    pub fan_idx: usize,
    /// Payload bytes of the message not yet forwarded.
    pub remaining: u64,
}

impl Strategy {
    /// A fresh MTP message-aware balancer; `pathlets[i]` names the pathlet
    /// of fan port `i` so sender exclusions can be honored.
    pub fn mtp_lb(n_fan: usize, pathlets: Vec<Option<PathletId>>) -> Strategy {
        Self::mtp_lb_capped(n_fan, pathlets, 256 * 1024)
    }

    /// A fresh CONGA-style balancer over `n_fan` spines; `leaf_of` maps a
    /// destination host address to its leaf index.
    pub fn conga_lb(n_fan: usize, leaf_of: Box<dyn Fn(u16) -> u16>) -> Strategy {
        Strategy::CongaLb {
            pins: HashMap::new(),
            committed: vec![0; n_fan],
            remote: HashMap::new(),
            leaf_of,
            horizon: Duration::from_micros(15),
            commit_cap: 256 * 1024,
            rr: 0,
        }
    }

    /// [`Strategy::mtp_lb`] with an explicit per-message commitment cap.
    pub fn mtp_lb_capped(
        n_fan: usize,
        pathlets: Vec<Option<PathletId>>,
        commit_cap: u64,
    ) -> Strategy {
        assert_eq!(pathlets.len(), n_fan);
        Strategy::MtpMessageLb {
            pins: HashMap::new(),
            committed: vec![0; n_fan],
            pathlets,
            commit_cap,
            rr: 0,
            retx_seen: HashMap::new(),
        }
    }
}

/// A forwarder with host-facing static routes and a strategy-driven fan of
/// parallel uplinks.
pub struct FanoutForwarder {
    /// Host-facing routes (checked first).
    pub routes: StaticRoutes,
    /// The parallel uplink group.
    pub fan: Vec<PortId>,
    /// How fan traffic is spread.
    pub strategy: Strategy,
}

impl FanoutForwarder {
    /// Build a forwarder. `fan` must be non-empty unless every destination
    /// has a static route.
    pub fn new(routes: StaticRoutes, fan: Vec<PortId>, strategy: Strategy) -> FanoutForwarder {
        FanoutForwarder {
            routes,
            fan,
            strategy,
        }
    }

    /// Passive observation of every packet crossing this forwarder —
    /// including ones short-circuited by a static route. CONGA snoops the
    /// ACK-path-feedback lists here.
    fn observe(&mut self, pkt: &Packet, now: Time) {
        if let Strategy::CongaLb { remote, .. } = &mut self.strategy {
            if let Headers::Mtp(hdr) = &pkt.headers {
                if matches!(hdr.pkt_type, PktType::Ack | PktType::Nack) {
                    for fb in &hdr.ack_path_feedback {
                        if fb.path.0 >= 256 {
                            if let mtp_wire::Feedback::QueueDepth { bytes } = fb.feedback {
                                remote.insert(fb.path, (bytes as u64, now));
                            }
                        }
                    }
                }
            }
        }
    }

    fn fan_index(&mut self, ctx: &mut Ctx<'_>, pkt: &Packet, now: Time) -> usize {
        let n = self.fan.len();
        debug_assert!(n > 0, "fan routing with empty fan group");
        match &mut self.strategy {
            Strategy::Fixed => 0,
            Strategy::Ecmp => {
                // FNV-style mix of the "flow" identity: (src, dst, conn)
                // for TCP, (src, dst, msg) for MTP — each MTP message is
                // its own flow-equivalent, hashed blindly onto a path.
                let s = src_addr(pkt).unwrap_or(0) as u64;
                let d = dst_addr(pkt).unwrap_or(0) as u64;
                let f = match &pkt.headers {
                    Headers::Tcp(h) => h.conn_id as u64,
                    Headers::Mtp(h) => h.msg_id.0,
                    // Legacy ECMP sees only the outer TCP segment.
                    Headers::Bridged { tcp, .. } => tcp.conn_id as u64,
                    Headers::Raw | Headers::Mangled { .. } => 0,
                };
                let mut h = 0xcbf29ce484222325u64;
                for byte in s
                    .to_be_bytes()
                    .into_iter()
                    .chain(d.to_be_bytes())
                    .chain(f.to_be_bytes())
                {
                    h ^= byte as u64;
                    h = h.wrapping_mul(0x100000001b3);
                }
                (h % n as u64) as usize
            }
            Strategy::Spray { next } => {
                let i = *next % n;
                *next = (*next + 1) % n;
                i
            }
            Strategy::Alternate { period } => ((now.0 / period.0) % n as u64) as usize,
            Strategy::CongaLb {
                pins,
                committed,
                remote,
                leaf_of,
                horizon,
                commit_cap,
                rr,
            } => {
                let Headers::Mtp(hdr) = &pkt.headers else {
                    return (pkt.id.0 % n as u64) as usize;
                };
                if hdr.pkt_type != PktType::Data {
                    return (0..n)
                        .min_by_key(|&i| ctx.egress_len_bytes(self.fan[i]))
                        .expect("non-empty fan");
                }
                let payload = hdr.pkt_len as u64;
                if hdr.is_retx() && !pins.contains_key(&hdr.msg_id) {
                    return (0..n)
                        .min_by_key(|&i| ctx.egress_len_bytes(self.fan[i]) as u64 + committed[i])
                        .expect("non-empty fan");
                }
                match pins.entry(hdr.msg_id) {
                    Entry::Occupied(mut e) => {
                        let pin = e.get_mut();
                        let idx = pin.fan_idx;
                        pin.remaining = pin.remaining.saturating_sub(payload);
                        committed[idx] = committed[idx].saturating_sub(payload);
                        if pin.remaining == 0 {
                            e.remove();
                        }
                        idx
                    }
                    Entry::Vacant(e) => {
                        let dst_leaf = leaf_of(hdr.dst_port);
                        let score = |i: usize| {
                            let local = ctx.egress_len_bytes(self.fan[i]) as u64 + committed[i];
                            let key = conga_pathlet(i as u16, dst_leaf);
                            let remote_bytes = remote
                                .get(&key)
                                .filter(|(_, at)| now.since(*at) < *horizon)
                                .map(|(b, _)| *b)
                                .unwrap_or(0);
                            local + remote_bytes
                        };
                        let start = *rr % n;
                        *rr = (*rr + 1) % n;
                        let idx = (0..n)
                            .map(|k| (start + k) % n)
                            .min_by_key(|&i| score(i))
                            .expect("non-empty fan");
                        let total = hdr.msg_len_bytes as u64;
                        committed[idx] += total.saturating_sub(payload).min(*commit_cap);
                        if total > payload {
                            e.insert(MsgPin {
                                fan_idx: idx,
                                remaining: total - payload,
                            });
                        }
                        idx
                    }
                }
            }
            Strategy::MtpMessageLb {
                pins,
                committed,
                pathlets,
                commit_cap,
                rr,
                retx_seen,
            } => {
                let Headers::Mtp(hdr) = &pkt.headers else {
                    // Non-MTP traffic cannot be message-balanced; spray by
                    // packet id to stay work-conserving.
                    return (pkt.id.0 % n as u64) as usize;
                };
                if hdr.pkt_type != PktType::Data {
                    // ACKs are tiny; follow the lightest queue.
                    return (0..n)
                        .min_by_key(|&i| ctx.egress_len_bytes(self.fan[i]))
                        .expect("non-empty fan");
                }
                let payload = hdr.pkt_len as u64;
                if hdr.is_retx() {
                    // Retransmissions are routed for *repair*, not for
                    // ordering: the pin's no-reordering guarantee matters
                    // for fresh data, while a repair copy plugs a SACK
                    // hole wherever it lands. Routing repairs by pin or by
                    // lightest queue can both blackhole them — a pin may
                    // sit on a path that died before the sender ever
                    // learned its pathlet id (so no exclusion will ever
                    // name it), and a failed path's queue reads empty, so
                    // load-chasing herds every repair copy onto the very
                    // path that just lost them. A shared round-robin
                    // aliases too: go-back-N resends a fixed batch in a
                    // fixed order, so whenever the batch size divides the
                    // fan width every round repeats the same port
                    // assignment and a packet can ride a dead path
                    // forever. Instead, attempt `k` of a given (message,
                    // offset) takes the `k`-th allowed port after its
                    // hash-spread start — each packet provably visits
                    // every surviving path within |fan| repair attempts,
                    // even before the sender can name the failed pathlet
                    // in its exclusions.
                    if let Entry::Occupied(mut e) = pins.entry(hdr.msg_id) {
                        // The repair copy still advances the pin's
                        // bookkeeping (the message is progressing), even
                        // though it takes its own port; re-committing the
                        // full length would permanently inflate the
                        // committed counter.
                        let pin = e.get_mut();
                        let at = pin.fan_idx;
                        pin.remaining = pin.remaining.saturating_sub(payload);
                        committed[at] = committed[at].saturating_sub(payload);
                        if pin.remaining == 0 {
                            e.remove();
                        }
                    }
                    let excluded: Vec<PathletId> =
                        hdr.path_exclude.iter().map(|x| x.path).collect();
                    let allowed: Vec<usize> = (0..n)
                        .filter(|&i| match pathlets[i] {
                            Some(p) => !excluded.contains(&p),
                            None => true,
                        })
                        .collect();
                    // Everything excluded: ignore exclusions rather than
                    // blackholing.
                    let pool: Vec<usize> = if allowed.is_empty() {
                        (0..n).collect()
                    } else {
                        allowed
                    };
                    if retx_seen.len() > 4096 {
                        retx_seen.clear();
                    }
                    let attempt = retx_seen.entry((hdr.msg_id, hdr.pkt_offset)).or_insert(0);
                    let spread = (hdr.msg_id.0.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        ^ u64::from(hdr.pkt_offset))
                        >> 32;
                    let idx = pool[(spread as usize + *attempt as usize) % pool.len()];
                    *attempt = attempt.wrapping_add(1);
                    return idx;
                }
                match pins.entry(hdr.msg_id) {
                    Entry::Occupied(mut e) => {
                        let pin = e.get_mut();
                        // A pin on a pathlet the sender has since excluded
                        // migrates to the best surviving path: riding out
                        // the pin would blackhole the rest of the message,
                        // and per-packet SACKs make the resulting
                        // reordering harmless. The outstanding commitment
                        // moves with the pin.
                        if let Some(p) = pathlets[pin.fan_idx] {
                            if hdr.path_exclude.iter().any(|x| x.path == p) {
                                let score = |i: usize| {
                                    ctx.egress_len_bytes(self.fan[i]) as u64 + committed[i]
                                };
                                let alive = (0..n)
                                    .filter(|&i| match pathlets[i] {
                                        Some(q) => !hdr.path_exclude.iter().any(|x| x.path == q),
                                        None => true,
                                    })
                                    .min_by_key(|&i| score(i));
                                if let Some(new_idx) = alive {
                                    let mv = pin.remaining.min(*commit_cap);
                                    committed[pin.fan_idx] =
                                        committed[pin.fan_idx].saturating_sub(mv);
                                    committed[new_idx] += mv;
                                    pin.fan_idx = new_idx;
                                }
                            }
                        }
                        let idx = pin.fan_idx;
                        pin.remaining = pin.remaining.saturating_sub(payload);
                        committed[idx] = committed[idx].saturating_sub(payload);
                        if pin.remaining == 0 {
                            e.remove();
                        }
                        idx
                    }
                    Entry::Vacant(e) => {
                        // Choose the least-loaded non-excluded path using
                        // queue depth plus committed-but-unsent bytes;
                        // rotate the starting index so exact ties spread
                        // instead of herding onto port 0.
                        let excluded: Vec<PathletId> =
                            hdr.path_exclude.iter().map(|x| x.path).collect();
                        let score =
                            |i: usize| ctx.egress_len_bytes(self.fan[i]) as u64 + committed[i];
                        let start = *rr % n;
                        *rr = (*rr + 1) % n;
                        let rotation = (0..n).map(|k| (start + k) % n);
                        let allowed: Vec<usize> = rotation
                            .clone()
                            .filter(|&i| match pathlets[i] {
                                Some(p) => !excluded.contains(&p),
                                None => true,
                            })
                            .collect();
                        let idx = if allowed.is_empty() {
                            // Everything excluded: ignore exclusions rather
                            // than blackholing.
                            rotation.min_by_key(|&i| score(i)).expect("non-empty fan")
                        } else {
                            *allowed
                                .iter()
                                .min_by_key(|&&i| score(i))
                                .expect("non-empty pool")
                        };
                        let total = hdr.msg_len_bytes as u64;
                        committed[idx] += total.saturating_sub(payload).min(*commit_cap);
                        if total > payload {
                            e.insert(MsgPin {
                                fan_idx: idx,
                                remaining: total - payload,
                            });
                        }
                        idx
                    }
                }
            }
        }
    }
}

impl Forwarder for FanoutForwarder {
    fn route(
        &mut self,
        ctx: &mut Ctx<'_>,
        _in_port: PortId,
        pkt: &Packet,
    ) -> Result<PortId, RouteError> {
        self.observe(pkt, ctx.now());
        match self.routes.try_route(pkt) {
            Ok(port) => return Ok(port),
            // Fan traffic needs no static entry; only a total miss with an
            // empty fan group is an error.
            Err(err) if self.fan.is_empty() => return Err(err),
            Err(_) => {}
        }
        let idx = self.fan_index(ctx, pkt, ctx.now());
        Ok(self.fan[idx])
    }

    fn reset(&mut self) {
        match &mut self.strategy {
            Strategy::MtpMessageLb {
                pins,
                committed,
                rr,
                retx_seen,
                ..
            } => {
                pins.clear();
                committed.iter_mut().for_each(|c| *c = 0);
                *rr = 0;
                retx_seen.clear();
            }
            Strategy::CongaLb {
                pins,
                committed,
                remote,
                rr,
                ..
            } => {
                pins.clear();
                committed.iter_mut().for_each(|c| *c = 0);
                remote.clear();
                *rr = 0;
            }
            Strategy::Spray { next } => *next = 0,
            Strategy::Fixed | Strategy::Ecmp | Strategy::Alternate { .. } => {}
        }
    }
}

/// A pure static-routes forwarder (no fan group).
pub struct StaticForwarder(pub StaticRoutes);

impl Forwarder for StaticForwarder {
    fn route(
        &mut self,
        _ctx: &mut Ctx<'_>,
        _in_port: PortId,
        pkt: &Packet,
    ) -> Result<PortId, RouteError> {
        self.0.try_route(pkt)
    }
}
