//! Topology partitioner for sharded execution.
//!
//! A [`TopoGraph`] describes a topology abstractly — nodes with a *group*
//! (e.g. the pod they belong to) and node/link factories instead of built
//! objects — so the same description can be instantiated either as one
//! monolithic [`Simulator`] or as a [`ShardPlan`] whose shards each build
//! their slice on their own worker thread.
//!
//! [`TopoGraph::partition`] assigns every node's group to a shard
//! (`group % shards`), classifies every directed link as *interior* (both
//! ends in one shard) or *boundary* (cut; its egress half lives with the
//! transmitter, its ingress half with the receiver), and computes the
//! conservative lookahead as the minimum propagation delay over boundary
//! links. The resulting [`PartitionLayout`] is the single source of truth
//! for both the per-shard build closures and the global↔local id maps, so
//! the two can never disagree.
//!
//! Global id conventions (matching [`TopoGraph::build_monolithic`]):
//! nodes are numbered in insertion order; pair `j` owns directed links
//! `2j` (a→b) and `2j+1` (b→a).

use std::sync::Arc;

use mtp_sim::time::Duration;
use mtp_sim::{
    BoundaryRoute, DirLinkId, LinkCfg, Node, NodeId, PortId, ShardBuildPlan, ShardPlan, Simulator,
};

/// Builds one node instance. `Arc` so shard build closures can share it.
pub type NodeFactory = Arc<dyn Fn() -> Box<dyn Node> + Send + Sync>;

/// Builds one directed link's configuration.
pub type CfgFactory = Arc<dyn Fn() -> LinkCfg + Send + Sync>;

struct GNode {
    group: usize,
    make: NodeFactory,
}

struct GPair {
    a: usize,
    pa: PortId,
    b: usize,
    pb: PortId,
    ab: CfgFactory,
    ba: CfgFactory,
    /// Propagation delays, cached at [`TopoGraph::connect`] time so the
    /// partitioner can compute the lookahead without re-running factories.
    ab_delay: Duration,
    ba_delay: Duration,
}

/// An abstract topology: nodes with groups, links as factory pairs.
#[derive(Default)]
pub struct TopoGraph {
    nodes: Vec<GNode>,
    pairs: Vec<GPair>,
}

/// How one shard wires one link pair, in global-pair terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkOp {
    /// Interior pair: both directions via [`Simulator::connect`]
    /// (consumes local dirs `2` at a time, globals `2j` then `2j+1`).
    Connect {
        /// Global pair index.
        pair: usize,
    },
    /// Egress half of one cut direction of pair `pair`; `forward` picks
    /// a→b (global `2j`) vs b→a (global `2j+1`).
    Out {
        /// Global pair index.
        pair: usize,
        /// a→b when true, b→a when false.
        forward: bool,
    },
    /// Ingress half of one cut direction of pair `pair`.
    In {
        /// Global pair index.
        pair: usize,
        /// a→b when true, b→a when false.
        forward: bool,
    },
}

/// One shard's slice of the layout.
#[derive(Debug, Clone, Default)]
pub struct ShardLayout {
    /// Global node ids built by this shard, in local-id order.
    pub nodes: Vec<usize>,
    /// Wiring operations, in the order the shard's builder executes them
    /// (which fixes local [`DirLinkId`] assignment).
    pub ops: Vec<LinkOp>,
    /// Global directed-link id of each local link, in local-id order.
    pub dir_globals: Vec<usize>,
}

/// The partitioner's full answer for one shard count.
pub struct PartitionLayout {
    /// Shard count.
    pub shards: usize,
    /// Shard of every node, indexed by global node id.
    pub shard_of_node: Vec<usize>,
    /// `(shard, local node id)` of every node.
    pub node_owner: Vec<(usize, NodeId)>,
    /// `(shard, local dir id)` of every directed link's egress state.
    pub dir_owner: Vec<(usize, DirLinkId)>,
    /// Every cut directed link.
    pub routes: Vec<BoundaryRoute>,
    /// Minimum propagation delay over cut links — the lookahead bound.
    /// `None` when nothing is cut (single shard).
    pub lookahead: Option<Duration>,
    /// Per-shard wiring slices.
    pub per_shard: Vec<ShardLayout>,
}

impl TopoGraph {
    /// An empty graph.
    pub fn new() -> TopoGraph {
        TopoGraph::default()
    }

    /// Add a node in `group` (the partition unit — e.g. its pod index).
    /// Returns its global id.
    pub fn add_node(
        &mut self,
        group: usize,
        make: impl Fn() -> Box<dyn Node> + Send + Sync + 'static,
    ) -> usize {
        self.nodes.push(GNode {
            group,
            make: Arc::new(make),
        });
        self.nodes.len() - 1
    }

    /// Connect `a`'s `pa` to `b`'s `pb`; returns the pair index `j`
    /// (directed links `2j` = a→b, `2j+1` = b→a). The factories are run
    /// once here to cache the propagation delays (they must be
    /// deterministic: every later invocation must produce the same
    /// configuration).
    pub fn connect(
        &mut self,
        a: usize,
        pa: PortId,
        b: usize,
        pb: PortId,
        ab: impl Fn() -> LinkCfg + Send + Sync + 'static,
        ba: impl Fn() -> LinkCfg + Send + Sync + 'static,
    ) -> usize {
        let ab_delay = ab().delay;
        let ba_delay = ba().delay;
        self.pairs.push(GPair {
            a,
            pa,
            b,
            pb,
            ab: Arc::new(ab),
            ba: Arc::new(ba),
            ab_delay,
            ba_delay,
        });
        self.pairs.len() - 1
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of link pairs (directed links are `2 * num_pairs`).
    pub fn num_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// Build the whole graph in one simulator, ids in global order. The
    /// packet-id namespaces default to the node ids, so this is exactly
    /// what each shard reproduces locally.
    pub fn build_monolithic(&self, seed: u64, trace_cap: Option<usize>) -> Simulator {
        let mut sim = Simulator::new(seed);
        if let Some(cap) = trace_cap {
            sim.enable_trace(cap);
        }
        for n in &self.nodes {
            sim.add_node((n.make)());
        }
        for p in &self.pairs {
            sim.connect(NodeId(p.a), p.pa, NodeId(p.b), p.pb, (p.ab)(), (p.ba)());
        }
        sim
    }

    /// Partition into `shards` shards (`shard_of_node = group % shards`),
    /// classifying every directed link and computing the lookahead.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn partition(&self, shards: usize) -> PartitionLayout {
        assert!(shards > 0, "cannot partition into zero shards");
        let shard_of_node: Vec<usize> = self.nodes.iter().map(|n| n.group % shards).collect();
        let mut per_shard: Vec<ShardLayout> = vec![ShardLayout::default(); shards];
        let mut node_owner = Vec::with_capacity(self.nodes.len());
        for (g, &s) in shard_of_node.iter().enumerate() {
            node_owner.push((s, NodeId(per_shard[s].nodes.len())));
            per_shard[s].nodes.push(g);
        }
        let mut dir_owner = vec![(usize::MAX, DirLinkId(usize::MAX)); self.pairs.len() * 2];
        let mut routes = Vec::new();
        let mut lookahead: Option<Duration> = None;
        // Local ingress halves, recorded while walking pairs; turned into
        // routes once both halves of a cut direction are placed.
        for (j, p) in self.pairs.iter().enumerate() {
            let (sa, sb) = (shard_of_node[p.a], shard_of_node[p.b]);
            if sa == sb {
                let lay = &mut per_shard[sa];
                lay.ops.push(LinkOp::Connect { pair: j });
                dir_owner[2 * j] = (sa, DirLinkId(lay.dir_globals.len()));
                lay.dir_globals.push(2 * j);
                dir_owner[2 * j + 1] = (sa, DirLinkId(lay.dir_globals.len()));
                lay.dir_globals.push(2 * j + 1);
                continue;
            }
            // Cut pair: each direction gets an egress half in its source
            // shard and an ingress half in its destination shard.
            for (forward, src_shard, dst_shard, delay) in
                [(true, sa, sb, p.ab_delay), (false, sb, sa, p.ba_delay)]
            {
                let global = 2 * j + usize::from(!forward);
                assert!(delay.0 > 0, "boundary link pair {j} has zero delay");
                lookahead = Some(match lookahead {
                    Some(l) => l.min(delay),
                    None => delay,
                });
                let src_lay = &mut per_shard[src_shard];
                src_lay.ops.push(LinkOp::Out { pair: j, forward });
                let src_dir = DirLinkId(src_lay.dir_globals.len());
                src_lay.dir_globals.push(global);
                dir_owner[global] = (src_shard, src_dir);
                let dst_lay = &mut per_shard[dst_shard];
                dst_lay.ops.push(LinkOp::In { pair: j, forward });
                let dst_dir = DirLinkId(dst_lay.dir_globals.len());
                dst_lay.dir_globals.push(global);
                routes.push(BoundaryRoute {
                    global,
                    src_shard,
                    src_dir,
                    dst_shard,
                    dst_dir,
                });
            }
        }
        PartitionLayout {
            shards,
            shard_of_node,
            node_owner,
            dir_owner,
            routes,
            lookahead,
            per_shard,
        }
    }

    /// Produce a [`ShardPlan`]: partition into `shards`, then wrap each
    /// shard's slice in a build closure that reconstructs it locally —
    /// same seed, same per-node packet-id namespaces (the global node
    /// ids), same trace setup — on its worker thread.
    ///
    /// With a single shard (or no cut links) the lookahead is
    /// effectively unbounded; a nominal 1 ms is used so epochs stay
    /// finite.
    pub fn plan(self: &Arc<Self>, shards: usize, seed: u64, trace_cap: Option<usize>) -> ShardPlan {
        let layout = self.partition(shards);
        let mut build_plans = Vec::with_capacity(shards);
        for lay in &layout.per_shard {
            let graph = Arc::clone(self);
            let nodes = lay.nodes.clone();
            let ops = lay.ops.clone();
            let node_owner = layout.node_owner.clone();
            let build = Box::new(move || {
                let mut sim = Simulator::new(seed);
                if let Some(cap) = trace_cap {
                    sim.enable_trace(cap);
                }
                for &g in &nodes {
                    let local = sim.add_node((graph.nodes[g].make)());
                    sim.set_pkt_namespace(local, g as u64);
                }
                let local_of = |g: usize| node_owner[g].1;
                for op in &ops {
                    match *op {
                        LinkOp::Connect { pair } => {
                            let p = &graph.pairs[pair];
                            sim.connect(
                                local_of(p.a),
                                p.pa,
                                local_of(p.b),
                                p.pb,
                                (p.ab)(),
                                (p.ba)(),
                            );
                        }
                        LinkOp::Out { pair, forward } => {
                            let p = &graph.pairs[pair];
                            let (src, port, cfg) = if forward {
                                (p.a, p.pa, (p.ab)())
                            } else {
                                (p.b, p.pb, (p.ba)())
                            };
                            sim.connect_boundary_out(local_of(src), port, cfg);
                        }
                        LinkOp::In { pair, forward } => {
                            let p = &graph.pairs[pair];
                            let (dst, port, cfg) = if forward {
                                (p.b, p.pb, (p.ab)())
                            } else {
                                (p.a, p.pa, (p.ba)())
                            };
                            sim.connect_boundary_in(local_of(dst), port, cfg);
                        }
                    }
                }
                sim
            });
            build_plans.push(ShardBuildPlan {
                build,
                node_globals: lay.nodes.clone(),
                dir_globals: lay.dir_globals.clone(),
            });
        }
        ShardPlan {
            lookahead: layout.lookahead.unwrap_or(Duration::from_micros(1000)),
            shards: build_plans,
            routes: layout.routes,
            dir_owner: layout.dir_owner,
            node_owner: layout
                .node_owner
                .iter()
                .map(|&(s, local)| (s, local))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtp_sim::time::Bandwidth;

    struct Idle;
    impl Node for Idle {
        fn on_packet(&mut self, _: &mut mtp_sim::Ctx<'_>, _: PortId, _: mtp_sim::Packet) {}
    }

    fn cfg(delay_ps: u64) -> impl Fn() -> LinkCfg + Send + Sync + 'static {
        move || LinkCfg::drop_tail(Bandwidth::from_gbps(100), Duration(delay_ps), 64)
    }

    /// A random leaf-spine-ish multi-pod graph: per-pod hosts and leaves,
    /// shared spines (assigned round-robin to pods), random delays.
    fn random_graph(rng: &mut impl rand::Rng) -> TopoGraph {
        let pods = rng.gen_range(1..=5usize);
        let leaves_per_pod = rng.gen_range(1..=3usize);
        let hosts_per_leaf = rng.gen_range(1..=3usize);
        let spines = rng.gen_range(1..=4usize);
        let mut g = TopoGraph::new();
        let mut leaf_ids = Vec::new();
        for pod in 0..pods {
            for _ in 0..leaves_per_pod {
                let leaf = g.add_node(pod, || Box::new(Idle));
                let mut port = 0usize;
                for _ in 0..hosts_per_leaf {
                    let host = g.add_node(pod, || Box::new(Idle));
                    let d = rng.gen_range(1..=2_000_000u64);
                    g.connect(host, PortId(0), leaf, PortId(port), cfg(d), cfg(d + 1));
                    port += 1;
                }
                leaf_ids.push((leaf, port));
            }
        }
        for s in 0..spines {
            let spine = g.add_node(s % pods, || Box::new(Idle));
            for (i, (leaf, base)) in leaf_ids.iter().enumerate() {
                let d = rng.gen_range(1..=2_000_000u64);
                g.connect(
                    *leaf,
                    PortId(base + s),
                    spine,
                    PortId(i),
                    cfg(d),
                    cfg(d + 1),
                );
            }
        }
        g
    }

    /// The satellite property: every directed link is either interior to
    /// exactly one shard or cut into exactly one egress and one ingress
    /// half; the lookahead is exactly the minimum cut-link delay; and the
    /// id maps are mutually consistent.
    #[test]
    fn partition_covers_every_link_exactly_once() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
        for _case in 0..40 {
            let g = random_graph(&mut rng);
            for shards in 1..=4usize {
                let lay = g.partition(shards);
                let dirs = g.num_pairs() * 2;
                // Each directed link: exactly one egress owner, and
                // (boundary only) exactly one ingress placement.
                let mut egress_seen = vec![0usize; dirs];
                let mut ingress_seen = vec![0usize; dirs];
                for (s, sl) in lay.per_shard.iter().enumerate() {
                    let mut local = 0usize;
                    for op in &sl.ops {
                        match *op {
                            LinkOp::Connect { pair } => {
                                egress_seen[2 * pair] += 1;
                                egress_seen[2 * pair + 1] += 1;
                                assert_eq!(sl.dir_globals[local], 2 * pair);
                                assert_eq!(sl.dir_globals[local + 1], 2 * pair + 1);
                                assert_eq!(lay.dir_owner[2 * pair], (s, DirLinkId(local)));
                                assert_eq!(lay.dir_owner[2 * pair + 1], (s, DirLinkId(local + 1)));
                                local += 2;
                            }
                            LinkOp::Out { pair, forward } => {
                                let gdir = 2 * pair + usize::from(!forward);
                                egress_seen[gdir] += 1;
                                assert_eq!(sl.dir_globals[local], gdir);
                                assert_eq!(lay.dir_owner[gdir], (s, DirLinkId(local)));
                                local += 1;
                            }
                            LinkOp::In { pair, forward } => {
                                let gdir = 2 * pair + usize::from(!forward);
                                ingress_seen[gdir] += 1;
                                assert_eq!(sl.dir_globals[local], gdir);
                                local += 1;
                            }
                        }
                    }
                    assert_eq!(local, sl.dir_globals.len());
                }
                let boundary: Vec<usize> = (0..dirs).filter(|&d| ingress_seen[d] > 0).collect();
                for d in 0..dirs {
                    assert_eq!(egress_seen[d], 1, "dir {d} egress placed once");
                    assert!(ingress_seen[d] <= 1, "dir {d} ingress placed at most once");
                }
                // Routes cover exactly the cut directions.
                assert_eq!(lay.routes.len(), boundary.len());
                let mut route_dirs: Vec<usize> = lay.routes.iter().map(|r| r.global).collect();
                route_dirs.sort_unstable();
                assert_eq!(route_dirs, boundary);
                for r in &lay.routes {
                    assert_ne!(r.src_shard, r.dst_shard, "cut link must cross shards");
                }
                // Lookahead == independently computed min over cut delays.
                let mut min_delay: Option<Duration> = None;
                for (j, p) in (0..g.num_pairs()).map(|j| (j, &g.pairs[j])) {
                    for (forward, delay) in [(true, p.ab_delay), (false, p.ba_delay)] {
                        let gdir = 2 * j + usize::from(!forward);
                        if boundary.contains(&gdir) {
                            min_delay = Some(min_delay.map_or(delay, |m: Duration| m.min(delay)));
                        }
                    }
                }
                assert_eq!(lay.lookahead, min_delay);
                if shards == 1 {
                    assert!(lay.routes.is_empty());
                    assert!(lay.lookahead.is_none());
                }
                // Node maps are a bijection.
                let mut count = vec![0usize; g.num_nodes()];
                for (s, sl) in lay.per_shard.iter().enumerate() {
                    for (local, &gn) in sl.nodes.iter().enumerate() {
                        count[gn] += 1;
                        assert_eq!(lay.node_owner[gn], (s, NodeId(local)));
                        assert_eq!(lay.shard_of_node[gn], s);
                    }
                }
                assert!(count.iter().all(|&c| c == 1));
            }
        }
    }
}
