//! MTP ↔ TCP-island bridging devices (paper §4, "Interaction with TCP").
//!
//! "MTP can coexist with legacy TCP devices. In this scenario, the MTP
//! header can be included as a new TCP option, and MTP devices can bridge
//! TCP islands."
//!
//! [`TcpIslandBridge`] is the device at each edge of a legacy region: on
//! the MTP side it wraps every MTP packet in an outer TCP segment
//! ([`Headers::Bridged`]), so legacy devices in between — which only
//! understand TCP — forward, queue, and police it like any other segment;
//! on the island side it unwraps arriving bridged segments back to native
//! MTP. The byte-exact encapsulation this models is
//! [`mtp_wire::bridge`] (magic-prefixed payload encapsulation; classic
//! 40-byte TCP options cannot hold a feedback-laden MTP header).
//!
//! Wrapping grows the wire length by the outer TCP/IP header plus the
//! encapsulation preamble; unwrapping restores it.

use mtp_sim::packet::{Headers, Packet};
use mtp_sim::{Ctx, Node, PortId};
use mtp_wire::bridge::BRIDGE_PREAMBLE_LEN;
use mtp_wire::TcpHeader;

/// Extra wire bytes a bridged packet carries: outer TCP/IP header plus the
/// encapsulation preamble.
pub const BRIDGE_OVERHEAD: u32 = 40 + BRIDGE_PREAMBLE_LEN as u32;

/// Bridge statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct BridgeStats {
    /// MTP packets wrapped for the island.
    pub wrapped: u64,
    /// Bridged packets unwrapped back to MTP.
    pub unwrapped: u64,
    /// Non-MTP packets passed through untouched.
    pub passed: u64,
    /// Packets rejected by the wire-integrity check (corrupted in flight).
    pub malformed: u64,
}

/// One edge of a TCP island: MTP side on port 0, island side on port 1.
pub struct TcpIslandBridge {
    /// Connection id stamped on outer segments (so island ECMP treats the
    /// bridged flow consistently).
    outer_conn: u32,
    seq: u64,
    /// Counters.
    pub stats: BridgeStats,
    name: String,
}

const MTP_SIDE: PortId = PortId(0);
const ISLAND_SIDE: PortId = PortId(1);

impl TcpIslandBridge {
    /// A bridge using `outer_conn` as the island-facing connection id.
    pub fn new(outer_conn: u32) -> TcpIslandBridge {
        TcpIslandBridge {
            outer_conn,
            seq: 0,
            stats: BridgeStats::default(),
            name: format!("tcp-bridge-{outer_conn}"),
        }
    }
}

impl Node for TcpIslandBridge {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, port: PortId, mut pkt: Packet) {
        // A bridge rewrites headers, so it must never wrap or unwrap bytes
        // it cannot verify: reject corrupted packets at either edge.
        if mtp_sim::corrupt::sanitize(&mut pkt).is_err() {
            self.stats.malformed += 1;
            ctx.trace_malformed(&pkt, port);
            mtp_sim::pool::recycle_packet(pkt);
            return;
        }
        if port == MTP_SIDE {
            // Entering the island: wrap MTP in an outer TCP segment.
            if let Headers::Mtp(mtp) = pkt.headers {
                let payload = pkt.wire_len;
                let tcp = TcpHeader {
                    conn_id: self.outer_conn,
                    src_port: mtp.src_port,
                    dst_port: mtp.dst_port,
                    seq: self.seq,
                    ack: 0,
                    flags: Default::default(),
                    rwnd: u32::MAX,
                    payload_len: payload.min(u16::MAX as u32) as u16,
                };
                self.seq += payload as u64;
                pkt.headers = Headers::Bridged { tcp, mtp };
                pkt.wire_len += BRIDGE_OVERHEAD;
                self.stats.wrapped += 1;
            } else {
                self.stats.passed += 1;
            }
            ctx.send(ISLAND_SIDE, pkt);
        } else {
            // Leaving the island: unwrap back to native MTP.
            if let Headers::Bridged { mtp, .. } = pkt.headers {
                pkt.headers = Headers::Mtp(mtp);
                pkt.wire_len = pkt.wire_len.saturating_sub(BRIDGE_OVERHEAD);
                self.stats.unwrapped += 1;
            } else {
                self.stats.passed += 1;
            }
            ctx.send(MTP_SIDE, pkt);
        }
    }

    fn audit_counters(&self, out: &mut mtp_sim::NodeAuditCounters) {
        out.malformed += self.stats.malformed;
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routes::StaticRoutes;
    use crate::strategies::StaticForwarder;
    use crate::switch::SwitchNode;
    use mtp_core::{MtpConfig, MtpSenderNode, MtpSinkNode, ScheduledMsg};
    use mtp_sim::time::{Bandwidth, Duration, Time};
    use mtp_sim::{LinkCfg, Simulator};
    use mtp_wire::EntityId;

    /// MTP endpoints talk across an island whose interior switch only
    /// understands TCP addressing.
    #[test]
    fn mtp_crosses_a_tcp_island() {
        let mut sim = Simulator::new(8);
        let snd = sim.add_node(Box::new(MtpSenderNode::new(
            MtpConfig::default(),
            1,
            2,
            EntityId(0),
            1 << 32,
            vec![ScheduledMsg::new(Time::ZERO, 500_000)],
        )));
        let in_bridge = sim.add_node(Box::new(TcpIslandBridge::new(7000)));
        // The island interior: a plain switch that routes on the *TCP*
        // header (it would drop or misroute native MTP).
        let island = sim.add_node(Box::new(SwitchNode::new(
            "island-sw",
            Box::new(StaticForwarder(
                StaticRoutes::new().add(1, PortId(0)).add(2, PortId(1)),
            )),
        )));
        let out_bridge = sim.add_node(Box::new(TcpIslandBridge::new(7001)));
        let sink = sim.add_node(Box::new(MtpSinkNode::new(2, Duration::from_micros(100))));

        let bw = Bandwidth::from_gbps(100);
        let d = Duration::from_micros(1);
        let mk = || LinkCfg::ecn(bw, d, 256, 40);
        sim.connect(snd, PortId(0), in_bridge, PortId(0), mk(), mk());
        sim.connect(in_bridge, PortId(1), island, PortId(0), mk(), mk());
        // NOTE: out_bridge's ISLAND side faces the island switch.
        sim.connect(island, PortId(1), out_bridge, PortId(1), mk(), mk());
        sim.connect(out_bridge, PortId(0), sink, PortId(0), mk(), mk());

        sim.run_until(Time::ZERO + Duration::from_millis(20));

        assert!(sim.node_as::<MtpSenderNode>(snd).all_done());
        assert_eq!(sim.node_as::<MtpSinkNode>(sink).total_goodput(), 500_000);
        let inb = sim.node_as::<TcpIslandBridge>(in_bridge).stats;
        let outb = sim.node_as::<TcpIslandBridge>(out_bridge).stats;
        assert!(inb.wrapped > 0, "data wrapped into the island");
        assert_eq!(outb.unwrapped, inb.wrapped, "every wrap has an unwrap");
        // ACKs flow the reverse way: wrapped by out_bridge, unwrapped by
        // in_bridge.
        assert!(outb.wrapped > 0);
        assert_eq!(inb.unwrapped, outb.wrapped);
    }

    #[test]
    fn wrap_unwrap_preserves_wire_len_and_header() {
        use mtp_wire::MtpHeader;
        struct Probe {
            got: Option<Packet>,
        }
        impl Node for Probe {
            fn on_packet(&mut self, _: &mut Ctx<'_>, _: PortId, pkt: Packet) {
                self.got = Some(pkt);
            }
        }
        struct SendOnce {
            pkt: Option<Packet>,
        }
        impl Node for SendOnce {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                let p = self.pkt.take().expect("one packet");
                ctx.send(PortId(0), p);
            }
            fn on_packet(&mut self, _: &mut Ctx<'_>, _: PortId, _: Packet) {}
        }

        let hdr = MtpHeader {
            src_port: 1,
            dst_port: 2,
            msg_id: mtp_wire::MsgId(9),
            msg_len_pkts: 1,
            msg_len_bytes: 100,
            pkt_len: 100,
            ..MtpHeader::default()
        };
        let pkt = Packet::new(Headers::Mtp(mtp_sim::pool::boxed(hdr.clone())), 144);

        let mut sim = Simulator::new(1);
        let src = sim.add_node(Box::new(SendOnce { pkt: Some(pkt) }));
        let bridge_in = sim.add_node(Box::new(TcpIslandBridge::new(1)));
        let bridge_out = sim.add_node(Box::new(TcpIslandBridge::new(2)));
        let dst = sim.add_node(Box::new(Probe { got: None }));
        let bw = Bandwidth::from_gbps(10);
        let d = Duration::from_micros(1);
        sim.connect_symmetric(src, PortId(0), bridge_in, PortId(0), bw, d, 64);
        sim.connect_symmetric(bridge_in, PortId(1), bridge_out, PortId(1), bw, d, 64);
        sim.connect_symmetric(bridge_out, PortId(0), dst, PortId(0), bw, d, 64);
        sim.run();

        let got = sim.node_as::<Probe>(dst).got.as_ref().expect("delivered");
        assert_eq!(got.wire_len, 144, "overhead stripped");
        assert_eq!(got.headers.as_mtp().expect("native MTP restored"), &hdr);
        let wrapped = sim.node_as::<TcpIslandBridge>(bridge_in).stats.wrapped;
        assert_eq!(wrapped, 1);
    }
}
