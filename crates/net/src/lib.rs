//! # mtp-net — in-network devices
//!
//! Everything that lives *inside* the network in the paper's Figure 1:
//!
//! * [`switch`] — the switch node: pluggable [`switch::Forwarder`],
//!   per-egress **pathlet stamps** that append `(pathlet, TC, feedback)`
//!   TLVs to passing MTP packets (growing them on the wire, as §4's
//!   header-overhead discussion anticipates), and pluggable ingress
//!   policies;
//! * [`strategies`] — forwarding strategies: static routes, flow-level
//!   ECMP, per-packet spraying, time-driven path alternation (the optical
//!   switch of Fig. 5), and the **message-aware MTP load balancer** that
//!   pins each message to the lightest path using the message length
//!   advertised in its header (Fig. 6);
//! * [`fairshare`] — the per-entity fair-share ingress enforcer that gives
//!   Fig. 7's "MTP-enabled shared queue" its equal split without per-tenant
//!   queues;
//! * [`proxy`] — the TCP-terminating proxy whose buffering/HOL-blocking
//!   trade-off is Fig. 2;
//! * [`cache`] — a NetCache-style in-network KV cache offload plus backend
//!   server and client nodes (Fig. 1 ①);
//! * [`compress`] — a message-mutating compression offload demonstrating
//!   the data-mutation requirement end to end.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod bridge;
pub mod cache;
pub mod compress;
pub mod fairshare;
pub mod partition;
pub mod proxy;
pub mod replica;
pub mod routes;
pub mod strategies;
pub mod switch;

pub use aggregate::{AggregateStats, AggregatorNode};
pub use bridge::{BridgeStats, TcpIslandBridge, BRIDGE_OVERHEAD};
pub use cache::{CacheStats, KvCacheNode, KvClientNode, KvServerNode};
pub use compress::{CompressStats, CompressorNode};
pub use fairshare::FairShareEnforcer;
pub use partition::{CfgFactory, LinkOp, NodeFactory, PartitionLayout, ShardLayout, TopoGraph};
pub use proxy::TcpProxyNode;
pub use replica::{ReplicaLbNode, ReplicaLbStats, ReplicaPolicy};
pub use routes::{dst_addr, src_addr, RouteError, StaticRoutes};
pub use strategies::{conga_decode, conga_pathlet, FanoutForwarder, StaticForwarder, Strategy};
pub use switch::{
    AdvertiseCfg, Forwarder, IngressPolicy, MarkAllPolicy, Stamp, StampKind, SwitchNode,
    SwitchStats,
};
