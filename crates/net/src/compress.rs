//! An in-network compression offload — the paper's **data mutation**
//! capability, demonstrated end to end.
//!
//! [`CompressorNode`] sits inline between a sender and a receiver. It
//! reassembles each upstream message (buffering is *bounded and known in
//! advance* from the `msg_len_bytes` field in every packet — contrast the
//! unbounded TCP proxy buffer of Fig. 2), acknowledges it upstream, and
//! re-originates a **smaller** message downstream. Lengths, offsets, and
//! packet counts all change; nothing breaks, because MTP reliability names
//! `(message, packet)` pairs instead of stream bytes (paper §2.2, §3.1.2).
//!
//! The same structure models any mutating offload: serialization,
//! deduplication, request preprocessing.

use std::collections::HashMap;

use mtp_sim::packet::{Headers, Packet};
use mtp_sim::time::Time;
use mtp_sim::{Ctx, Node, PortId};
use mtp_wire::{EntityId, MsgId, PktType, TrafficClass};

use mtp_core::{MtpConfig, MtpReceiver, MtpSender};

const UPSTREAM_PORT: PortId = PortId(0);
const DOWNSTREAM_PORT: PortId = PortId(1);
const TOKEN_RTO: u64 = 1;

/// Compressor statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompressStats {
    /// Messages compressed and re-originated.
    pub msgs: u64,
    /// Payload bytes in.
    pub bytes_in: u64,
    /// Payload bytes out (after compression).
    pub bytes_out: u64,
    /// High-water mark of reassembly buffering.
    pub max_buffered: u64,
}

/// An inline compressing offload: upstream on port 0, downstream on port 1.
pub struct CompressorNode {
    #[allow(dead_code)] // address kept for symmetry/debugging
    addr: u16,
    /// Output bytes = input bytes × `ratio` (rounded up, min 1).
    ratio: f64,
    receiver: MtpReceiver,
    sender: MtpSender,
    /// Map original message → forwarded message (for tests/tracing).
    pub forwarded: HashMap<MsgId, MsgId>,
    armed: Option<Time>,
    /// Counters.
    pub stats: CompressStats,
}

impl CompressorNode {
    /// A compressor at address `addr` shrinking payloads by `ratio`
    /// (e.g. 0.4 keeps 40% of the bytes). `msg_id_base` must be unique.
    pub fn new(cfg: MtpConfig, addr: u16, ratio: f64, msg_id_base: u64) -> CompressorNode {
        assert!(ratio > 0.0 && ratio <= 1.0, "ratio in (0, 1]");
        CompressorNode {
            addr,
            ratio,
            receiver: MtpReceiver::new(addr),
            sender: MtpSender::new(cfg, addr, EntityId(0), msg_id_base),
            forwarded: HashMap::new(),
            armed: None,
            stats: CompressStats::default(),
        }
    }

    fn flush_sender(&mut self, ctx: &mut Ctx<'_>, out: Vec<Packet>) {
        for pkt in out {
            ctx.send(DOWNSTREAM_PORT, pkt);
        }
        match self.sender.next_deadline() {
            Some(dl) => {
                if self.armed != Some(dl) {
                    ctx.set_timer_at(dl, TOKEN_RTO);
                    self.armed = Some(dl);
                }
            }
            None => self.armed = None,
        }
    }
}

impl Node for CompressorNode {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, port: PortId, pkt: Packet) {
        let now = ctx.now();
        let ecn = pkt.ecn;
        let Headers::Mtp(hdr) = pkt.headers else {
            return;
        };
        if port == UPSTREAM_PORT && hdr.pkt_type == PktType::Data {
            // Reassemble and ACK upstream.
            let (ack, _) = self.receiver.on_data(now, &hdr, ecn);
            ctx.send(UPSTREAM_PORT, ack);
            self.stats.max_buffered = self.stats.max_buffered.max(self.receiver.buffered_bytes());
            // Completed messages are compressed and re-originated.
            let mut out = Vec::new();
            let mut delivered = Vec::new();
            self.receiver.drain_events(&mut delivered);
            for ev in delivered {
                let out_bytes = ((ev.bytes as f64 * self.ratio).ceil() as u32).max(1);
                let new_id = self.sender.send_message(
                    hdr.dst_port,
                    out_bytes,
                    ev.pri,
                    TrafficClass::BEST_EFFORT,
                    now,
                    &mut out,
                );
                self.forwarded.insert(ev.id, new_id);
                self.stats.msgs += 1;
                self.stats.bytes_in += ev.bytes as u64;
                self.stats.bytes_out += out_bytes as u64;
            }
            self.flush_sender(ctx, out);
        } else if port == DOWNSTREAM_PORT && matches!(hdr.pkt_type, PktType::Ack | PktType::Nack) {
            let mut out = Vec::new();
            self.sender.on_ack(now, &hdr, &mut out);
            self.sender.drain_events(&mut Vec::new());
            self.flush_sender(ctx, out);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token != TOKEN_RTO {
            return;
        }
        self.armed = None;
        let mut out = Vec::new();
        self.sender.on_timer(ctx.now(), &mut out);
        self.flush_sender(ctx, out);
    }

    fn name(&self) -> &str {
        "compressor"
    }
}
