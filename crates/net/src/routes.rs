//! Host addressing and static routes.
//!
//! The simulator does not model IP addresses; by workspace convention the
//! transport-port fields are **host addresses** (`src_port` = sending host,
//! `dst_port` = destination host). Switches route on them.

use std::collections::HashMap;

use mtp_sim::packet::{Headers, Packet};
use mtp_sim::PortId;

/// Extract the destination host address of a packet, if it has one.
pub fn dst_addr(pkt: &Packet) -> Option<u16> {
    match &pkt.headers {
        Headers::Tcp(h) => Some(h.dst_port),
        Headers::Mtp(h) => Some(h.dst_port),
        Headers::Bridged { tcp, .. } => Some(tcp.dst_port),
        // Corrupted bytes carry no *trusted* address; switches drop them
        // before routing, but the accessor stays total.
        Headers::Raw | Headers::Mangled { .. } => None,
    }
}

/// Extract the source host address of a packet, if it has one.
pub fn src_addr(pkt: &Packet) -> Option<u16> {
    match &pkt.headers {
        Headers::Tcp(h) => Some(h.src_port),
        Headers::Mtp(h) => Some(h.src_port),
        Headers::Bridged { tcp, .. } => Some(tcp.src_port),
        Headers::Raw | Headers::Mangled { .. } => None,
    }
}

/// Why a packet could not be routed. Forwarding elements surface this
/// instead of silently dropping, so switches can count each cause and the
/// sim trace records a `NoRoute` event per discarded packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteError {
    /// The packet carries no destination address (raw frame).
    NoAddress,
    /// No table entry (and no fan group) covers this destination.
    NoRoute(u16),
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::NoAddress => write!(f, "packet has no destination address"),
            RouteError::NoRoute(addr) => write!(f, "no route to host {addr}"),
        }
    }
}

/// A destination-address routing table.
#[derive(Debug, Clone, Default)]
pub struct StaticRoutes {
    table: HashMap<u16, PortId>,
}

impl StaticRoutes {
    /// An empty table.
    pub fn new() -> StaticRoutes {
        StaticRoutes::default()
    }

    /// Route `addr` out of `port`.
    pub fn add(mut self, addr: u16, port: PortId) -> StaticRoutes {
        self.table.insert(addr, port);
        self
    }

    /// Look up the egress port for a destination address.
    pub fn lookup(&self, addr: u16) -> Option<PortId> {
        self.table.get(&addr).copied()
    }

    /// Look up the egress port for a packet's destination.
    pub fn route(&self, pkt: &Packet) -> Option<PortId> {
        dst_addr(pkt).and_then(|a| self.lookup(a))
    }

    /// Look up the egress port for a packet's destination, distinguishing
    /// *why* routing failed: an address-less packet vs. a destination the
    /// table does not cover.
    pub fn try_route(&self, pkt: &Packet) -> Result<PortId, RouteError> {
        let addr = dst_addr(pkt).ok_or(RouteError::NoAddress)?;
        self.lookup(addr).ok_or(RouteError::NoRoute(addr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtp_wire::{MtpHeader, TcpHeader};

    #[test]
    fn addresses_from_both_header_types() {
        let t = Packet::new(
            Headers::Tcp(TcpHeader {
                src_port: 5,
                dst_port: 9,
                ..TcpHeader::default()
            }),
            100,
        );
        assert_eq!(src_addr(&t), Some(5));
        assert_eq!(dst_addr(&t), Some(9));
        let m = Packet::new(
            Headers::Mtp(Box::new(MtpHeader {
                src_port: 7,
                dst_port: 3,
                ..MtpHeader::default()
            })),
            100,
        );
        assert_eq!(src_addr(&m), Some(7));
        assert_eq!(dst_addr(&m), Some(3));
        assert_eq!(dst_addr(&Packet::new(Headers::Raw, 1)), None);
    }

    #[test]
    fn routes_lookup() {
        let r = StaticRoutes::new().add(9, PortId(2)).add(3, PortId(0));
        let t = Packet::new(
            Headers::Tcp(TcpHeader {
                dst_port: 9,
                ..TcpHeader::default()
            }),
            100,
        );
        assert_eq!(r.route(&t), Some(PortId(2)));
        assert_eq!(r.lookup(42), None);
    }

    #[test]
    fn try_route_distinguishes_failure_causes() {
        let r = StaticRoutes::new().add(9, PortId(2));
        let routable = Packet::new(
            Headers::Tcp(TcpHeader {
                dst_port: 9,
                ..TcpHeader::default()
            }),
            100,
        );
        assert_eq!(r.try_route(&routable), Ok(PortId(2)));
        let unknown = Packet::new(
            Headers::Tcp(TcpHeader {
                dst_port: 42,
                ..TcpHeader::default()
            }),
            100,
        );
        assert_eq!(r.try_route(&unknown), Err(RouteError::NoRoute(42)));
        let raw = Packet::new(Headers::Raw, 100);
        assert_eq!(r.try_route(&raw), Err(RouteError::NoAddress));
    }
}
