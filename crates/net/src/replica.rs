//! An application-level (L7) replica load balancer (paper Fig. 1 ②a/③b).
//!
//! The paper's motivating cluster balances requests across backend storage
//! replicas, using feedback about replica load (C3-style, ③b). With TCP
//! this requires terminating connections; with MTP the balancer only needs
//! to pick a replica per *message* and rewrite the destination address —
//! a per-message mutation that MTP's `(message, packet)` reliability
//! tolerates, and that the atomicity rule makes safe (every packet of a
//! request goes to the same replica).
//!
//! [`ReplicaLbNode`] sits between clients (port 0) and `N` replicas
//! (ports 1..=N). Requests addressed to the *service address* are pinned
//! per message to a replica chosen by the policy; everything flowing back
//! from replicas is forwarded to the client side. The `LeastOutstanding`
//! policy tracks in-flight requests per replica — the information the
//! paper's ③b feedback loop carries.

use std::collections::HashMap;

use mtp_sim::packet::Packet;
use mtp_sim::{Ctx, Node, PortId};
use mtp_wire::{MsgId, PktType};

/// Replica selection policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaPolicy {
    /// Rotate through replicas regardless of load.
    RoundRobin,
    /// Send to the replica with the fewest outstanding requests
    /// (load-aware, in the spirit of C3 / paper ③b).
    LeastOutstanding,
}

/// Per-replica bookkeeping.
#[derive(Debug, Clone, Copy)]
struct Replica {
    addr: u16,
    port: PortId,
    outstanding: u64,
    served: u64,
}

/// Load-balancer statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReplicaLbStats {
    /// Request messages routed.
    pub requests: u64,
    /// Replies relayed back to clients.
    pub replies: u64,
    /// Packets rejected by the wire-integrity check (corrupted in flight).
    pub malformed: u64,
}

/// The L7 balancer node: clients on port 0, replica `i` on port `1 + i`.
pub struct ReplicaLbNode {
    service_addr: u16,
    replicas: Vec<Replica>,
    policy: ReplicaPolicy,
    rr_next: usize,
    /// Message → replica index, pinned for the message's lifetime so
    /// retransmissions follow the original choice (atomicity).
    pins: HashMap<MsgId, usize>,
    /// Counters.
    pub stats: ReplicaLbStats,
}

impl ReplicaLbNode {
    /// A balancer for `service_addr`, spreading over `replica_addrs`
    /// (replica `i` attached to port `1 + i`).
    pub fn new(service_addr: u16, replica_addrs: &[u16], policy: ReplicaPolicy) -> ReplicaLbNode {
        assert!(!replica_addrs.is_empty());
        ReplicaLbNode {
            service_addr,
            replicas: replica_addrs
                .iter()
                .enumerate()
                .map(|(i, &addr)| Replica {
                    addr,
                    port: PortId(1 + i),
                    outstanding: 0,
                    served: 0,
                })
                .collect(),
            policy,
            rr_next: 0,
            pins: HashMap::new(),
            stats: ReplicaLbStats::default(),
        }
    }

    /// Requests served per replica (same order as construction).
    pub fn served_per_replica(&self) -> Vec<u64> {
        self.replicas.iter().map(|r| r.served).collect()
    }

    /// Requests currently outstanding per replica.
    pub fn outstanding_per_replica(&self) -> Vec<u64> {
        self.replicas.iter().map(|r| r.outstanding).collect()
    }

    fn choose(&mut self) -> usize {
        match self.policy {
            ReplicaPolicy::RoundRobin => {
                let i = self.rr_next % self.replicas.len();
                self.rr_next = (self.rr_next + 1) % self.replicas.len();
                i
            }
            ReplicaPolicy::LeastOutstanding => self
                .replicas
                .iter()
                .enumerate()
                .min_by_key(|(_, r)| r.outstanding)
                .map(|(i, _)| i)
                .expect("non-empty replica set"),
        }
    }
}

impl Node for ReplicaLbNode {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, port: PortId, mut pkt: Packet) {
        // The balancer rewrites the destination address and pins messages
        // by id — both reads of the header — so it must verify integrity
        // first. Payload-damaged packets with intact headers are still
        // routable and are relayed (the endpoint detects and counts them).
        if mtp_sim::corrupt::sanitize(&mut pkt).is_err() {
            self.stats.malformed += 1;
            ctx.trace_malformed(&pkt, port);
            mtp_sim::pool::recycle_packet(pkt);
            return;
        }
        if port == PortId(0) {
            // Client side: route service-addressed data to a replica;
            // everything else (e.g. ACKs for replies, addressed to a
            // replica directly) follows its destination.
            let (is_service_data, msg_id, last) = match pkt.headers.as_mtp() {
                Some(h) => (
                    h.pkt_type == PktType::Data && h.dst_port == self.service_addr,
                    h.msg_id,
                    h.is_last_pkt(),
                ),
                None => (false, MsgId(0), false),
            };
            if is_service_data {
                let idx = match self.pins.get(&msg_id) {
                    Some(&i) => i,
                    None => {
                        let i = self.choose();
                        self.pins.insert(msg_id, i);
                        i
                    }
                };
                let hdr = pkt.headers.as_mtp_mut().expect("mtp data");
                hdr.dst_port = self.replicas[idx].addr;
                if last && !hdr.is_retx() {
                    self.replicas[idx].outstanding += 1;
                    self.stats.requests += 1;
                }
                let out_port = self.replicas[idx].port;
                ctx.send(out_port, pkt);
            } else if let Some(h) = pkt.headers.as_mtp() {
                // ACKs from clients for replica replies: route by address.
                let dst = h.dst_port;
                if let Some(r) = self.replicas.iter().find(|r| r.addr == dst) {
                    ctx.send(r.port, pkt);
                }
                // Unroutable client traffic is dropped (no default route).
            }
        } else {
            // Replica side: account reply completions, relay to client.
            let ridx = port.0 - 1;
            if let Some(h) = pkt.headers.as_mtp() {
                if h.pkt_type == PktType::Data && h.is_last_pkt() && !h.is_retx() {
                    if let Some(r) = self.replicas.get_mut(ridx) {
                        r.outstanding = r.outstanding.saturating_sub(1);
                        r.served += 1;
                        self.stats.replies += 1;
                    }
                }
            }
            ctx.send(PortId(0), pkt);
        }
    }

    fn audit_counters(&self, out: &mut mtp_sim::NodeAuditCounters) {
        out.malformed += self.stats.malformed;
    }

    fn name(&self) -> &str {
        "replica-lb"
    }
}
