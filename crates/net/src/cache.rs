//! An in-network key-value cache offload (NetCache-style; paper Fig. 1 ①).
//!
//! [`KvCacheNode`] sits on the path between clients and a backend KV
//! server. GET requests for *hot* keys are answered directly from the
//! cache: the cache **terminates the request message** (ACKing it toward
//! the client exactly as the real receiver would — possible because MTP
//! acknowledges `(message, packet)` pairs, not stream bytes) and
//! re-originates a reply message of its own. Misses are forwarded
//! unmodified to the backend.
//!
//! This is the paper's flagship example of **inter-message independence**:
//! different requests from the same client take different paths (cache vs
//! backend) with different transfer sizes and latencies, something a TCP
//! stream structurally cannot allow.

use std::collections::{HashMap, VecDeque};

use mtp_sim::packet::{AppData, Headers, Packet};
use mtp_sim::time::{Duration, Time};
use mtp_sim::{Ctx, Node, NodeFault, PortId};
use mtp_wire::{EntityId, MsgId, PktType, TrafficClass};

use mtp_core::{EndpointMirror, MtpConfig, MtpReceiver, MtpSender};

const CLIENT_PORT: PortId = PortId(0);
const SERVER_PORT: PortId = PortId(1);

const TOKEN_RTO: u64 = 1;
const TOKEN_SERVICE: u64 = 2;
const TOKEN_REQ_BASE: u64 = 1 << 32;

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheStats {
    /// GET requests answered by the cache.
    pub hits: u64,
    /// GET requests forwarded to the backend.
    pub misses: u64,
    /// Reply messages originated by the cache.
    pub replies_sent: u64,
    /// Crashes survived: each one dropped the request↔reply correlation
    /// state and abandoned replies in flight.
    pub crashes: u64,
    /// Packets rejected by the integrity check: unverifiable headers, plus
    /// payload-damaged hot GETs (the cache *terminates* those — answering
    /// a corrupted request would serve the wrong data). Dropped without an
    /// ACK, so the client retransmits a clean copy.
    pub malformed: u64,
}

/// An inline KV cache: client side on port 0, backend side on port 1.
pub struct KvCacheNode {
    /// This cache's host address (source of its replies).
    addr: u16,
    hot: std::collections::HashSet<u64>,
    reply_bytes: u32,
    receiver: MtpReceiver,
    sender: MtpSender,
    /// Request msg id → (key, client address).
    pending: HashMap<MsgId, (u64, u16)>,
    /// Reply msg id → key (to tag reply packets).
    reply_keys: HashMap<MsgId, u64>,
    armed: Option<Time>,
    /// Counters.
    pub stats: CacheStats,
    /// Registry-mirror shadow for the embedded endpoint counters.
    mirror: EndpointMirror,
}

impl KvCacheNode {
    /// A cache at address `addr` holding `hot_keys`, answering with
    /// `reply_bytes` replies. `msg_id_base` must be globally unique.
    pub fn new(
        cfg: MtpConfig,
        addr: u16,
        hot_keys: impl IntoIterator<Item = u64>,
        reply_bytes: u32,
        msg_id_base: u64,
    ) -> KvCacheNode {
        KvCacheNode {
            addr,
            hot: hot_keys.into_iter().collect(),
            reply_bytes,
            receiver: MtpReceiver::new(addr),
            sender: MtpSender::new(cfg, addr, EntityId(0), msg_id_base),
            pending: HashMap::new(),
            reply_keys: HashMap::new(),
            armed: None,
            stats: CacheStats::default(),
            mirror: EndpointMirror::default(),
        }
    }

    fn flush_sender(&mut self, ctx: &mut Ctx<'_>, out: Vec<Packet>) {
        for mut pkt in out {
            // Tag reply packets with their key so clients can correlate.
            if let Some(h) = pkt.headers.as_mtp() {
                if h.pkt_type == PktType::Data {
                    if let Some(&key) = self.reply_keys.get(&h.msg_id) {
                        pkt.app = Some(AppData::KvReply {
                            key,
                            from_cache: true,
                        });
                    }
                }
            }
            ctx.send(CLIENT_PORT, pkt);
        }
        match self.sender.next_deadline() {
            Some(dl) => {
                if self.armed != Some(dl) {
                    ctx.set_timer_at(dl, TOKEN_RTO);
                    self.armed = Some(dl);
                }
            }
            None => self.armed = None,
        }
    }
}

impl Node for KvCacheNode {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, port: PortId, mut pkt: Packet) {
        // Verify before trusting: the cache reads the header (and the
        // payload tag) to decide whether to terminate the request.
        if mtp_sim::corrupt::sanitize(&mut pkt).is_err() {
            self.stats.malformed += 1;
            ctx.trace_malformed(&pkt, port);
            mtp_sim::pool::recycle_packet(pkt);
            return;
        }
        let now = ctx.now();
        if port == SERVER_PORT {
            // Backend → client traffic passes through (payload-damaged
            // packets included: the client endpoint detects and counts
            // those — the cache is a pure relay in this direction).
            ctx.send(CLIENT_PORT, pkt);
            return;
        }
        let is_hot_get = match (&pkt.headers, pkt.app) {
            (Headers::Mtp(h), Some(AppData::KvGet { key }))
                if h.pkt_type == PktType::Data && self.hot.contains(&key) =>
            {
                Some(key)
            }
            _ => None,
        };
        match is_hot_get {
            Some(_) if pkt.payload_dirty => {
                // A hot GET the cache would terminate, but its payload was
                // damaged in flight: drop without ACKing so the client's
                // loss recovery retransmits it.
                self.stats.malformed += 1;
                ctx.trace_malformed(&pkt, port);
                mtp_sim::pool::recycle_packet(pkt);
            }
            Some(key) => {
                let Headers::Mtp(hdr) = &pkt.headers else {
                    unreachable!()
                };
                self.stats.hits += 1;
                self.pending.insert(hdr.msg_id, (key, hdr.src_port));
                // Terminate the request: ACK it as the receiver would.
                let (ack, _newly) = self.receiver.on_data(now, hdr, pkt.ecn);
                ctx.send(CLIENT_PORT, ack);
                // Completed requests trigger replies.
                let mut delivered = Vec::new();
                self.receiver.drain_events(&mut delivered);
                let mut out = Vec::new();
                for ev in delivered {
                    if let Some((key, client)) = self.pending.remove(&ev.id) {
                        let reply_id = self.sender.send_message(
                            client,
                            self.reply_bytes,
                            ev.pri,
                            TrafficClass::BEST_EFFORT,
                            now,
                            &mut out,
                        );
                        self.reply_keys.insert(reply_id, key);
                        self.stats.replies_sent += 1;
                        self.mirror.on_submit(ctx, 1);
                    }
                }
                self.flush_sender(ctx, out);
            }
            None => {
                // ACKs for our replies come back on the client port.
                let is_our_ack = match &pkt.headers {
                    Headers::Mtp(h) => {
                        matches!(h.pkt_type, PktType::Ack | PktType::Nack)
                            && h.dst_port == self.addr
                    }
                    _ => false,
                };
                if is_our_ack {
                    let Headers::Mtp(hdr) = pkt.headers else {
                        unreachable!()
                    };
                    let mut out = Vec::new();
                    self.sender.on_ack(now, &hdr, &mut out);
                    self.sender.drain_events(&mut Vec::new());
                    self.flush_sender(ctx, out);
                } else {
                    if matches!(pkt.app, Some(AppData::KvGet { .. })) {
                        self.stats.misses += 1;
                    }
                    ctx.send(SERVER_PORT, pkt);
                }
            }
        }
        self.mirror.sync_sender(ctx, &self.sender.stats);
        self.mirror.sync_receiver(ctx, &self.receiver.stats);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token != TOKEN_RTO {
            return;
        }
        self.armed = None;
        let mut out = Vec::new();
        self.sender.on_timer(ctx.now(), &mut out);
        self.flush_sender(ctx, out);
        self.mirror.sync_sender(ctx, &self.sender.stats);
    }

    fn on_fault(&mut self, _ctx: &mut Ctx<'_>, fault: NodeFault) {
        if fault == NodeFault::Crash {
            // The hot-key set is control-plane configuration and survives;
            // everything correlating in-flight requests to replies is
            // volatile and dies. Clients detect abandoned replies the MTP
            // way — per-message, with no stream to resynchronize — and
            // re-issue just those requests.
            self.stats.crashes += 1;
            self.pending.clear();
            self.reply_keys.clear();
            self.armed = None;
        }
    }

    fn audit_counters(&self, out: &mut mtp_sim::NodeAuditCounters) {
        out.malformed += self.stats.malformed;
        out.msgs_submitted += self.stats.replies_sent;
        out.msgs_completed += self.sender.stats.msgs_completed;
        out.timeouts += self.sender.stats.timeouts;
        out.retransmissions += self.sender.stats.retransmissions;
        out.msgs_delivered += self.receiver.stats.msgs_delivered;
        out.goodput_bytes += self.receiver.stats.goodput_bytes;
    }

    fn name(&self) -> &str {
        "kv-cache"
    }
}

/// A backend KV server with a bounded service rate.
pub struct KvServerNode {
    #[allow(dead_code)] // address kept for symmetry/debugging
    addr: u16,
    reply_bytes: u32,
    service_time: Duration,
    receiver: MtpReceiver,
    sender: MtpSender,
    /// Request msg id → key.
    req_keys: HashMap<MsgId, u64>,
    reply_keys: HashMap<MsgId, u64>,
    /// FIFO of requests awaiting service: (ready context).
    queue: VecDeque<(u64, u16, u8)>,
    next_free: Time,
    armed: Option<Time>,
    /// Requests served.
    pub served: u64,
    /// Packets rejected by the integrity check (corrupted in flight).
    pub malformed: u64,
    /// Registry-mirror shadow for the embedded endpoint counters.
    mirror: EndpointMirror,
}

impl KvServerNode {
    /// A server at `addr` replying with `reply_bytes` after `service_time`
    /// per request (sequential service).
    pub fn new(
        cfg: MtpConfig,
        addr: u16,
        reply_bytes: u32,
        service_time: Duration,
        msg_id_base: u64,
    ) -> KvServerNode {
        KvServerNode {
            addr,
            reply_bytes,
            service_time,
            receiver: MtpReceiver::new(addr),
            sender: MtpSender::new(cfg, addr, EntityId(0), msg_id_base),
            req_keys: HashMap::new(),
            reply_keys: HashMap::new(),
            queue: VecDeque::new(),
            next_free: Time::ZERO,
            armed: None,
            served: 0,
            malformed: 0,
            mirror: EndpointMirror::default(),
        }
    }

    fn flush_sender(&mut self, ctx: &mut Ctx<'_>, out: Vec<Packet>) {
        for mut pkt in out {
            if let Some(h) = pkt.headers.as_mtp() {
                if h.pkt_type == PktType::Data {
                    if let Some(&key) = self.reply_keys.get(&h.msg_id) {
                        pkt.app = Some(AppData::KvReply {
                            key,
                            from_cache: false,
                        });
                    }
                }
            }
            ctx.send(PortId(0), pkt);
        }
        match self.sender.next_deadline() {
            Some(dl) => {
                if self.armed != Some(dl) {
                    ctx.set_timer_at(dl, TOKEN_RTO);
                    self.armed = Some(dl);
                }
            }
            None => self.armed = None,
        }
    }
}

impl Node for KvServerNode {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _port: PortId, mut pkt: Packet) {
        // Endpoint integrity: unverifiable headers and payload-damaged
        // data are dropped un-ACKed; the requester retransmits.
        if mtp_sim::corrupt::sanitize(&mut pkt).is_err() || pkt.payload_dirty {
            self.malformed += 1;
            ctx.trace_malformed(&pkt, _port);
            mtp_sim::pool::recycle_packet(pkt);
            return;
        }
        let now = ctx.now();
        let app = pkt.app;
        let Headers::Mtp(hdr) = pkt.headers else {
            return;
        };
        match hdr.pkt_type {
            PktType::Data => {
                if let Some(AppData::KvGet { key }) = app {
                    self.req_keys.insert(hdr.msg_id, key);
                }
                let (ack, _) = self.receiver.on_data(now, &hdr, pkt.ecn);
                ctx.send(PortId(0), ack);
                let mut delivered = Vec::new();
                self.receiver.drain_events(&mut delivered);
                for ev in delivered {
                    let key = self.req_keys.remove(&ev.id).unwrap_or(0);
                    // Sequential service: one request per service_time.
                    let ready = self.next_free.max(now) + self.service_time;
                    self.next_free = ready;
                    self.queue.push_back((key, ev.src, ev.pri));
                    ctx.set_timer_at(ready, TOKEN_SERVICE + TOKEN_REQ_BASE);
                }
            }
            PktType::Ack | PktType::Nack => {
                let mut out = Vec::new();
                self.sender.on_ack(now, &hdr, &mut out);
                self.sender.drain_events(&mut Vec::new());
                self.flush_sender(ctx, out);
            }
            PktType::Control => {}
        }
        self.mirror.sync_sender(ctx, &self.sender.stats);
        self.mirror.sync_receiver(ctx, &self.receiver.stats);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        let now = ctx.now();
        if token == TOKEN_RTO {
            self.armed = None;
            let mut out = Vec::new();
            self.sender.on_timer(now, &mut out);
            self.flush_sender(ctx, out);
            self.mirror.sync_sender(ctx, &self.sender.stats);
            return;
        }
        // Service completion: answer the oldest queued request.
        if let Some((key, client, pri)) = self.queue.pop_front() {
            let mut out = Vec::new();
            let reply_id = self.sender.send_message(
                client,
                self.reply_bytes,
                pri,
                TrafficClass::BEST_EFFORT,
                now,
                &mut out,
            );
            self.reply_keys.insert(reply_id, key);
            self.served += 1;
            self.mirror.on_submit(ctx, 1);
            self.flush_sender(ctx, out);
            self.mirror.sync_sender(ctx, &self.sender.stats);
        }
    }

    fn audit_counters(&self, out: &mut mtp_sim::NodeAuditCounters) {
        out.malformed += self.malformed;
        out.msgs_submitted += self.served;
        out.msgs_completed += self.sender.stats.msgs_completed;
        out.timeouts += self.sender.stats.timeouts;
        out.retransmissions += self.sender.stats.retransmissions;
        out.msgs_delivered += self.receiver.stats.msgs_delivered;
        out.goodput_bytes += self.receiver.stats.goodput_bytes;
    }

    fn name(&self) -> &str {
        "kv-server"
    }
}

/// A KV client issuing GET requests and measuring completion latency.
pub struct KvClientNode {
    #[allow(dead_code)] // address kept for symmetry/debugging
    addr: u16,
    server_addr: u16,
    req_bytes: u32,
    sender: MtpSender,
    receiver: MtpReceiver,
    /// Scheduled requests: (time, key).
    schedule: Vec<(Time, u64)>,
    /// Request msg id → key.
    req_keys: HashMap<MsgId, u64>,
    /// Outstanding send times per key (FIFO for repeated keys).
    outstanding: HashMap<u64, VecDeque<Time>>,
    /// Completed requests: (key, latency, answered by cache?).
    pub completions: Vec<(u64, Duration, bool)>,
    /// Reply message id → (key, from_cache), learned from reply data tags.
    reply_src: HashMap<MsgId, (u64, bool)>,
    armed: Option<Time>,
    /// Packets rejected by the integrity check (corrupted in flight).
    pub malformed: u64,
    /// GET request messages submitted so far.
    pub requests_sent: u64,
    /// Registry-mirror shadow for the embedded endpoint counters.
    mirror: EndpointMirror,
}

impl KvClientNode {
    /// A client at `addr` sending `req_bytes` GETs to `server_addr` per the
    /// schedule.
    pub fn new(
        cfg: MtpConfig,
        addr: u16,
        server_addr: u16,
        req_bytes: u32,
        msg_id_base: u64,
        schedule: Vec<(Time, u64)>,
    ) -> KvClientNode {
        KvClientNode {
            addr,
            server_addr,
            req_bytes,
            sender: MtpSender::new(cfg, addr, EntityId(0), msg_id_base),
            receiver: MtpReceiver::new(addr),
            schedule,
            req_keys: HashMap::new(),
            outstanding: HashMap::new(),
            completions: Vec::new(),
            reply_src: HashMap::new(),
            armed: None,
            malformed: 0,
            requests_sent: 0,
            mirror: EndpointMirror::default(),
        }
    }

    /// Completed request count.
    pub fn done(&self) -> usize {
        self.completions.len()
    }

    fn flush_sender(&mut self, ctx: &mut Ctx<'_>, out: Vec<Packet>) {
        for mut pkt in out {
            if let Some(h) = pkt.headers.as_mtp() {
                if h.pkt_type == PktType::Data {
                    if let Some(&key) = self.req_keys.get(&h.msg_id) {
                        pkt.app = Some(AppData::KvGet { key });
                    }
                }
            }
            ctx.send(PortId(0), pkt);
        }
        match self.sender.next_deadline() {
            Some(dl) => {
                if self.armed != Some(dl) {
                    ctx.set_timer_at(dl, TOKEN_RTO);
                    self.armed = Some(dl);
                }
            }
            None => self.armed = None,
        }
    }
}

impl Node for KvClientNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for (idx, &(t, _)) in self.schedule.iter().enumerate() {
            ctx.set_timer_at(t, TOKEN_REQ_BASE + idx as u64);
        }
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _port: PortId, mut pkt: Packet) {
        // Endpoint integrity: drop unverifiable or payload-damaged packets
        // un-ACKed; the replier retransmits.
        if mtp_sim::corrupt::sanitize(&mut pkt).is_err() || pkt.payload_dirty {
            self.malformed += 1;
            ctx.trace_malformed(&pkt, _port);
            mtp_sim::pool::recycle_packet(pkt);
            return;
        }
        let now = ctx.now();
        let app = pkt.app;
        let ecn = pkt.ecn;
        let Headers::Mtp(hdr) = pkt.headers else {
            return;
        };
        match hdr.pkt_type {
            PktType::Ack | PktType::Nack => {
                let mut out = Vec::new();
                self.sender.on_ack(now, &hdr, &mut out);
                self.sender.drain_events(&mut Vec::new());
                self.flush_sender(ctx, out);
            }
            PktType::Data => {
                if let Some(AppData::KvReply { key, from_cache }) = app {
                    self.reply_src.insert(hdr.msg_id, (key, from_cache));
                }
                let (ack, _) = self.receiver.on_data(now, &hdr, ecn);
                ctx.send(PortId(0), ack);
                let mut delivered = Vec::new();
                self.receiver.drain_events(&mut delivered);
                for ev in delivered {
                    let Some((key, from_cache)) = self.reply_src.remove(&ev.id) else {
                        continue;
                    };
                    if let Some(q) = self.outstanding.get_mut(&key) {
                        if let Some(sent) = q.pop_front() {
                            self.completions
                                .push((key, ev.completed.since(sent), from_cache));
                        }
                    }
                }
            }
            PktType::Control => {}
        }
        self.mirror.sync_sender(ctx, &self.sender.stats);
        self.mirror.sync_receiver(ctx, &self.receiver.stats);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        let now = ctx.now();
        if token == TOKEN_RTO {
            self.armed = None;
            let mut out = Vec::new();
            self.sender.on_timer(now, &mut out);
            self.flush_sender(ctx, out);
            self.mirror.sync_sender(ctx, &self.sender.stats);
            return;
        }
        let idx = (token - TOKEN_REQ_BASE) as usize;
        if idx >= self.schedule.len() {
            return;
        }
        let (_, key) = self.schedule[idx];
        let mut out = Vec::new();
        let id = self.sender.send_message(
            self.server_addr,
            self.req_bytes,
            0,
            TrafficClass::BEST_EFFORT,
            now,
            &mut out,
        );
        self.requests_sent += 1;
        self.mirror.on_submit(ctx, 1);
        self.req_keys.insert(id, key);
        self.outstanding.entry(key).or_default().push_back(now);
        self.flush_sender(ctx, out);
        self.mirror.sync_sender(ctx, &self.sender.stats);
    }

    fn audit_counters(&self, out: &mut mtp_sim::NodeAuditCounters) {
        out.malformed += self.malformed;
        out.msgs_submitted += self.requests_sent;
        out.msgs_completed += self.sender.stats.msgs_completed;
        out.timeouts += self.sender.stats.timeouts;
        out.retransmissions += self.sender.stats.retransmissions;
        out.msgs_delivered += self.receiver.stats.msgs_delivered;
        out.goodput_bytes += self.receiver.stats.goodput_bytes;
    }

    fn name(&self) -> &str {
        "kv-client"
    }
}
