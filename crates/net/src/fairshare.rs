//! Per-entity fair-share enforcement on a single shared queue.
//!
//! Paper §5.3 / Fig. 7: per-flow fairness lets a tenant with 8× the flows
//! take 8× the bandwidth. Providing a queue per tenant fixes that but
//! "providing separate queues for entities is expensive". Because every
//! MTP packet identifies its **entity**, a switch can instead enforce the
//! policy at ingress with O(#entities) counters and one shared queue:
//! packets of entities consuming more than their fair share are CE-marked,
//! and the entities' own congestion controllers throttle them.
//!
//! The enforcer runs a fixed epoch. In each epoch it tracks bytes per
//! entity; an entity whose running total exceeds its fair share of the
//! epoch's capacity gets marked. Entities are aged out after an idle
//! period so the fair share adapts to the active set.

use std::collections::HashMap;

use mtp_sim::packet::{Headers, Packet};
use mtp_sim::time::{Bandwidth, Duration, Time};
use mtp_wire::{EcnCodepoint, EntityId};

use crate::switch::IngressPolicy;

/// Fair-share marking enforcer (see module docs).
pub struct FairShareEnforcer {
    /// Shared-link capacity being divided.
    capacity: Bandwidth,
    /// Accounting epoch.
    epoch: Duration,
    /// Fraction of the fair share an entity may use before marking starts.
    /// Kept slightly *below* 1.0 so the aggregate admitted rate stays under
    /// link capacity and the shared queue never builds — enforcer marks are
    /// then the only congestion signal, and an under-share entity is never
    /// collaterally marked by an over-share one.
    headroom: f64,
    epoch_end: Time,
    bytes: HashMap<EntityId, u64>,
    /// Entities seen in the previous epoch (defines the active set).
    active_prev: usize,
    /// Counters.
    pub marks: u64,
}

impl FairShareEnforcer {
    /// An enforcer dividing `capacity` fairly among active entities,
    /// accounting over `epoch`.
    pub fn new(capacity: Bandwidth, epoch: Duration) -> FairShareEnforcer {
        FairShareEnforcer {
            capacity,
            epoch,
            headroom: 0.95,
            epoch_end: Time::ZERO,
            bytes: HashMap::new(),
            active_prev: 1,
            marks: 0,
        }
    }

    /// Override the headroom factor (fraction of fair share admitted
    /// unmarked).
    pub fn with_headroom(mut self, headroom: f64) -> FairShareEnforcer {
        self.headroom = headroom;
        self
    }

    fn budget_per_entity(&self) -> f64 {
        let epoch_bytes = self.capacity.bytes_in(self.epoch) as f64;
        let active = self.bytes.len().max(self.active_prev).max(1);
        epoch_bytes * self.headroom / active as f64
    }

    fn roll_epoch(&mut self, now: Time) {
        while now >= self.epoch_end {
            self.active_prev = self.bytes.values().filter(|&&b| b > 0).count().max(1);
            // Drain each entity's virtual queue by one epoch's fair share
            // rather than clearing it: an entity persistently above its
            // share stays marked until it is genuinely below fair rate
            // (a per-entity virtual-queue AQM).
            let budget = self.budget_per_entity() as u64;
            self.bytes.retain(|_, b| {
                *b = b.saturating_sub(budget);
                *b > 0
            });
            self.epoch_end = Time(self.epoch_end.0 + self.epoch.0);
        }
    }
}

impl IngressPolicy for FairShareEnforcer {
    fn admit(&mut self, now: Time, pkt: &mut Packet) -> bool {
        // Only verified native MTP data is accounted. The hosting switch
        // sanitizes before consulting the policy, so corrupted (Mangled)
        // packets never reach here — but the match is total regardless:
        // anything without a trusted MTP header passes unaccounted rather
        // than risking attribution to the wrong entity.
        let Headers::Mtp(hdr) = &pkt.headers else {
            return true;
        };
        if hdr.pkt_type != mtp_wire::PktType::Data {
            return true;
        }
        self.roll_epoch(now);
        let entity = hdr.entity;
        let e = self.bytes.entry(entity).or_insert(0);
        *e += pkt.wire_len as u64;
        let over = *e as f64 > self.budget_per_entity();
        if over && pkt.ecn.is_ect() && !pkt.ecn.is_ce() {
            pkt.ecn = EcnCodepoint::Ce;
            self.marks += 1;
        }
        true
    }

    fn reset(&mut self) {
        // Device crash: per-entity accounting is volatile. The epoch clock
        // restarts from the next packet's timestamp via roll_epoch.
        self.bytes.clear();
        self.active_prev = 1;
        self.epoch_end = Time::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtp_wire::{MtpHeader, PktType};

    fn pkt(entity: u16, len: u32) -> Packet {
        let hdr = MtpHeader {
            pkt_type: PktType::Data,
            entity: EntityId(entity),
            ..MtpHeader::default()
        };
        Packet::new(Headers::Mtp(mtp_sim::pool::boxed(hdr)), len)
    }

    #[test]
    fn heavy_entity_gets_marked_light_does_not() {
        // 100 Gbps over 10 us = 125 kB per epoch; two entities => ~59 kB
        // budget each (x0.95 headroom).
        let mut f = FairShareEnforcer::new(Bandwidth::from_gbps(100), Duration::from_micros(10));
        let now = Time::ZERO;
        let mut heavy_marked = 0;
        let mut light_marked = 0;
        // Entity 2 sends 8x the bytes of entity 1 in one epoch.
        for i in 0..90 {
            let mut p = pkt(2, 1500);
            assert!(f.admit(now, &mut p));
            if p.ecn.is_ce() {
                heavy_marked += 1;
            }
            if i % 8 == 0 {
                let mut p = pkt(1, 1500);
                assert!(f.admit(now, &mut p));
                if p.ecn.is_ce() {
                    light_marked += 1;
                }
            }
        }
        assert!(
            heavy_marked > 20,
            "heavy entity marked (got {heavy_marked})"
        );
        assert_eq!(
            light_marked, 0,
            "light entity under fair share never marked"
        );
    }

    #[test]
    fn budgets_reset_each_epoch() {
        let mut f = FairShareEnforcer::new(Bandwidth::from_gbps(1), Duration::from_micros(10));
        // 1 Gbps * 10us * 0.95 = 1187 B budget per epoch.
        let t0 = Time::ZERO;
        let mut p1 = pkt(1, 1000);
        f.admit(t0, &mut p1);
        assert!(!p1.ecn.is_ce(), "first packet under budget");
        let mut p2 = pkt(1, 1000);
        f.admit(t0, &mut p2);
        assert!(p2.ecn.is_ce(), "second packet exceeds the epoch budget");
        // Next epoch: fresh budget.
        let t1 = Time::ZERO + Duration::from_micros(20);
        let mut p3 = pkt(1, 1000);
        f.admit(t1, &mut p3);
        assert!(!p3.ecn.is_ce());
    }

    #[test]
    fn non_mtp_traffic_passes_untouched() {
        let mut f = FairShareEnforcer::new(Bandwidth::from_gbps(1), Duration::from_micros(10));
        let mut p = Packet::new(Headers::Raw, 9000);
        assert!(f.admit(Time::ZERO, &mut p));
        assert!(!p.ecn.is_ce());
    }

    #[test]
    fn mangled_traffic_is_neither_accounted_nor_marked() {
        // Defense in depth: the switch drops corrupted packets before the
        // policy runs, but a Mangled header reaching admit() must neither
        // panic nor be charged to any entity.
        let mut f = FairShareEnforcer::new(Bandwidth::from_gbps(1), Duration::from_micros(10));
        let mut p = Packet::new(
            Headers::Mangled {
                proto: mtp_sim::packet::WireProto::Mtp,
                bytes: vec![0xFF; 48],
            },
            1500,
        );
        for _ in 0..100 {
            assert!(f.admit(Time::ZERO, &mut p));
            assert!(!p.ecn.is_ce());
        }
        assert_eq!(f.marks, 0);
    }

    #[test]
    fn acks_are_never_marked() {
        let mut f = FairShareEnforcer::new(Bandwidth::from_gbps(1), Duration::from_micros(10));
        let hdr = MtpHeader {
            pkt_type: PktType::Ack,
            ..MtpHeader::default()
        };
        for _ in 0..100 {
            let mut p = Packet::new(Headers::Mtp(mtp_sim::pool::boxed(hdr.clone())), 60);
            assert!(f.admit(Time::ZERO, &mut p));
            assert!(!p.ecn.is_ce());
        }
    }
}
