//! The switch node: forwarding, pathlet stamping, and ingress policy.
//!
//! A [`SwitchNode`] composes three pluggable pieces:
//!
//! 1. a [`Forwarder`] choosing the egress port for each packet;
//! 2. per-egress [`Stamp`]s that append `(pathlet, TC, feedback)` entries
//!    to MTP data packets as they pass — the network half of pathlet
//!    congestion control (paper §3.1.3). Stamping *grows the packet* by the
//!    entry's wire size, faithfully modelling the header-overhead concern
//!    of paper §4;
//! 3. an optional [`IngressPolicy`] that may mark or drop packets before
//!    forwarding — used by the fair-share enforcer (paper Fig. 7) to apply
//!    per-entity policy on a single shared queue.

use std::collections::HashMap;

use mtp_sim::packet::Packet;
use mtp_sim::time::Time;
use mtp_sim::{Ctx, Node, NodeFault, PortId};
use mtp_wire::{EcnCodepoint, Feedback, PathFeedback, PathletId, PktType, TrafficClass};

use crate::routes::RouteError;

/// Chooses the egress port for each packet.
pub trait Forwarder {
    /// Return the egress port, or a structured [`RouteError`] naming why the
    /// packet is undeliverable (the switch counts each cause and traces the
    /// discard).
    fn route(
        &mut self,
        ctx: &mut Ctx<'_>,
        in_port: PortId,
        pkt: &Packet,
    ) -> Result<PortId, RouteError>;

    /// Drop volatile forwarding state (message pins, committed-byte
    /// accounting, snooped congestion) on a device crash. Static route
    /// tables are configuration, not volatile state, and survive.
    fn reset(&mut self) {}
}

/// What a stamp writes into passing MTP data packets.
#[derive(Debug, Clone, Copy)]
pub enum StampKind {
    /// Identify the pathlet only (`EcnMark { ce: false }`); the IP-level CE
    /// bit set by the egress queue is attributed to it by the receiver.
    Presence,
    /// Report the egress queue depth in bytes (load-aware balancing).
    QueueDepth,
    /// Report an RCP-style explicit rate: the port's capacity divided by
    /// the number of distinct source hosts seen in the last epoch.
    RcpRate {
        /// Egress capacity in Mbit/s.
        capacity_mbps: u32,
        /// Epoch over which active sources are counted.
        epoch: mtp_sim::time::Duration,
    },
    /// Report the packet's queueing delay estimate (queue bytes / rate) in
    /// nanoseconds, for Swift-like delay controllers.
    DelayEstimate {
        /// Egress drain rate used to convert queue bytes to delay.
        rate: mtp_sim::time::Bandwidth,
    },
    /// Aggregated feedback (paper §4: "feedback can be aggregated"): an
    /// EWMA of how often this egress stood at or above its marking
    /// threshold, reported as an `EcnFraction` TLV instead of per-packet
    /// bits — one small value summarising recent congestion.
    EcnFractionEwma {
        /// The egress queue's marking threshold in packets.
        k_pkts: usize,
        /// EWMA gain numerator (gain = num/65536 per packet observed).
        gain_num: u32,
    },
}

/// A per-egress-port pathlet stamp.
#[derive(Debug)]
pub struct Stamp {
    /// The pathlet this egress belongs to.
    pub pathlet: PathletId,
    /// Traffic class the pathlet assigns (pass-through of the packet's own
    /// TC when `None`).
    pub tc: Option<TrafficClass>,
    /// What to report.
    pub kind: StampKind,
    /// RcpRate bookkeeping: active sources this/last epoch.
    rcp_seen: std::collections::HashSet<u16>,
    rcp_active_prev: usize,
    rcp_epoch_end: Time,
    /// EcnFractionEwma bookkeeping: fraction in 1/65535 units.
    fraction_ewma: u32,
}

impl Stamp {
    /// A stamp for `pathlet` reporting `kind`.
    pub fn new(pathlet: PathletId, kind: StampKind) -> Stamp {
        Stamp {
            pathlet,
            tc: None,
            kind,
            rcp_seen: std::collections::HashSet::new(),
            rcp_active_prev: 1,
            rcp_epoch_end: Time::ZERO,
            fraction_ewma: 0,
        }
    }

    /// Override the traffic class the pathlet assigns.
    pub fn with_tc(mut self, tc: TrafficClass) -> Stamp {
        self.tc = Some(tc);
        self
    }

    fn feedback(&mut self, ctx: &Ctx<'_>, port: PortId, pkt: &Packet, now: Time) -> Feedback {
        match self.kind {
            StampKind::Presence => Feedback::EcnMark { ce: false },
            StampKind::QueueDepth => Feedback::QueueDepth {
                bytes: ctx.egress_len_bytes(port) as u32,
            },
            StampKind::RcpRate {
                capacity_mbps,
                epoch,
            } => {
                if now >= self.rcp_epoch_end {
                    self.rcp_active_prev = self.rcp_seen.len().max(1);
                    self.rcp_seen.clear();
                    self.rcp_epoch_end = now + epoch;
                }
                if let Some(src) = crate::routes::src_addr(pkt) {
                    self.rcp_seen.insert(src);
                }
                let active = self.rcp_seen.len().max(self.rcp_active_prev).max(1);
                Feedback::RcpRate {
                    mbps: capacity_mbps / active as u32,
                }
            }
            StampKind::DelayEstimate { rate } => {
                let bytes = ctx.egress_len_bytes(port) as u32;
                let delay = rate.serialize_time(bytes);
                Feedback::Delay {
                    ns: (delay.0 / 1000).min(u32::MAX as u64) as u32,
                }
            }
            StampKind::EcnFractionEwma { k_pkts, gain_num } => {
                let over = ctx.egress_len_pkts(port) >= k_pkts;
                let target: u32 = if over { 65_535 } else { 0 };
                // fraction += gain * (observation - fraction)
                let delta = (target as i64 - self.fraction_ewma as i64) * gain_num as i64 / 65_536;
                self.fraction_ewma = (self.fraction_ewma as i64 + delta).clamp(0, 65_535) as u32;
                Feedback::EcnFraction {
                    fraction: self.fraction_ewma as u16,
                }
            }
        }
    }
}

/// Pre-forwarding packet policy.
pub trait IngressPolicy {
    /// Inspect (and possibly mark) a packet; return `false` to drop it.
    fn admit(&mut self, now: Time, pkt: &mut Packet) -> bool;

    /// Drop volatile accounting (per-entity usage, epoch state) on a
    /// device crash.
    fn reset(&mut self) {}
}

/// Per-switch counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct SwitchStats {
    /// Packets forwarded.
    pub forwarded: u64,
    /// Packets dropped for lack of a route.
    pub no_route: u64,
    /// Packets dropped because they carry no destination address.
    pub no_address: u64,
    /// Packets dropped by the ingress policy.
    pub policy_dropped: u64,
    /// Packets CE-marked by the ingress policy.
    pub policy_marked: u64,
    /// Feedback entries stamped.
    pub stamped: u64,
    /// Packets rejected by the wire-integrity check (corrupted in flight).
    pub malformed: u64,
}

/// Periodic path-advertisement configuration (paper §4, NDP: "end-hosts
/// learn about available paths from the network"). The switch sends a
/// Control packet to each listed host on every tick, carrying one
/// feedback entry per stamped egress — so senders pre-warm their pathlet
/// tables before any data flows.
pub struct AdvertiseCfg {
    /// Advertisement period.
    pub interval: mtp_sim::time::Duration,
    /// Host addresses to advertise to (must be routable by the forwarder).
    pub hosts: Vec<u16>,
}

/// A switch with a pluggable forwarder, per-port pathlet stamps, and an
/// optional ingress policy.
pub struct SwitchNode {
    forwarder: Box<dyn Forwarder>,
    stamps: HashMap<PortId, Stamp>,
    policy: Option<Box<dyn IngressPolicy>>,
    advertise: Option<AdvertiseCfg>,
    /// Counters.
    pub stats: SwitchStats,
    name: String,
}

impl SwitchNode {
    /// A switch using `forwarder`.
    pub fn new(name: impl Into<String>, forwarder: Box<dyn Forwarder>) -> SwitchNode {
        SwitchNode {
            forwarder,
            stamps: HashMap::new(),
            policy: None,
            advertise: None,
            stats: SwitchStats::default(),
            name: name.into(),
        }
    }

    /// Attach a pathlet stamp to an egress port.
    pub fn with_stamp(mut self, port: PortId, stamp: Stamp) -> SwitchNode {
        self.stamps.insert(port, stamp);
        self
    }

    /// Attach an ingress policy.
    pub fn with_policy(mut self, policy: Box<dyn IngressPolicy>) -> SwitchNode {
        self.policy = Some(policy);
        self
    }

    /// Periodically advertise the stamped pathlets to `hosts`.
    pub fn with_path_advertisement(mut self, cfg: AdvertiseCfg) -> SwitchNode {
        self.advertise = Some(cfg);
        self
    }

    /// The pathlet stamped on `port`, if any (used by load balancers to
    /// honor path-exclude lists).
    pub fn stamped_pathlet(&self, port: PortId) -> Option<PathletId> {
        self.stamps.get(&port).map(|s| s.pathlet)
    }
}

impl Node for SwitchNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if let Some(cfg) = &self.advertise {
            ctx.set_timer(cfg.interval, 0);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
        let Some(cfg) = &self.advertise else { return };
        let interval = cfg.interval;
        let hosts = cfg.hosts.clone();
        let now = ctx.now();
        for host in hosts {
            // One feedback entry per stamped egress, reporting its
            // current state.
            let mut entries = Vec::new();
            let ports: Vec<PortId> = self.stamps.keys().copied().collect();
            for port in ports {
                let probe = Packet::new(mtp_sim::Headers::Raw, 0);
                let stamp = self.stamps.get_mut(&port).expect("key just listed");
                let fb = stamp.feedback(ctx, port, &probe, now);
                entries.push(PathFeedback {
                    path: stamp.pathlet,
                    tc: stamp.tc.unwrap_or(TrafficClass::BEST_EFFORT),
                    feedback: fb,
                });
            }
            entries.sort_by_key(|e| (e.path.0, e.tc.0));
            let hdr = mtp_wire::MtpHeader {
                dst_port: host,
                pkt_type: PktType::Control,
                path_feedback: entries,
                ..mtp_wire::MtpHeader::default()
            };
            let wire = hdr.wire_len() as u32;
            let pkt =
                Packet::new(mtp_sim::Headers::Mtp(mtp_sim::pool::boxed(hdr)), wire).without_ect();
            if let Ok(out) = self.forwarder.route(ctx, PortId(usize::MAX >> 1), &pkt) {
                ctx.send(out, pkt);
            } else {
                mtp_sim::pool::recycle_packet(pkt);
            }
        }
        ctx.set_timer(interval, 0);
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_>, in_port: PortId, mut pkt: Packet) {
        // Verify wire integrity before the policy or forwarder trusts any
        // header field: a switch must not route on corrupted bytes.
        if mtp_sim::corrupt::sanitize(&mut pkt).is_err() {
            self.stats.malformed += 1;
            ctx.trace_malformed(&pkt, in_port);
            mtp_sim::pool::recycle_packet(pkt);
            return;
        }
        let now = ctx.now();
        if let Some(policy) = &mut self.policy {
            let was_ce = pkt.ecn.is_ce();
            if !policy.admit(now, &mut pkt) {
                self.stats.policy_dropped += 1;
                ctx.count(mtp_sim::Metric::PktsPolicyDropped, 1);
                return;
            }
            if pkt.ecn.is_ce() && !was_ce {
                self.stats.policy_marked += 1;
            }
        }
        let out_port = match self.forwarder.route(ctx, in_port, &pkt) {
            Ok(port) => port,
            Err(err) => {
                match err {
                    RouteError::NoAddress => self.stats.no_address += 1,
                    RouteError::NoRoute(_) => self.stats.no_route += 1,
                }
                ctx.trace_no_route(&pkt, in_port);
                mtp_sim::pool::recycle_packet(pkt);
                return;
            }
        };
        // Stamp pathlet feedback into MTP data packets leaving this port.
        if let Some(stamp) = self.stamps.get_mut(&out_port) {
            let is_data = pkt
                .headers
                .as_mtp()
                .map(|h| h.pkt_type == PktType::Data)
                .unwrap_or(false);
            if is_data {
                let fb = stamp.feedback(ctx, out_port, &pkt, now);
                let hdr = pkt.headers.as_mtp_mut().expect("checked is_data");
                let entry = PathFeedback {
                    path: stamp.pathlet,
                    tc: stamp.tc.unwrap_or(hdr.tc),
                    feedback: fb,
                };
                if hdr.path_feedback.len() < 255 {
                    pkt.wire_len += entry.wire_len() as u32;
                    let hdr = pkt.headers.as_mtp_mut().expect("mtp");
                    hdr.path_feedback.push(entry);
                    self.stats.stamped += 1;
                }
            }
        }
        self.stats.forwarded += 1;
        ctx.send(out_port, pkt);
    }

    fn on_fault(&mut self, ctx: &mut Ctx<'_>, fault: NodeFault) {
        match fault {
            NodeFault::Crash => {
                // Volatile state dies with the device: message pins and
                // committed-byte accounting in the forwarder, per-entity
                // usage in the ingress policy. Static routes and stamp
                // configuration survive (they model control-plane config).
                self.forwarder.reset();
                if let Some(policy) = &mut self.policy {
                    policy.reset();
                }
            }
            NodeFault::Restart => {
                // The advertisement timer was swallowed while down; re-arm
                // it so senders re-learn this switch's pathlets.
                if let Some(cfg) = &self.advertise {
                    ctx.set_timer(cfg.interval, 0);
                }
            }
        }
    }

    fn audit_counters(&self, out: &mut mtp_sim::NodeAuditCounters) {
        out.malformed += self.stats.malformed;
        // Both route-failure causes are traced (and registry-counted) as
        // no-route discards.
        out.no_route += self.stats.no_route + self.stats.no_address;
        out.policy_dropped += self.stats.policy_dropped;
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// A policy that CE-marks every ECT packet (useful in tests).
#[derive(Debug, Default)]
pub struct MarkAllPolicy;

impl IngressPolicy for MarkAllPolicy {
    fn admit(&mut self, _now: Time, pkt: &mut Packet) -> bool {
        if pkt.ecn.is_ect() {
            pkt.ecn = EcnCodepoint::Ce;
        }
        true
    }
}
