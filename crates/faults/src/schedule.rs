//! Scripted fault schedules.
//!
//! A [`FaultSchedule`] is a plain sorted list of [`FaultEvent`]s — *what*
//! breaks and *when*. It is data, not behaviour: applying a schedule to a
//! running simulation is the [`driver`](crate::driver)'s job. Keeping the
//! two separate makes a failure experiment reproducible by construction:
//! the schedule is built once from constants, and the driver applies each
//! event at an exact virtual time, so the same `(seed, schedule)` pair
//! always yields the same packet-level execution.

use mtp_sim::time::{Bandwidth, Duration, Time};
use mtp_sim::{DirLinkId, LinkFailMode, NodeId};

/// One scripted fault (or repair).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Take a link direction down. [`LinkFailMode::Blackhole`] destroys the
    /// queue and the in-flight packet; [`LinkFailMode::Drain`] finishes
    /// what was already accepted but refuses new offers.
    LinkDown {
        /// The affected link direction.
        link: DirLinkId,
        /// Whether queued packets die or drain.
        mode: LinkFailMode,
    },
    /// Bring a link direction back up.
    LinkUp {
        /// The affected link direction.
        link: DirLinkId,
    },
    /// Change a link direction's rate (applies to future transmissions).
    LinkRate {
        /// The affected link direction.
        link: DirLinkId,
        /// The new rate.
        rate: Bandwidth,
    },
    /// Change a link direction's propagation delay.
    LinkDelay {
        /// The affected link direction.
        link: DirLinkId,
        /// The new one-way delay.
        delay: Duration,
    },
    /// Destroy the next `pkts` packets offered to a link direction
    /// (a corruption burst: the link stays up).
    CorruptBurst {
        /// The affected link direction.
        link: DirLinkId,
        /// How many future offers to destroy.
        pkts: u32,
    },
    /// Flip `flips` random bits in each of the next `pkts` corruptible
    /// packets on a link direction and **deliver the damaged frames**
    /// (unlike [`CorruptBurst`](Self::CorruptBurst), which destroys).
    /// Receivers must detect and reject them via wire integrity checks.
    BitflipBurst {
        /// The affected link direction.
        link: DirLinkId,
        /// How many future corruptible offers to damage.
        pkts: u32,
        /// Bits flipped per packet (keep `<= 3` for guaranteed
        /// header-CRC detection, i.e. exact corruption accounting).
        flips: u8,
        /// Seed for the per-link damage RNG (replays byte-identically).
        seed: u64,
    },
    /// Truncate each of the next `pkts` corruptible packets on a link
    /// direction at a random cut and deliver the shortened frame.
    TruncateBurst {
        /// The affected link direction.
        link: DirLinkId,
        /// How many future corruptible offers to truncate.
        pkts: u32,
        /// Seed for the per-link cut-point RNG.
        seed: u64,
    },
    /// Arm a steady-state bit-flip rate on a link direction: each
    /// corruptible packet is damaged independently with probability
    /// `ppm` per million. `ppm = 0` disarms.
    CorruptRate {
        /// The affected link direction.
        link: DirLinkId,
        /// Corruption probability in packets per million.
        ppm: u32,
        /// Bits flipped per selected packet.
        flips: u8,
        /// Seed for the per-link selection/damage RNG.
        seed: u64,
    },
    /// Crash a node: volatile state reset via its fault hook, pending
    /// deliveries destroyed, timers swallowed, egress flushed.
    NodeCrash {
        /// The crashed node.
        node: NodeId,
    },
    /// Restart a crashed node (its fault hook re-arms timers).
    NodeRestart {
        /// The restarted node.
        node: NodeId,
    },
}

/// A fault at a point in virtual time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// When the fault applies. The driver processes every simulation
    /// event at or before `at` first, then injects the fault.
    pub at: Time,
    /// What happens.
    pub kind: FaultKind,
}

/// An ordered script of faults. Events are kept sorted by time; ties
/// apply in insertion order (the sort is stable), so a schedule built
/// from deterministic inputs replays identically.
#[derive(Debug, Clone, Default)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// An empty schedule.
    pub fn new() -> FaultSchedule {
        FaultSchedule::default()
    }

    /// Append an arbitrary fault event.
    pub fn push(&mut self, at: Time, kind: FaultKind) -> &mut Self {
        self.events.push(FaultEvent { at, kind });
        self
    }

    /// Take one link direction down at `at`.
    pub fn link_down(&mut self, at: Time, link: DirLinkId, mode: LinkFailMode) -> &mut Self {
        self.push(at, FaultKind::LinkDown { link, mode })
    }

    /// Bring one link direction back up at `at`.
    pub fn link_up(&mut self, at: Time, link: DirLinkId) -> &mut Self {
        self.push(at, FaultKind::LinkUp { link })
    }

    /// Cut both directions of a link at `down`, restore both at `up`.
    /// This is the canonical "cable pull" fault.
    pub fn cut_both(
        &mut self,
        fwd: DirLinkId,
        rev: DirLinkId,
        down: Time,
        up: Time,
        mode: LinkFailMode,
    ) -> &mut Self {
        self.link_down(down, fwd, mode)
            .link_down(down, rev, mode)
            .link_up(up, fwd)
            .link_up(up, rev)
    }

    /// Flap both directions of a link: `cycles` repetitions of
    /// (`down_for` dead, `up_for` alive), starting at `from`.
    #[allow(clippy::too_many_arguments)] // a flap is naturally 6 knobs
    pub fn flap(
        &mut self,
        fwd: DirLinkId,
        rev: DirLinkId,
        from: Time,
        down_for: Duration,
        up_for: Duration,
        cycles: u32,
        mode: LinkFailMode,
    ) -> &mut Self {
        let mut t = from;
        for _ in 0..cycles {
            self.cut_both(fwd, rev, t, t + down_for, mode);
            t = t + down_for + up_for;
        }
        self
    }

    /// Degrade a link direction's rate and delay at `at`.
    pub fn degrade(
        &mut self,
        at: Time,
        link: DirLinkId,
        rate: Bandwidth,
        delay: Duration,
    ) -> &mut Self {
        self.push(at, FaultKind::LinkRate { link, rate })
            .push(at, FaultKind::LinkDelay { link, delay })
    }

    /// Destroy the next `pkts` offers to a link direction, starting at `at`.
    pub fn corrupt_burst(&mut self, at: Time, link: DirLinkId, pkts: u32) -> &mut Self {
        self.push(at, FaultKind::CorruptBurst { link, pkts })
    }

    /// Flip `flips` bits in each of the next `pkts` corruptible packets
    /// on a link direction, starting at `at`, delivering the damage.
    pub fn bitflip_burst(
        &mut self,
        at: Time,
        link: DirLinkId,
        pkts: u32,
        flips: u8,
        seed: u64,
    ) -> &mut Self {
        self.push(
            at,
            FaultKind::BitflipBurst {
                link,
                pkts,
                flips,
                seed,
            },
        )
    }

    /// Truncate each of the next `pkts` corruptible packets on a link
    /// direction, starting at `at`, delivering the shortened frames.
    pub fn truncate_burst(&mut self, at: Time, link: DirLinkId, pkts: u32, seed: u64) -> &mut Self {
        self.push(at, FaultKind::TruncateBurst { link, pkts, seed })
    }

    /// Arm (or with `ppm = 0` disarm) a steady-state corruption rate on a
    /// link direction at `at`.
    pub fn corrupt_rate(
        &mut self,
        at: Time,
        link: DirLinkId,
        ppm: u32,
        flips: u8,
        seed: u64,
    ) -> &mut Self {
        self.push(
            at,
            FaultKind::CorruptRate {
                link,
                ppm,
                flips,
                seed,
            },
        )
    }

    /// Crash a node at `down` and restart it at `up`.
    pub fn crash_restart(&mut self, node: NodeId, down: Time, up: Time) -> &mut Self {
        self.push(down, FaultKind::NodeCrash { node })
            .push(up, FaultKind::NodeRestart { node })
    }

    /// Number of scripted events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is scripted.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events, sorted by time (stable: same-time events keep insertion
    /// order).
    pub fn into_sorted(mut self) -> Vec<FaultEvent> {
        self.events.sort_by_key(|e| e.at);
        self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_is_stable_for_ties() {
        let mut s = FaultSchedule::new();
        let t = Time::ZERO + Duration::from_micros(5);
        s.link_down(t, DirLinkId(0), LinkFailMode::Blackhole);
        s.link_down(t, DirLinkId(1), LinkFailMode::Blackhole);
        s.link_down(Time::ZERO, DirLinkId(2), LinkFailMode::Drain);
        let ev = s.into_sorted();
        assert!(matches!(ev[0].kind, FaultKind::LinkDown { link, .. } if link == DirLinkId(2)));
        assert!(matches!(ev[1].kind, FaultKind::LinkDown { link, .. } if link == DirLinkId(0)));
        assert!(matches!(ev[2].kind, FaultKind::LinkDown { link, .. } if link == DirLinkId(1)));
    }

    #[test]
    fn flap_expands_to_paired_cuts() {
        let mut s = FaultSchedule::new();
        s.flap(
            DirLinkId(0),
            DirLinkId(1),
            Time::ZERO,
            Duration::from_micros(100),
            Duration::from_micros(300),
            3,
            LinkFailMode::Blackhole,
        );
        let ev = s.into_sorted();
        assert_eq!(ev.len(), 12, "3 cycles x (2 down + 2 up)");
        assert_eq!(ev.last().expect("events").at, {
            // Third cycle starts at 800 us and is down for 100 us.
            Time::ZERO + Duration::from_micros(900)
        });
    }
}
