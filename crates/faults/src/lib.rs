//! # mtp-faults — deterministic fault injection
//!
//! The paper argues (§2, §4) that a message transport must ride through
//! in-network failures that TCP's connection abstraction cannot: a dead
//! pathlet should cost one failover, not a stalled flow. This crate is
//! the test rig for that claim:
//!
//! * [`schedule`] — scripted fault events (link down/up in blackhole or
//!   drain mode, rate/delay degradation, corruption bursts, node
//!   crash/restart) as plain sorted data;
//! * [`driver`] — replays a schedule against a running [`mtp_sim`]
//!   simulation at exact virtual times, so `(seed, schedule)` determines
//!   the entire packet-level execution — reruns are byte-identical;
//! * [`topo`] — the diamond failure-study topology (two parallel paths)
//!   for MTP and TCP senders, with every link and switch addressable by
//!   fault scripts;
//! * [`ledger`] — the exactly-once delivery ledger every failure
//!   experiment must balance.
//!
//! The endpoint half of the story — loss attribution, feedback-silence
//! detection, quarantine with exponential-backoff re-probe, and in-flight
//! evacuation — lives in `mtp-core` ([`mtp_core::FailoverConfig`]) and is
//! exercised end to end by this crate's fault-matrix tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod ledger;
pub mod schedule;
pub mod topo;

pub use driver::{AppliedFault, FaultDriver};
pub use ledger::Ledger;
pub use schedule::{FaultEvent, FaultKind, FaultSchedule};
pub use topo::{
    build_parallel_paths, diamond_mtp, diamond_tcp, Diamond, LinkSpec, ParallelPaths, PATHLET_A,
    PATHLET_B,
};
