//! The exactly-once delivery ledger.
//!
//! Failure experiments all end with the same question: did every message
//! the application submitted arrive **exactly once**, despite the faults?
//! [`Ledger`] snapshots both ends of an MTP session and checks the full
//! contract: no lost messages, no duplicate deliveries, no phantom
//! deliveries the sender never submitted, and byte totals that agree.

use mtp_core::{MtpSenderNode, MtpSinkNode};
use mtp_sim::{NodeId, Simulator};

/// End-to-end outcome of one MTP session, in deterministic order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ledger {
    /// `(msg_id, bytes)` per sink delivery event, sorted by id.
    pub delivered: Vec<(u64, u32)>,
    /// `(bytes, completed_ps)` per sender schedule entry that finished.
    pub completed: Vec<(u32, u64)>,
    /// Scheduled messages that never completed at the sender.
    pub unfinished: usize,
    /// Sink-side first-copy payload bytes.
    pub goodput: u64,
}

impl Ledger {
    /// Snapshot sender `snd` and sink `sink` from `sim`.
    pub fn capture(sim: &Simulator, snd: NodeId, sink: NodeId) -> Ledger {
        let sender = sim.node_as::<MtpSenderNode>(snd);
        let receiver = sim.node_as::<MtpSinkNode>(sink);
        let mut delivered: Vec<(u64, u32)> = receiver
            .delivered
            .iter()
            .map(|d| (d.id.0, d.bytes))
            .collect();
        delivered.sort_unstable();
        let completed: Vec<(u32, u64)> = sender
            .msgs
            .iter()
            .filter_map(|m| m.completed.map(|c| (m.bytes, c.0)))
            .collect();
        let unfinished = sender.msgs.len() - completed.len();
        Ledger {
            delivered,
            completed,
            unfinished,
            goodput: receiver.total_goodput(),
        }
    }

    /// Check the exactly-once contract for a run where every scheduled
    /// message was expected to finish. Returns one message per violation
    /// (empty means the contract holds) — the non-panicking form the
    /// scenario runner reports as data.
    pub fn check_exactly_once(&self) -> Vec<String> {
        let mut v = Vec::new();
        if self.unfinished != 0 {
            v.push(format!("{} unfinished messages", self.unfinished));
        }
        if self.delivered.len() != self.completed.len() {
            v.push(format!(
                "{} deliveries != {} completions",
                self.delivered.len(),
                self.completed.len()
            ));
        }
        for w in self.delivered.windows(2) {
            if w[0].0 == w[1].0 {
                v.push(format!("duplicate delivery of {}", w[0].0));
            }
        }
        let sent: u64 = self.completed.iter().map(|&(b, _)| b as u64).sum();
        let got: u64 = self.delivered.iter().map(|&(_, b)| b as u64).sum();
        if sent != got {
            v.push(format!(
                "byte totals disagree: sent {sent}, delivered {got}"
            ));
        }
        if self.goodput != got {
            v.push(format!(
                "goodput counts duplicates: goodput {}, delivered {got}",
                self.goodput
            ));
        }
        v
    }

    /// Assert the exactly-once contract for a run where every scheduled
    /// message was expected to finish. Panics with a diagnostic naming
    /// `ctx` on any violation.
    pub fn assert_exactly_once(&self, ctx: &str) {
        let v = self.check_exactly_once();
        assert!(
            v.is_empty(),
            "[{ctx}] exactly-once violated: {}",
            v.join("; ")
        );
    }
}
