//! The fault driver: applies a [`FaultSchedule`] to a running simulation
//! at exact virtual times.
//!
//! ## Determinism contract
//!
//! A fault scripted at time `t` is injected after *every* simulation
//! event with `time <= t` has been processed and before any later event
//! runs. The driver achieves this by interleaving `sim.run_until(t)`
//! with fault application, so the packet-level interleaving of faults
//! and traffic is a pure function of `(simulator seed, schedule)` — two
//! runs produce byte-identical traces, queues, and statistics.

use mtp_sim::time::Time;
use mtp_sim::{LinkFailMode, Simulator};

use crate::schedule::{FaultEvent, FaultKind, FaultSchedule};

/// One fault the driver has already injected (an audit log entry).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppliedFault {
    /// When it was injected.
    pub at: Time,
    /// Human-readable description of what was done.
    pub desc: String,
}

/// Replays a [`FaultSchedule`] against a [`Simulator`].
#[derive(Debug)]
pub struct FaultDriver {
    pending: Vec<FaultEvent>,
    /// Cursor into `pending` (already-applied prefix).
    next: usize,
    /// Audit log of injected faults, in application order.
    pub applied: Vec<AppliedFault>,
}

impl FaultDriver {
    /// A driver for `schedule` (sorted on construction).
    pub fn new(schedule: FaultSchedule) -> FaultDriver {
        FaultDriver {
            pending: schedule.into_sorted(),
            next: 0,
            applied: Vec::new(),
        }
    }

    /// Number of faults not yet injected.
    pub fn remaining(&self) -> usize {
        self.pending.len() - self.next
    }

    /// Advance the simulation to `until`, injecting every scripted fault
    /// whose time has come at its exact instant. Returns `true` if
    /// simulation events remain.
    pub fn run_until(&mut self, sim: &mut Simulator, until: Time) -> bool {
        while self.next < self.pending.len() && self.pending[self.next].at <= until {
            let ev = self.pending[self.next];
            self.next += 1;
            sim.run_until(ev.at);
            let desc = apply(sim, &ev.kind);
            self.applied.push(AppliedFault { at: ev.at, desc });
        }
        sim.run_until(until)
    }
}

/// Inject one fault into the simulator and describe it.
fn apply(sim: &mut Simulator, kind: &FaultKind) -> String {
    match *kind {
        FaultKind::LinkDown { link, mode } => {
            sim.fail_link(link, mode);
            let m = match mode {
                LinkFailMode::Blackhole => "blackhole",
                LinkFailMode::Drain => "drain",
            };
            format!("link {} down ({m})", link.0)
        }
        FaultKind::LinkUp { link } => {
            sim.restore_link(link);
            format!("link {} up", link.0)
        }
        FaultKind::LinkRate { link, rate } => {
            sim.set_link_rate(link, rate);
            format!("link {} rate -> {} bps", link.0, rate.bps())
        }
        FaultKind::LinkDelay { link, delay } => {
            sim.set_link_delay(link, delay);
            format!("link {} delay -> {} ps", link.0, delay.0)
        }
        FaultKind::CorruptBurst { link, pkts } => {
            sim.corrupt_burst(link, pkts);
            format!("link {} corrupting next {pkts} pkts", link.0)
        }
        FaultKind::BitflipBurst {
            link,
            pkts,
            flips,
            seed,
        } => {
            sim.bitflip_burst(link, pkts, flips, seed);
            format!(
                "link {} bit-flipping next {pkts} pkts ({flips} flips, seed {seed})",
                link.0
            )
        }
        FaultKind::TruncateBurst { link, pkts, seed } => {
            sim.truncate_burst(link, pkts, seed);
            format!("link {} truncating next {pkts} pkts (seed {seed})", link.0)
        }
        FaultKind::CorruptRate {
            link,
            ppm,
            flips,
            seed,
        } => {
            sim.set_corrupt_rate(link, ppm, flips, seed);
            format!(
                "link {} corrupt rate -> {ppm} ppm ({flips} flips, seed {seed})",
                link.0
            )
        }
        FaultKind::NodeCrash { node } => {
            sim.crash_node(node);
            format!("node {} crash", node.0)
        }
        FaultKind::NodeRestart { node } => {
            sim.restart_node(node);
            format!("node {} restart", node.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtp_sim::packet::{Headers, Packet};
    use mtp_sim::time::{Bandwidth, Duration};
    use mtp_sim::{Ctx, DirLinkId, Node, PortId};

    /// Sends `n` packets at fixed intervals; counts what comes back.
    struct Metronome {
        n: u32,
        period: Duration,
        got: u32,
    }
    impl Node for Metronome {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            for i in 0..self.n {
                ctx.set_timer(Duration(self.period.0 * i as u64), 0);
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _t: u64) {
            ctx.send(PortId(0), Packet::new(Headers::Raw, 1500));
        }
        fn on_packet(&mut self, _: &mut Ctx<'_>, _: PortId, _: Packet) {
            self.got += 1;
        }
    }

    struct Echo;
    impl Node for Echo {
        fn on_packet(&mut self, ctx: &mut Ctx<'_>, port: PortId, pkt: Packet) {
            ctx.send(port, pkt);
        }
    }

    fn build() -> (Simulator, mtp_sim::NodeId, DirLinkId, DirLinkId) {
        let mut sim = Simulator::new(7);
        let m = sim.add_node(Box::new(Metronome {
            n: 10,
            period: Duration::from_micros(10),
            got: 0,
        }));
        let e = sim.add_node(Box::new(Echo));
        let (fwd, rev) = sim.connect_symmetric(
            m,
            PortId(0),
            e,
            PortId(0),
            Bandwidth::from_gbps(10),
            Duration::from_micros(1),
            64,
        );
        (sim, m, fwd, rev)
    }

    #[test]
    fn outage_window_swallows_exactly_the_scripted_span() {
        // 10 echoes at 10 us spacing; a cut over [24 us, 56 us) kills the
        // packets sent at 30, 40, 50 us and nothing else.
        let (mut sim, m, fwd, rev) = build();
        let mut sched = FaultSchedule::new();
        sched.cut_both(
            fwd,
            rev,
            Time::ZERO + Duration::from_micros(24),
            Time::ZERO + Duration::from_micros(56),
            LinkFailMode::Blackhole,
        );
        let mut drv = FaultDriver::new(sched);
        drv.run_until(&mut sim, Time::ZERO + Duration::from_millis(1));
        assert_eq!(sim.node_as::<Metronome>(m).got, 7);
        assert_eq!(drv.remaining(), 0);
        assert_eq!(drv.applied.len(), 4);
    }

    #[test]
    fn replay_is_byte_identical() {
        let run = || {
            let (mut sim, m, fwd, rev) = build();
            let mut sched = FaultSchedule::new();
            sched.cut_both(
                fwd,
                rev,
                Time::ZERO + Duration::from_micros(24),
                Time::ZERO + Duration::from_micros(56),
                LinkFailMode::Blackhole,
            );
            sched.corrupt_burst(Time::ZERO + Duration::from_micros(70), fwd, 1);
            let mut drv = FaultDriver::new(sched);
            drv.run_until(&mut sim, Time::ZERO + Duration::from_millis(1));
            (
                sim.node_as::<Metronome>(m).got,
                sim.events_processed(),
                sim.link_stats(fwd).faulted_pkts,
                drv.applied,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn faults_apply_after_coincident_events() {
        // A packet transmitted to arrive exactly at the cut instant is
        // delivered: events at `t` run before the fault at `t`.
        let (mut sim, m, fwd, rev) = build();
        // First send at t=0 arrives at 1 us (prop) + 1.2 us (tx) = 2.2 us.
        let arrival = Time::ZERO + Duration(2_200_000 + 1_200_000 + 1_000_000);
        let mut sched = FaultSchedule::new();
        sched.cut_both(fwd, rev, arrival, arrival, LinkFailMode::Blackhole);
        let mut drv = FaultDriver::new(sched);
        drv.run_until(&mut sim, arrival);
        assert_eq!(
            sim.node_as::<Metronome>(m).got,
            1,
            "the coincident echo landed before the cut"
        );
    }
}
