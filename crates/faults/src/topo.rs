//! Failure-study topologies.
//!
//! The canonical shape is a **diamond**: one sender, one sink, and two
//! parallel switch-to-switch paths. It is the smallest topology in which
//! "route around the failure" is even possible, which makes it the right
//! microscope for the MTP-vs-TCP failure comparison: MTP's pathlet
//! machinery can steer messages onto the survivor, while a TCP flow is
//! pinned to whatever path its five-tuple hashes to.
//!
//! Both builders return every directed-link handle so fault schedules
//! can cut, degrade, or corrupt any segment, plus both switch ids for
//! crash/restart scripts. The reverse (ACK) fan-out at the far switch
//! uses per-packet spray so acknowledgements are not themselves pinned
//! to the failed path — otherwise every experiment would measure the
//! ACK path, not the protocol.

use mtp_core::{MtpConfig, MtpSenderNode, MtpSinkNode, ScheduledMsg};
use mtp_net::{FanoutForwarder, Stamp, StampKind, StaticRoutes, Strategy, SwitchNode};
use mtp_sim::time::{Bandwidth, Duration, Time};
use mtp_sim::{DirLinkId, LinkCfg, NodeId, PortId, Simulator};
use mtp_tcp::{TcpConfig, TcpSenderNode, TcpSinkNode, TcpWorkloadMode};
use mtp_wire::{EntityId, PathletId};

/// Sender host address.
pub const CLIENT_ADDR: u16 = 1;
/// Sink host address.
pub const SERVER_ADDR: u16 = 2;
/// Pathlet id stamped on path A.
pub const PATHLET_A: PathletId = PathletId(1);
/// Pathlet id stamped on path B.
pub const PATHLET_B: PathletId = PathletId(2);

/// Link parameters for one segment.
#[derive(Debug, Clone, Copy)]
pub struct LinkSpec {
    /// Link rate.
    pub rate: Bandwidth,
    /// One-way propagation delay.
    pub delay: Duration,
    /// Queue capacity in packets.
    pub cap_pkts: usize,
    /// ECN marking threshold in packets.
    pub ecn_k: usize,
}

impl LinkSpec {
    /// A spec with the standard 128-packet ECN(20) queue.
    pub fn new(rate: Bandwidth, delay: Duration) -> LinkSpec {
        LinkSpec {
            rate,
            delay,
            cap_pkts: 128,
            ecn_k: 20,
        }
    }

    /// The default inter-switch path: 10 Gbps, 5 us.
    pub fn path_default() -> LinkSpec {
        LinkSpec::new(Bandwidth::from_gbps(10), Duration::from_micros(5))
    }

    /// The default host NIC: 100 Gbps, 1 us.
    pub fn host_default() -> LinkSpec {
        LinkSpec::new(Bandwidth::from_gbps(100), Duration::from_micros(1))
    }

    /// The link configuration this spec describes.
    pub fn link_cfg(&self) -> LinkCfg {
        LinkCfg::ecn(self.rate, self.delay, self.cap_pkts, self.ecn_k)
    }
}

/// Handles to a built two-parallel-path core (sender — sw1 ═ sw2 — sink).
pub struct ParallelPaths {
    /// Near switch (fans data over the two paths).
    pub sw1: NodeId,
    /// Far switch (fans ACKs back).
    pub sw2: NodeId,
    /// Path A, sw1 -> sw2.
    pub a_fwd: DirLinkId,
    /// Path A, sw2 -> sw1.
    pub a_rev: DirLinkId,
    /// Path B, sw1 -> sw2.
    pub b_fwd: DirLinkId,
    /// Path B, sw2 -> sw1.
    pub b_rev: DirLinkId,
}

/// Wire the canonical two-parallel-path core between an existing `sender`
/// and `sink`: sw1 fans client traffic over both paths with `forward`,
/// sw2 fans server traffic back with `reverse`. With `stamp`, sw1 marks
/// path A as [`PATHLET_A`] and path B as [`PATHLET_B`]. This is the one
/// builder behind both the failure-study diamond and the bench two-path
/// topology; node and link creation order is part of its contract, since
/// golden digests depend on it.
#[allow(clippy::too_many_arguments)] // topology knobs are clearer positionally
pub fn build_parallel_paths(
    sim: &mut Simulator,
    sender: NodeId,
    sink: NodeId,
    forward: Strategy,
    reverse: Strategy,
    a: LinkSpec,
    b: LinkSpec,
    host: LinkSpec,
    stamp: bool,
) -> ParallelPaths {
    let mut sw1 = SwitchNode::new(
        "sw1",
        Box::new(FanoutForwarder::new(
            StaticRoutes::new().add(CLIENT_ADDR, PortId(0)),
            vec![PortId(1), PortId(2)],
            forward,
        )),
    );
    if stamp {
        sw1 = sw1
            .with_stamp(PortId(1), Stamp::new(PATHLET_A, StampKind::Presence))
            .with_stamp(PortId(2), Stamp::new(PATHLET_B, StampKind::Presence));
    }
    let sw1 = sim.add_node(Box::new(sw1));
    let sw2 = sim.add_node(Box::new(SwitchNode::new(
        "sw2",
        Box::new(FanoutForwarder::new(
            StaticRoutes::new().add(SERVER_ADDR, PortId(0)),
            vec![PortId(1), PortId(2)],
            reverse,
        )),
    )));
    sim.connect(
        sender,
        PortId(0),
        sw1,
        PortId(0),
        host.link_cfg(),
        host.link_cfg(),
    );
    let (a_fwd, a_rev) = sim.connect(sw1, PortId(1), sw2, PortId(1), a.link_cfg(), a.link_cfg());
    let (b_fwd, b_rev) = sim.connect(sw1, PortId(2), sw2, PortId(2), b.link_cfg(), b.link_cfg());
    sim.connect(
        sw2,
        PortId(0),
        sink,
        PortId(0),
        host.link_cfg(),
        host.link_cfg(),
    );
    ParallelPaths {
        sw1,
        sw2,
        a_fwd,
        a_rev,
        b_fwd,
        b_rev,
    }
}

/// Handle to a built diamond, with every fault-injectable element named.
pub struct Diamond {
    /// The simulator.
    pub sim: Simulator,
    /// The sending host.
    pub sender: NodeId,
    /// The receiving host.
    pub sink: NodeId,
    /// Near switch (fans data over the two paths).
    pub sw1: NodeId,
    /// Far switch (sprays ACKs back over the two paths).
    pub sw2: NodeId,
    /// Path A, sw1 -> sw2.
    pub a_fwd: DirLinkId,
    /// Path A, sw2 -> sw1.
    pub a_rev: DirLinkId,
    /// Path B, sw1 -> sw2.
    pub b_fwd: DirLinkId,
    /// Path B, sw2 -> sw1.
    pub b_rev: DirLinkId,
}

fn build_diamond(
    sim: &mut Simulator,
    sender: NodeId,
    sink: NodeId,
    forward: Strategy,
    path: LinkSpec,
    host: LinkSpec,
    stamp: bool,
) -> (NodeId, NodeId, [DirLinkId; 4]) {
    // ACKs return over whichever path is alive: per-packet spray, so a
    // single-path cut never silences the reverse channel entirely.
    let p = build_parallel_paths(
        sim,
        sender,
        sink,
        forward,
        Strategy::Spray { next: 0 },
        path,
        path,
        host,
        stamp,
    );
    (p.sw1, p.sw2, [p.a_fwd, p.a_rev, p.b_fwd, p.b_rev])
}

/// Build the diamond with an MTP sender/sink. `sw1` runs the message-aware
/// load balancer (which honors the sender's pathlet exclusions) and stamps
/// path A as pathlet 1, path B as pathlet 2.
pub fn diamond_mtp(
    seed: u64,
    cfg: MtpConfig,
    schedule: Vec<ScheduledMsg>,
    path: LinkSpec,
) -> Diamond {
    let mut sim = Simulator::new(seed);
    let sender = sim.add_node(Box::new(MtpSenderNode::new(
        cfg,
        CLIENT_ADDR,
        SERVER_ADDR,
        EntityId(0),
        1 << 40,
        schedule,
    )));
    // ACKs return via per-packet spray, so a reverse-path cut kills every
    // other ACK for the whole outage; SACK redundancy lets the survivors
    // cover for the casualties instead of stranding packets until an RTO.
    let sink = sim.add_node(Box::new(
        MtpSinkNode::new(SERVER_ADDR, Duration::from_micros(100)).with_sack_redundancy(8),
    ));
    let strategy = Strategy::mtp_lb(2, vec![Some(PATHLET_A), Some(PATHLET_B)]);
    let (sw1, sw2, links) = build_diamond(
        &mut sim,
        sender,
        sink,
        strategy,
        path,
        LinkSpec::host_default(),
        true,
    );
    Diamond {
        sim,
        sender,
        sink,
        sw1,
        sw2,
        a_fwd: links[0],
        a_rev: links[1],
        b_fwd: links[2],
        b_rev: links[3],
    }
}

/// Build the diamond with a TCP sender/sink. The forward fan is fixed on
/// path A — the deterministic stand-in for ECMP's behaviour, where a flow
/// hashes onto one path and stays there. That pinning is exactly the
/// failure-response handicap the study measures: TCP cannot re-steer
/// mid-flow, so cutting path A stalls it.
pub fn diamond_tcp(
    seed: u64,
    cfg: TcpConfig,
    mode: TcpWorkloadMode,
    schedule: Vec<(Time, u64)>,
    path: LinkSpec,
) -> Diamond {
    let mut sim = Simulator::new(seed);
    let sender = sim.add_node(Box::new(TcpSenderNode::with_addrs(
        cfg.clone(),
        mode,
        100,
        schedule,
        CLIENT_ADDR,
        SERVER_ADDR,
    )));
    let sink = sim.add_node(Box::new(TcpSinkNode::new(cfg, Duration::from_micros(100))));
    let (sw1, sw2, links) = build_diamond(
        &mut sim,
        sender,
        sink,
        Strategy::Fixed,
        path,
        LinkSpec::host_default(),
        false,
    );
    Diamond {
        sim,
        sender,
        sink,
        sw1,
        sw2,
        a_fwd: links[0],
        a_rev: links[1],
        b_fwd: links[2],
        b_rev: links[3],
    }
}
