//! Property: under **any** single-link failure — any one of the four
//! directed path segments, blackhole or drain, cut at any moment during
//! the workload, never repaired — an MTP sender with failover enabled and
//! at least two pathlets alive completes every message exactly once.

use mtp_core::{MtpConfig, MtpSenderNode, ScheduledMsg};
use mtp_faults::{diamond_mtp, FaultDriver, FaultSchedule, Ledger, LinkSpec};
use mtp_sim::time::{Duration, Time};
use mtp_sim::LinkFailMode;
use proptest::prelude::*;

fn us(n: u64) -> Time {
    Time::ZERO + Duration::from_micros(n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn any_single_link_failure_preserves_exactly_once(
        which in 0usize..4,
        cut_us in 20u64..2_000,
        blackhole in any::<bool>(),
        seed in 1u64..1_000,
        bulk_kb in 20u32..120,
    ) {
        let schedule: Vec<ScheduledMsg> = (0..6)
            .map(|i| ScheduledMsg::new(us(150 * i), bulk_kb * 1_000 + 777 * i as u32))
            .collect();
        let mut d = diamond_mtp(
            seed,
            MtpConfig::default().with_failover(),
            schedule,
            LinkSpec::path_default(),
        );
        let link = [d.a_fwd, d.a_rev, d.b_fwd, d.b_rev][which];
        let mode = if blackhole {
            LinkFailMode::Blackhole
        } else {
            LinkFailMode::Drain
        };
        let mut sched = FaultSchedule::new();
        sched.link_down(us(cut_us), link, mode);
        let mut drv = FaultDriver::new(sched);
        drv.run_until(&mut d.sim, us(200_000));
        mtp_sim::assert_conservation(&d.sim);
        let unfinished = d
            .sim
            .node_as::<MtpSenderNode>(d.sender)
            .msgs
            .iter()
            .filter(|m| m.completed.is_none())
            .count();
        prop_assert_eq!(
            unfinished, 0,
            "link {:?} cut at {}us ({:?}) wedged the session", link, cut_us, mode
        );
        let ledger = Ledger::capture(&d.sim, d.sender, d.sink);
        ledger.assert_exactly_once("single-link-property");
    }
}
