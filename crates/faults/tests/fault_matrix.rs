//! The fault matrix: (fault type x timing x seed) sweeps over the diamond
//! topology, each cell checked against the exactly-once delivery ledger
//! and against a deterministic replay of itself.
//!
//! Fault types: link blackhole, link drain, far-switch crash/restart,
//! pathlet flap, rate/delay degradation with a corruption burst.
//! Timings: early (mid-slow-start) and mid-transfer. Seeds: three per
//! cell, also varying the message mix.

use mtp_core::{MtpConfig, MtpSenderNode, ScheduledMsg};
use mtp_faults::{diamond_mtp, Diamond, FaultDriver, FaultSchedule, Ledger, LinkSpec};
use mtp_sim::time::{Bandwidth, Duration, Time};
use mtp_sim::LinkFailMode;

const SEEDS: [u64; 3] = [1, 2, 3];

fn us(n: u64) -> Time {
    Time::ZERO + Duration::from_micros(n)
}

/// A mixed workload: a few bulk messages plus a tail of small ones, all
/// submitted inside the first 1.5 ms so every fault timing overlaps
/// live traffic. Seed-dependent sizes keep cells from sharing a trace.
fn workload(seed: u64) -> Vec<ScheduledMsg> {
    let mut sched = Vec::new();
    for i in 0..4 {
        sched.push(ScheduledMsg::new(
            us(20 * i),
            200_000 + 10_000 * ((seed + i) % 3) as u32,
        ));
    }
    for i in 0..12 {
        sched.push(ScheduledMsg::new(
            us(100 + 120 * i),
            2_000 + 500 * ((seed + i) % 4) as u32,
        ));
    }
    sched
}

fn mtp_diamond(seed: u64) -> Diamond {
    diamond_mtp(
        seed,
        MtpConfig::default().with_failover(),
        workload(seed),
        LinkSpec::path_default(),
    )
}

/// Run `schedule` against a fresh diamond and balance the ledger.
fn run_cell(seed: u64, ctx: &str, build: impl Fn(&Diamond) -> FaultSchedule) -> Ledger {
    let mut d = mtp_diamond(seed);
    let sched = build(&d);
    let mut drv = FaultDriver::new(sched);
    drv.run_until(&mut d.sim, us(100_000));
    assert_eq!(drv.remaining(), 0, "[{ctx}] faults left unapplied");
    mtp_sim::assert_conservation(&d.sim);
    let ledger = Ledger::capture(&d.sim, d.sender, d.sink);
    ledger.assert_exactly_once(ctx);
    ledger
}

/// Same cell twice: the ledger (ids, byte counts, completion timestamps)
/// must replay exactly.
fn run_cell_replayed(seed: u64, ctx: &str, build: impl Fn(&Diamond) -> FaultSchedule) {
    let a = run_cell(seed, ctx, &build);
    let b = run_cell(seed, ctx, &build);
    assert_eq!(a, b, "[{ctx}] replay diverged");
}

#[test]
fn link_blackhole_early_and_mid() {
    for &seed in &SEEDS {
        for (tag, down, up) in [("early", 60, 2_060), ("mid", 400, 2_400)] {
            run_cell_replayed(seed, &format!("blackhole/{tag}/s{seed}"), |d| {
                let mut s = FaultSchedule::new();
                s.cut_both(d.a_fwd, d.a_rev, us(down), us(up), LinkFailMode::Blackhole);
                s
            });
        }
    }
}

#[test]
fn link_drain_early_and_mid() {
    for &seed in &SEEDS {
        for (tag, down, up) in [("early", 60, 2_060), ("mid", 400, 2_400)] {
            run_cell_replayed(seed, &format!("drain/{tag}/s{seed}"), |d| {
                let mut s = FaultSchedule::new();
                s.cut_both(d.a_fwd, d.a_rev, us(down), us(up), LinkFailMode::Drain);
                s
            });
        }
    }
}

#[test]
fn far_switch_crash_and_restart() {
    for &seed in &SEEDS {
        for (tag, down, up) in [("early", 60, 1_060), ("mid", 400, 1_400)] {
            run_cell_replayed(seed, &format!("crash/{tag}/s{seed}"), |d| {
                let mut s = FaultSchedule::new();
                s.crash_restart(d.sw2, us(down), us(up));
                s
            });
        }
    }
}

#[test]
fn near_switch_crash_and_restart() {
    // sw1 is on the only path from the sender: while it is down nothing
    // flows at all, so this cell checks pure outage recovery rather than
    // failover.
    for &seed in &SEEDS {
        run_cell_replayed(seed, &format!("crash-sw1/s{seed}"), |d| {
            let mut s = FaultSchedule::new();
            s.crash_restart(d.sw1, us(300), us(1_300));
            s
        });
    }
}

#[test]
fn pathlet_flap() {
    for &seed in &SEEDS {
        run_cell_replayed(seed, &format!("flap/s{seed}"), |d| {
            let mut s = FaultSchedule::new();
            s.flap(
                d.a_fwd,
                d.a_rev,
                us(100),
                Duration::from_micros(400),
                Duration::from_micros(600),
                3,
                LinkFailMode::Blackhole,
            );
            s
        });
    }
}

#[test]
fn degradation_and_corruption_burst() {
    for &seed in &SEEDS {
        run_cell_replayed(seed, &format!("degrade/s{seed}"), |d| {
            let mut s = FaultSchedule::new();
            // Path A falls to 1 Gbps with 50 us delay, eats a burst of
            // corrupted packets, then recovers.
            s.degrade(
                us(150),
                d.a_fwd,
                Bandwidth::from_gbps(1),
                Duration::from_micros(50),
            );
            s.corrupt_burst(us(200), d.a_fwd, 8);
            s.degrade(
                us(2_150),
                d.a_fwd,
                Bandwidth::from_gbps(10),
                Duration::from_micros(5),
            );
            s
        });
    }
}

/// Everything a corruption cell must account for: the delivery ledger,
/// how many frames the links damaged, and who detected each of them.
#[derive(Debug, PartialEq)]
struct CorruptionAudit {
    ledger: Ledger,
    corrupted: u64,
    /// (sender, sink, sw1, sw2, engine-destroyed) malformed counts.
    detected: [u64; 5],
}

/// Run a corruption schedule and close the books: exactly-once delivery,
/// and every link-damaged frame detected by exactly one device (or
/// destroyed by the engine before any device saw it — queue overflow,
/// crashed-node delivery).
fn run_corruption_cell(
    seed: u64,
    ctx: &str,
    build: impl Fn(&Diamond) -> FaultSchedule,
) -> CorruptionAudit {
    let mut d = mtp_diamond(seed);
    let sched = build(&d);
    let mut drv = FaultDriver::new(sched);
    drv.run_until(&mut d.sim, us(100_000));
    assert_eq!(drv.remaining(), 0, "[{ctx}] faults left unapplied");
    mtp_sim::assert_conservation(&d.sim);
    let ledger = Ledger::capture(&d.sim, d.sender, d.sink);
    ledger.assert_exactly_once(ctx);
    let corrupted: u64 = [d.a_fwd, d.a_rev, d.b_fwd, d.b_rev]
        .iter()
        .map(|&l| d.sim.link_stats(l).corrupted_pkts)
        .sum();
    assert!(corrupted > 0, "[{ctx}] the storm never damaged a frame");
    let detected = [
        d.sim.node_as::<MtpSenderNode>(d.sender).malformed,
        d.sim.node_as::<mtp_core::MtpSinkNode>(d.sink).malformed,
        d.sim.node_as::<mtp_net::SwitchNode>(d.sw1).stats.malformed,
        d.sim.node_as::<mtp_net::SwitchNode>(d.sw2).stats.malformed,
        d.sim.corrupted_destroyed(),
    ];
    assert_eq!(
        detected.iter().sum::<u64>(),
        corrupted,
        "[{ctx}] damaged frames unaccounted for (detected {detected:?})"
    );
    CorruptionAudit {
        ledger,
        corrupted,
        detected,
    }
}

fn run_corruption_cell_replayed(seed: u64, ctx: &str, build: impl Fn(&Diamond) -> FaultSchedule) {
    let a = run_corruption_cell(seed, ctx, &build);
    let b = run_corruption_cell(seed, ctx, &build);
    assert_eq!(a, b, "[{ctx}] replay diverged");
}

#[test]
fn bitflip_storm_early_and_mid() {
    // Damaged frames are *delivered*, not destroyed: receivers must reject
    // them on the header CRC and recover by retransmission. Flips stay at
    // <= 3 bits so detection — and therefore the audit — is guaranteed.
    for &seed in &SEEDS {
        for (tag, at) in [("early", 60u64), ("mid", 400)] {
            run_corruption_cell_replayed(seed, &format!("bitflip/{tag}/s{seed}"), |d| {
                let mut s = FaultSchedule::new();
                s.bitflip_burst(us(at), d.a_fwd, 20, 3, seed ^ 0xB17);
                s.bitflip_burst(us(at + 50), d.b_fwd, 20, 1, seed ^ 0xB18);
                s.bitflip_burst(us(at + 100), d.a_rev, 12, 2, seed ^ 0xB19);
                s
            });
        }
    }
}

#[test]
fn truncation_storm() {
    for &seed in &SEEDS {
        run_corruption_cell_replayed(seed, &format!("truncate/s{seed}"), |d| {
            let mut s = FaultSchedule::new();
            s.truncate_burst(us(120), d.a_fwd, 16, seed ^ 0x7C);
            s.truncate_burst(us(300), d.b_rev, 8, seed ^ 0x7D);
            s
        });
    }
}

#[test]
fn steady_corruption_rate() {
    // A lossy span: for 3 ms both forward paths flip <=2 bits in a few
    // percent of frames (both, so failover cannot sidestep the storm),
    // then the links heal.
    for &seed in &SEEDS {
        run_corruption_cell_replayed(seed, &format!("rate/s{seed}"), |d| {
            let mut s = FaultSchedule::new();
            s.corrupt_rate(us(100), d.a_fwd, 50_000, 2, seed ^ 0x5EED);
            s.corrupt_rate(us(100), d.b_fwd, 30_000, 2, seed ^ 0x5EEE);
            s.corrupt_rate(us(3_100), d.a_fwd, 0, 0, 0);
            s.corrupt_rate(us(3_100), d.b_fwd, 0, 0, 0);
            s
        });
    }
}

#[test]
fn corruption_on_top_of_failover() {
    // The combined stress: path A is bit-flipping while path B blackholes
    // mid-transfer, so the sender is simultaneously rejecting damaged
    // frames and failing over. Exactly-once must still hold.
    for &seed in &SEEDS {
        run_corruption_cell_replayed(seed, &format!("combo/s{seed}"), |d| {
            let mut s = FaultSchedule::new();
            s.corrupt_rate(us(100), d.a_fwd, 30_000, 3, seed ^ 0xC0);
            s.cut_both(
                d.b_fwd,
                d.b_rev,
                us(400),
                us(2_400),
                LinkFailMode::Blackhole,
            );
            s.corrupt_rate(us(5_000), d.a_fwd, 0, 0, 0);
            s
        });
    }
}

#[test]
fn permanent_single_path_loss_still_completes() {
    // The survivor carries everything: path A never comes back.
    for &seed in &SEEDS {
        let ledger = run_cell(seed, &format!("permanent/s{seed}"), |d| {
            let mut s = FaultSchedule::new();
            s.link_down(us(250), d.a_fwd, LinkFailMode::Blackhole);
            s.link_down(us(250), d.a_rev, LinkFailMode::Blackhole);
            s
        });
        assert!(
            !ledger.completed.is_empty(),
            "workload actually ran (seed {seed})"
        );
    }
}

#[test]
fn failover_machinery_actually_engaged() {
    // Sanity for the whole matrix: a mid-transfer blackhole must drive
    // the sender's quarantine path, not just its generic RTO path.
    let mut d = mtp_diamond(1);
    let mut s = FaultSchedule::new();
    s.cut_both(
        d.a_fwd,
        d.a_rev,
        us(400),
        us(2_400),
        LinkFailMode::Blackhole,
    );
    let mut drv = FaultDriver::new(s);
    drv.run_until(&mut d.sim, us(100_000));
    mtp_sim::assert_conservation(&d.sim);
    let stats = &d.sim.node_as::<MtpSenderNode>(d.sender).sender.stats;
    assert!(stats.quarantines > 0, "no pathlet was quarantined");
    assert!(
        stats.quarantines >= stats.failovers,
        "failovers only happen via quarantine"
    );
    Ledger::capture(&d.sim, d.sender, d.sink).assert_exactly_once("engaged");
}
