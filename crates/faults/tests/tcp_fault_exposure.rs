//! The TCP half of the failure study: a flow pinned to one diamond path
//! (the deterministic stand-in for ECMP hashing) stalls for the whole
//! outage when that path is cut, while an MTP sender over the same
//! topology and fault schedule keeps completing messages on the survivor.

use mtp_core::{MtpConfig, MtpSenderNode, ScheduledMsg};
use mtp_faults::{diamond_mtp, diamond_tcp, FaultDriver, FaultSchedule, LinkSpec};
use mtp_sim::time::{Duration, Time};
use mtp_sim::LinkFailMode;
use mtp_tcp::{TcpConfig, TcpSenderNode, TcpWorkloadMode};

fn us(n: u64) -> Time {
    Time::ZERO + Duration::from_micros(n)
}

/// Eight 50 KB messages submitted every 100 us; the cut lands mid-workload.
const MSG_BYTES: u64 = 50_000;
const N_MSGS: u64 = 8;

// Path A (both directions) is cut over [300 us, 5.3 ms).
const OUTAGE_START_US: u64 = 300;
const OUTAGE_END_US: u64 = 5_300;

#[test]
fn tcp_pinned_flow_stalls_for_the_whole_outage() {
    let schedule: Vec<(Time, u64)> = (0..N_MSGS).map(|i| (us(100 * i), MSG_BYTES)).collect();
    let mut d = diamond_tcp(
        7,
        TcpConfig::default(),
        TcpWorkloadMode::Persistent,
        schedule,
        LinkSpec::path_default(),
    );
    let mut sched = FaultSchedule::new();
    sched.cut_both(
        d.a_fwd,
        d.a_rev,
        us(OUTAGE_START_US),
        us(OUTAGE_END_US),
        LinkFailMode::Blackhole,
    );
    let mut drv = FaultDriver::new(sched);
    drv.run_until(&mut d.sim, us(60_000));
    mtp_sim::assert_conservation(&d.sim);

    let snd = d.sim.node_as::<TcpSenderNode>(d.sender);
    assert!(snd.all_done(), "TCP never recovered after the restore");
    // The fault signature of a pinned flow: nothing completes inside the
    // outage (path B is idle and healthy the whole time, but the flow
    // cannot move to it), and RTOs pile up until the path comes back.
    let during = snd
        .msgs
        .iter()
        .filter_map(|m| m.completed)
        .filter(|&t| t > us(OUTAGE_START_US) && t < us(OUTAGE_END_US))
        .count();
    assert_eq!(during, 0, "a pinned TCP flow completed messages mid-outage");
    assert!(snd.timeouts() >= 2, "expected RTOs during the blackhole");
    // And it does recover: the first post-restore completion comes within
    // a few RTOs of the link returning, not at the end of the run.
    let first_after = snd
        .msgs
        .iter()
        .filter_map(|m| m.completed)
        .filter(|&t| t >= us(OUTAGE_END_US))
        .min()
        .expect("no completion after restore");
    assert!(
        first_after < us(40_000),
        "recovery took implausibly long: {first_after:?}"
    );
}

#[test]
fn mtp_failover_completes_messages_inside_the_same_outage() {
    let schedule: Vec<ScheduledMsg> = (0..N_MSGS)
        .map(|i| ScheduledMsg::new(us(100 * i), MSG_BYTES as u32))
        .collect();
    let mut d = diamond_mtp(
        7,
        MtpConfig::default().with_failover(),
        schedule,
        LinkSpec::path_default(),
    );
    let mut sched = FaultSchedule::new();
    sched.cut_both(
        d.a_fwd,
        d.a_rev,
        us(OUTAGE_START_US),
        us(OUTAGE_END_US),
        LinkFailMode::Blackhole,
    );
    let mut drv = FaultDriver::new(sched);
    drv.run_until(&mut d.sim, us(60_000));
    mtp_sim::assert_conservation(&d.sim);

    let snd = d.sim.node_as::<MtpSenderNode>(d.sender);
    assert!(snd.all_done(), "MTP failed to complete through the outage");
    let during = snd
        .msgs
        .iter()
        .filter_map(|m| m.completed)
        .filter(|&t| t > us(OUTAGE_START_US) && t < us(OUTAGE_END_US))
        .count();
    assert!(
        during > 0,
        "MTP should keep completing messages on the surviving path mid-outage"
    );
}
