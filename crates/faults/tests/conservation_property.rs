//! Property: on a random diamond workload under a random fault schedule —
//! cuts, drains, corruption bursts, and switch crash/restart landing at
//! arbitrary times — the engine's packet-conservation audit holds, and the
//! telemetry snapshot is a pure function of the seed: running the same
//! cell twice produces byte-identical counters, gauges, and histograms.

use mtp_core::{MtpConfig, ScheduledMsg};
use mtp_faults::{diamond_mtp, FaultDriver, FaultSchedule, LinkSpec};
use mtp_sim::time::{Duration, Time};
use mtp_sim::LinkFailMode;
use proptest::prelude::*;

fn us(n: u64) -> Time {
    Time::ZERO + Duration::from_micros(n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn conservation_and_replay_under_random_faults(
        seed in 1u64..10_000,
        n_msgs in 1u64..8,
        msg_kb in 1u32..60,
        faults in prop::collection::vec((0u8..6, 20u64..4_000, any::<u8>()), 0..8),
    ) {
        let run = || {
            let schedule: Vec<ScheduledMsg> = (0..n_msgs)
                .map(|i| ScheduledMsg::new(us(120 * i), msg_kb * 1_000 + 13 * i as u32))
                .collect();
            let mut d = diamond_mtp(
                seed,
                MtpConfig::default().with_failover(),
                schedule,
                LinkSpec::path_default(),
            );
            let links = [d.a_fwd, d.a_rev, d.b_fwd, d.b_rev];
            let mut sched = FaultSchedule::new();
            for (i, &(kind, at, pick)) in faults.iter().enumerate() {
                let link = links[pick as usize % links.len()];
                match kind {
                    0 => {
                        sched.link_down(us(at), link, LinkFailMode::Blackhole);
                        sched.link_up(us(at + 500), link);
                    }
                    1 => {
                        sched.link_down(us(at), link, LinkFailMode::Drain);
                        sched.link_up(us(at + 500), link);
                    }
                    2 => {
                        sched.bitflip_burst(us(at), link, 4, 2, 0x1000 + i as u64);
                    }
                    3 => {
                        sched.truncate_burst(us(at), link, 3, 0x2000 + i as u64);
                    }
                    4 => {
                        sched.crash_restart(d.sw2, us(at), us(at + 400));
                    }
                    _ => {
                        sched.corrupt_burst(us(at), link, 2);
                    }
                }
            }
            let mut drv = FaultDriver::new(sched);
            drv.run_until(&mut d.sim, us(200_000));
            assert_eq!(drv.remaining(), 0, "faults left unapplied");
            mtp_sim::assert_conservation(&d.sim);
            d.sim.snapshot()
        };
        let (a, b) = (run(), run());
        prop_assert_eq!(
            a.digest(),
            b.digest(),
            "telemetry snapshot not replay-stable at seed {}:\n{}",
            seed,
            a.diff(&b)
        );
    }
}
