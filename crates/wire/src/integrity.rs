//! Wire-level integrity primitives: the header CRC and payload checksum.
//!
//! MTP's premise is that *in-network devices* parse and mutate transport
//! headers in flight, which makes every switch, proxy, cache, and load
//! balancer a decoder exposed to whatever bytes the physical network hands
//! it. A corrupted credit or feedback TLV that parses "successfully" would
//! poison a pathlet window or a cache entry, so a device must be able to
//! verify a header *before* trusting any field in it.
//!
//! Two checks cover a packet:
//!
//! * a **header CRC** — CRC-16/CCITT-FALSE over the entire encoded header
//!   (fixed portion + all variable sections) carried in the two formerly
//!   reserved bytes 42–43, with byte 41 holding the integrity-flags byte.
//!   CRC-16/CCITT has Hamming distance 4 for messages up to 32 751 bits, so
//!   *every* corruption of up to 3 bits inside a header (far larger than any
//!   header this workspace emits) is guaranteed detected, not just
//!   probabilistically;
//! * a **payload checksum** — CRC-32 (IEEE) carried in a 4-byte trailer
//!   after the header. Payload *bytes* are not simulated, so the checksum
//!   covers the payload's wire descriptor (`msg_id`, `pkt_num`,
//!   `pkt_offset`, `pkt_len`); the simulator separately marks packets whose
//!   simulated payload region took a hit, and receivers treat that exactly
//!   as a real checksum failure (drop, no ACK, recover via loss recovery).
//!
//! The sealed forms are strictly additive: legacy `emit`/`parse` continue
//! to write and require all-zero bytes 41–43, so every pre-existing golden
//! digest and wire test is untouched when corruption features are off.

/// Integrity-flags bit: bytes 42–43 carry a header CRC.
pub const INTEGRITY_HDR_CRC: u8 = 0x01;

/// Integrity-flags bit: a payload-checksum trailer follows the header.
pub const INTEGRITY_PAYLOAD_CSUM: u8 = 0x02;

/// The integrity-flags byte of a sealed header: both checks present.
///
/// Sealed parsing requires *exactly* this value. Accepting "no integrity"
/// (0x00) in the sealed path would let a 2-bit flip of the flags byte plus
/// a coincidentally-zero CRC masquerade as a valid legacy header.
pub const INTEGRITY_SEALED: u8 = INTEGRITY_HDR_CRC | INTEGRITY_PAYLOAD_CSUM;

/// Length of the payload-checksum trailer appended to a sealed header.
pub const PAYLOAD_CSUM_LEN: usize = 4;

// ---------------------------------------------------------------------------
// Lookup tables, built at compile time.
//
// Both CRCs use slice-by-8: `T[k][b]` is the CRC contribution of byte `b`
// followed by `k` zero bytes, so eight input bytes collapse into eight
// independent table loads XORed together — no loop-carried dependency
// inside a block, which is what makes this ~8x the bitwise form.
// ---------------------------------------------------------------------------

/// CRC-16/CCITT-FALSE polynomial (MSB-first, non-reflected).
const CRC16_POLY: u16 = 0x1021;

/// CRC-32 (IEEE 802.3) polynomial, reflected.
const CRC32_POLY: u32 = 0xEDB8_8320;

const fn crc16_byte(b: u8) -> u16 {
    let mut crc = (b as u16) << 8;
    let mut i = 0;
    while i < 8 {
        crc = if crc & 0x8000 != 0 {
            (crc << 1) ^ CRC16_POLY
        } else {
            crc << 1
        };
        i += 1;
    }
    crc
}

const fn crc16_tables() -> [[u16; 256]; 8] {
    let mut t = [[0u16; 256]; 8];
    let mut b = 0;
    while b < 256 {
        t[0][b] = crc16_byte(b as u8);
        b += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut b = 0;
        while b < 256 {
            let v = t[k - 1][b];
            t[k][b] = (v << 8) ^ t[0][(v >> 8) as usize];
            b += 1;
        }
        k += 1;
    }
    t
}

const fn crc32_byte(b: u8) -> u32 {
    let mut crc = b as u32;
    let mut i = 0;
    while i < 8 {
        let mask = (crc & 1).wrapping_neg();
        crc = (crc >> 1) ^ (CRC32_POLY & mask);
        i += 1;
    }
    crc
}

const fn crc32_tables() -> [[u32; 256]; 8] {
    let mut t = [[0u32; 256]; 8];
    let mut b = 0;
    while b < 256 {
        t[0][b] = crc32_byte(b as u8);
        b += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut b = 0;
        while b < 256 {
            let v = t[k - 1][b];
            t[k][b] = (v >> 8) ^ t[0][(v & 0xFF) as usize];
            b += 1;
        }
        k += 1;
    }
    t
}

static CRC16_T: [[u16; 256]; 8] = crc16_tables();
static CRC32_T: [[u32; 256]; 8] = crc32_tables();

/// Advance a raw (un-finalized) CRC-16 state over `bytes`, slice-by-8.
fn crc16_update(mut crc: u16, bytes: &[u8]) -> u16 {
    let mut chunks = bytes.chunks_exact(8);
    for c in chunks.by_ref() {
        // The 16-bit state is consumed by the first two data bytes; the
        // remaining six contribute independently.
        crc = CRC16_T[7][((crc >> 8) as u8 ^ c[0]) as usize]
            ^ CRC16_T[6][(crc as u8 ^ c[1]) as usize]
            ^ CRC16_T[5][c[2] as usize]
            ^ CRC16_T[4][c[3] as usize]
            ^ CRC16_T[3][c[4] as usize]
            ^ CRC16_T[2][c[5] as usize]
            ^ CRC16_T[1][c[6] as usize]
            ^ CRC16_T[0][c[7] as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc << 8) ^ CRC16_T[0][((crc >> 8) as u8 ^ b) as usize];
    }
    crc
}

/// Advance a raw (inverted) CRC-32 state over `bytes`, slice-by-8.
fn crc32_update(mut crc: u32, bytes: &[u8]) -> u32 {
    let mut chunks = bytes.chunks_exact(8);
    for c in chunks.by_ref() {
        let a = crc ^ u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
        crc = CRC32_T[7][(a & 0xFF) as usize]
            ^ CRC32_T[6][((a >> 8) & 0xFF) as usize]
            ^ CRC32_T[5][((a >> 16) & 0xFF) as usize]
            ^ CRC32_T[4][(a >> 24) as usize]
            ^ CRC32_T[3][c[4] as usize]
            ^ CRC32_T[2][c[5] as usize]
            ^ CRC32_T[1][c[6] as usize]
            ^ CRC32_T[0][c[7] as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ CRC32_T[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

/// Streaming CRC-16/CCITT-FALSE: polynomial 0x1021, init 0xFFFF, no
/// reflection, no final XOR. The streaming form lets the zero-copy view
/// verify a header whose CRC bytes must be treated as zero without
/// copying the buffer.
#[derive(Debug, Clone, Copy)]
pub struct Crc16(u16);

impl Crc16 {
    /// A fresh CRC in its initial state.
    pub fn new() -> Crc16 {
        Crc16(0xFFFF)
    }

    /// Feed bytes into the CRC.
    pub fn update(&mut self, bytes: &[u8]) {
        self.0 = crc16_update(self.0, bytes);
    }

    /// The CRC of everything fed so far.
    pub fn finish(self) -> u16 {
        self.0
    }
}

impl Default for Crc16 {
    fn default() -> Self {
        Crc16::new()
    }
}

/// One-shot CRC-16/CCITT-FALSE over `bytes`. Table-driven slice-by-8:
/// sealing happens per damaged or audited frame in the corruption studies,
/// where header CRCs are a measurable slice of the profile.
pub fn crc16_ccitt(bytes: &[u8]) -> u16 {
    crc16_update(0xFFFF, bytes)
}

/// CRC-32 (IEEE 802.3): reflected polynomial 0xEDB88320, init and final
/// XOR 0xFFFFFFFF.
///
/// Long inputs take a carry-less-multiply (PCLMULQDQ) folding path when
/// the CPU supports it; the scalar slice-by-8 fallback is bit-identical.
/// Set `MTP_WIRE_FORCE_SCALAR=1` to pin the scalar path (the CI matrix
/// uses this to prove digests match across implementations).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    let mut rest = bytes;
    #[cfg(target_arch = "x86_64")]
    if rest.len() >= 64 {
        let head = rest.len() & !15;
        if let Some(folded) = clmul::try_fold(crc, &rest[..head]) {
            crc = folded;
            rest = &rest[head..];
        }
    }
    !crc32_update(crc, rest)
}

/// CRC-32 restricted to the scalar slice-by-8 path. Exposed so tests and
/// fuzz harnesses can pin implementations against each other without
/// touching the process environment.
#[doc(hidden)]
pub fn crc32_scalar(bytes: &[u8]) -> u32 {
    !crc32_update(0xFFFF_FFFF, bytes)
}

/// CRC-32 by PCLMULQDQ folding, after Gopal et al., "Fast CRC Computation
/// for Generic Polynomials Using PCLMULQDQ" (the same constants and
/// schedule as zlib's `crc32_simd`): fold four 128-bit lanes per 64-byte
/// block, collapse to one lane, then Barrett-reduce to 32 bits. This is
/// the one module in the crate allowed to use `unsafe` — the intrinsics'
/// preconditions are exactly the CPU features the caller detects.
#[cfg(target_arch = "x86_64")]
mod clmul {
    #![allow(unsafe_code)]
    use core::arch::x86_64::*;

    /// x^(4·128+32) and x^(4·128-32) mod P — the 64-byte-block fold pair.
    const K1: i64 = 0x01_54_44_2b_d4;
    const K2: i64 = 0x01_c6_e4_15_96;
    /// x^(128+32) and x^(128-32) mod P — the lane-collapse fold pair.
    const K3: i64 = 0x01_75_19_97_d0;
    const K4: i64 = 0x00_cc_aa_00_9e;
    /// x^64 mod P — the 128→64 bit reduction constant.
    const K5: i64 = 0x01_63_cd_61_24;
    /// P' (the polynomial) and µ (its Barrett reciprocal).
    const POLY: i64 = 0x01_db_71_06_41;
    const MU: i64 = 0x01_f7_01_16_41;

    /// Runtime gate for the hardware path: the CPU must advertise
    /// PCLMULQDQ and SSE4.1, and `MTP_WIRE_FORCE_SCALAR` must not be set
    /// to a truthy value. Checked once and cached.
    fn enabled() -> bool {
        use std::sync::OnceLock;
        static ENABLED: OnceLock<bool> = OnceLock::new();
        *ENABLED.get_or_init(|| {
            let forced_scalar = std::env::var_os("MTP_WIRE_FORCE_SCALAR")
                .is_some_and(|v| !v.is_empty() && v != "0");
            !forced_scalar
                && std::arch::is_x86_feature_detected!("pclmulqdq")
                && std::arch::is_x86_feature_detected!("sse4.1")
        })
    }

    /// Fold `buf` (length ≥ 64 and a multiple of 16) into the raw
    /// (inverted) CRC-32 state, or `None` when the hardware path is
    /// unavailable or disabled — the caller then stays on slice-by-8.
    pub fn try_fold(crc: u32, buf: &[u8]) -> Option<u32> {
        if !enabled() {
            return None;
        }
        // SAFETY: `enabled` verified pclmulqdq + sse4.1 on this CPU.
        Some(unsafe { crc32_fold(crc, buf) })
    }

    #[inline]
    fn load(b: &[u8]) -> __m128i {
        debug_assert!(b.len() >= 16);
        // SAFETY: the slice holds at least 16 bytes; loadu has no
        // alignment requirement.
        unsafe { _mm_loadu_si128(b.as_ptr().cast()) }
    }

    #[target_feature(enable = "pclmulqdq", enable = "sse4.1")]
    fn crc32_fold(crc: u32, buf: &[u8]) -> u32 {
        debug_assert!(buf.len() >= 64 && buf.len().is_multiple_of(16));

        let mut x1 = load(buf);
        let mut x2 = load(&buf[16..]);
        let mut x3 = load(&buf[32..]);
        let mut x4 = load(&buf[48..]);
        x1 = _mm_xor_si128(x1, _mm_cvtsi32_si128(crc as i32));

        // Fold 64 bytes per iteration across four independent lanes.
        let k = _mm_set_epi64x(K2, K1);
        let mut off = 64;
        while buf.len() - off >= 64 {
            let y1 = _mm_clmulepi64_si128(x1, k, 0x00);
            let y2 = _mm_clmulepi64_si128(x2, k, 0x00);
            let y3 = _mm_clmulepi64_si128(x3, k, 0x00);
            let y4 = _mm_clmulepi64_si128(x4, k, 0x00);
            x1 = _mm_clmulepi64_si128(x1, k, 0x11);
            x2 = _mm_clmulepi64_si128(x2, k, 0x11);
            x3 = _mm_clmulepi64_si128(x3, k, 0x11);
            x4 = _mm_clmulepi64_si128(x4, k, 0x11);
            x1 = _mm_xor_si128(_mm_xor_si128(x1, y1), load(&buf[off..]));
            x2 = _mm_xor_si128(_mm_xor_si128(x2, y2), load(&buf[off + 16..]));
            x3 = _mm_xor_si128(_mm_xor_si128(x3, y3), load(&buf[off + 32..]));
            x4 = _mm_xor_si128(_mm_xor_si128(x4, y4), load(&buf[off + 48..]));
            off += 64;
        }

        // Collapse the four lanes into one.
        let k = _mm_set_epi64x(K4, K3);
        let y = _mm_clmulepi64_si128(x1, k, 0x00);
        x1 = _mm_clmulepi64_si128(x1, k, 0x11);
        x1 = _mm_xor_si128(_mm_xor_si128(x1, x2), y);
        let y = _mm_clmulepi64_si128(x1, k, 0x00);
        x1 = _mm_clmulepi64_si128(x1, k, 0x11);
        x1 = _mm_xor_si128(_mm_xor_si128(x1, x3), y);
        let y = _mm_clmulepi64_si128(x1, k, 0x00);
        x1 = _mm_clmulepi64_si128(x1, k, 0x11);
        x1 = _mm_xor_si128(_mm_xor_si128(x1, x4), y);

        // Fold any remaining 16-byte blocks into the single lane.
        while buf.len() - off >= 16 {
            let y = _mm_clmulepi64_si128(x1, k, 0x00);
            x1 = _mm_clmulepi64_si128(x1, k, 0x11);
            x1 = _mm_xor_si128(_mm_xor_si128(x1, y), load(&buf[off..]));
            off += 16;
        }

        // Reduce 128 bits to 64.
        let mask = _mm_setr_epi32(!0, 0, !0, 0);
        let y = _mm_clmulepi64_si128(x1, k, 0x10);
        x1 = _mm_srli_si128(x1, 8);
        x1 = _mm_xor_si128(x1, y);

        let k = _mm_set_epi64x(0, K5);
        let y = _mm_srli_si128(x1, 4);
        x1 = _mm_and_si128(x1, mask);
        x1 = _mm_clmulepi64_si128(x1, k, 0x00);
        x1 = _mm_xor_si128(x1, y);

        // Barrett reduction to 32 bits.
        let k = _mm_set_epi64x(MU, POLY);
        let mut y = _mm_and_si128(x1, mask);
        y = _mm_clmulepi64_si128(y, k, 0x10);
        y = _mm_and_si128(y, mask);
        y = _mm_clmulepi64_si128(y, k, 0x00);
        x1 = _mm_xor_si128(x1, y);
        _mm_extract_epi32(x1, 1) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Bit-at-a-time CRC-16/CCITT-FALSE — the reference the table and
    /// SIMD implementations must match exactly.
    fn crc16_bitwise(bytes: &[u8]) -> u16 {
        let mut crc: u16 = 0xFFFF;
        for &b in bytes {
            crc ^= (b as u16) << 8;
            for _ in 0..8 {
                crc = if crc & 0x8000 != 0 {
                    (crc << 1) ^ 0x1021
                } else {
                    crc << 1
                };
            }
        }
        crc
    }

    /// Bit-at-a-time CRC-32 (IEEE) reference.
    fn crc32_bitwise(bytes: &[u8]) -> u32 {
        let mut crc: u32 = 0xFFFF_FFFF;
        for &b in bytes {
            crc ^= b as u32;
            for _ in 0..8 {
                let mask = (crc & 1).wrapping_neg();
                crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            }
        }
        !crc
    }

    /// Deterministic pseudo-random fill so every length class sees
    /// non-trivial bytes (xorshift64*).
    fn fill(buf: &mut [u8], mut seed: u64) {
        for b in buf.iter_mut() {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            *b = (seed.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 56) as u8;
        }
    }

    #[test]
    fn crc16_table_matches_bitwise_all_lengths() {
        let mut buf = vec![0u8; 2048];
        fill(&mut buf, 0x5EED_0001);
        for len in 0..=2048 {
            let m = &buf[..len];
            assert_eq!(crc16_ccitt(m), crc16_bitwise(m), "len {len}");
            // The streaming form must agree with the one-shot for every
            // split point class (front-heavy, back-heavy, odd cuts).
            if len > 0 {
                for cut in [1, len / 3, len / 2, len - 1] {
                    let mut c = Crc16::new();
                    c.update(&m[..cut]);
                    c.update(&m[cut..]);
                    assert_eq!(c.finish(), crc16_bitwise(m), "len {len} cut {cut}");
                }
            }
        }
    }

    #[test]
    fn crc32_all_impls_match_bitwise_all_lengths() {
        let mut buf = vec![0u8; 2048];
        fill(&mut buf, 0xC0DE_CAFE);
        for len in 0..=2048 {
            let m = &buf[..len];
            let want = crc32_bitwise(m);
            assert_eq!(crc32_scalar(m), want, "scalar len {len}");
            // `crc32` takes the hardware path when the CPU offers it and
            // the scalar path otherwise — either way it must agree.
            assert_eq!(crc32(m), want, "dispatch len {len}");
        }
    }

    #[test]
    fn crc16_known_vector() {
        // The classic "123456789" check value for CRC-16/CCITT-FALSE.
        assert_eq!(crc16_ccitt(b"123456789"), 0x29B1);
        assert_eq!(crc16_ccitt(b""), 0xFFFF);
    }

    #[test]
    fn crc32_known_vector() {
        // The classic "123456789" check value for CRC-32 (IEEE).
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc16_detects_every_low_weight_flip() {
        // Exhaustive single- and double-bit flips over a header-sized
        // message must all change the CRC (Hamming distance ≥ 3 at this
        // length; the guarantee extends to 3-bit flips but exhaustive
        // triple coverage is the fuzz suite's job).
        let msg: Vec<u8> = (0u16..64).map(|i| (i * 37) as u8).collect();
        let clean = crc16_ccitt(&msg);
        let bits = msg.len() * 8;
        for i in 0..bits {
            let mut m = msg.clone();
            m[i / 8] ^= 1 << (i % 8);
            assert_ne!(crc16_ccitt(&m), clean, "single flip at bit {i}");
            for j in (i + 1)..bits {
                let mut m2 = m.clone();
                m2[j / 8] ^= 1 << (j % 8);
                assert_ne!(crc16_ccitt(&m2), clean, "double flip {i},{j}");
            }
        }
    }
}
