//! Wire-level integrity primitives: the header CRC and payload checksum.
//!
//! MTP's premise is that *in-network devices* parse and mutate transport
//! headers in flight, which makes every switch, proxy, cache, and load
//! balancer a decoder exposed to whatever bytes the physical network hands
//! it. A corrupted credit or feedback TLV that parses "successfully" would
//! poison a pathlet window or a cache entry, so a device must be able to
//! verify a header *before* trusting any field in it.
//!
//! Two checks cover a packet:
//!
//! * a **header CRC** — CRC-16/CCITT-FALSE over the entire encoded header
//!   (fixed portion + all variable sections) carried in the two formerly
//!   reserved bytes 42–43, with byte 41 holding the integrity-flags byte.
//!   CRC-16/CCITT has Hamming distance 4 for messages up to 32 751 bits, so
//!   *every* corruption of up to 3 bits inside a header (far larger than any
//!   header this workspace emits) is guaranteed detected, not just
//!   probabilistically;
//! * a **payload checksum** — CRC-32 (IEEE) carried in a 4-byte trailer
//!   after the header. Payload *bytes* are not simulated, so the checksum
//!   covers the payload's wire descriptor (`msg_id`, `pkt_num`,
//!   `pkt_offset`, `pkt_len`); the simulator separately marks packets whose
//!   simulated payload region took a hit, and receivers treat that exactly
//!   as a real checksum failure (drop, no ACK, recover via loss recovery).
//!
//! The sealed forms are strictly additive: legacy `emit`/`parse` continue
//! to write and require all-zero bytes 41–43, so every pre-existing golden
//! digest and wire test is untouched when corruption features are off.

/// Integrity-flags bit: bytes 42–43 carry a header CRC.
pub const INTEGRITY_HDR_CRC: u8 = 0x01;

/// Integrity-flags bit: a payload-checksum trailer follows the header.
pub const INTEGRITY_PAYLOAD_CSUM: u8 = 0x02;

/// The integrity-flags byte of a sealed header: both checks present.
///
/// Sealed parsing requires *exactly* this value. Accepting "no integrity"
/// (0x00) in the sealed path would let a 2-bit flip of the flags byte plus
/// a coincidentally-zero CRC masquerade as a valid legacy header.
pub const INTEGRITY_SEALED: u8 = INTEGRITY_HDR_CRC | INTEGRITY_PAYLOAD_CSUM;

/// Length of the payload-checksum trailer appended to a sealed header.
pub const PAYLOAD_CSUM_LEN: usize = 4;

/// Streaming CRC-16/CCITT-FALSE: polynomial 0x1021, init 0xFFFF, no
/// reflection, no final XOR. The streaming form lets the zero-copy view
/// verify a header whose CRC bytes must be treated as zero without
/// copying the buffer.
#[derive(Debug, Clone, Copy)]
pub struct Crc16(u16);

impl Crc16 {
    /// A fresh CRC in its initial state.
    pub fn new() -> Crc16 {
        Crc16(0xFFFF)
    }

    /// Feed bytes into the CRC.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.0;
        for &b in bytes {
            crc ^= (b as u16) << 8;
            for _ in 0..8 {
                if crc & 0x8000 != 0 {
                    crc = (crc << 1) ^ 0x1021;
                } else {
                    crc <<= 1;
                }
            }
        }
        self.0 = crc;
    }

    /// The CRC of everything fed so far.
    pub fn finish(self) -> u16 {
        self.0
    }
}

impl Default for Crc16 {
    fn default() -> Self {
        Crc16::new()
    }
}

/// One-shot CRC-16/CCITT-FALSE over `bytes`. Computed bitwise — headers
/// are at most a few hundred bytes and sealing only happens on the
/// fault-injection path, so a lookup table would buy nothing.
pub fn crc16_ccitt(bytes: &[u8]) -> u16 {
    let mut c = Crc16::new();
    c.update(bytes);
    c.finish()
}

/// CRC-32 (IEEE 802.3): reflected polynomial 0xEDB88320, init and final
/// XOR 0xFFFFFFFF.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc16_known_vector() {
        // The classic "123456789" check value for CRC-16/CCITT-FALSE.
        assert_eq!(crc16_ccitt(b"123456789"), 0x29B1);
        assert_eq!(crc16_ccitt(b""), 0xFFFF);
    }

    #[test]
    fn crc32_known_vector() {
        // The classic "123456789" check value for CRC-32 (IEEE).
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc16_detects_every_low_weight_flip() {
        // Exhaustive single- and double-bit flips over a header-sized
        // message must all change the CRC (Hamming distance ≥ 3 at this
        // length; the guarantee extends to 3-bit flips but exhaustive
        // triple coverage is the fuzz suite's job).
        let msg: Vec<u8> = (0u16..64).map(|i| (i * 37) as u8).collect();
        let clean = crc16_ccitt(&msg);
        let bits = msg.len() * 8;
        for i in 0..bits {
            let mut m = msg.clone();
            m[i / 8] ^= 1 << (i % 8);
            assert_ne!(crc16_ccitt(&m), clean, "single flip at bit {i}");
            for j in (i + 1)..bits {
                let mut m2 = m.clone();
                m2[j / 8] ^= 1 << (j % 8);
                assert_ne!(crc16_ccitt(&m2), clean, "double flip {i},{j}");
            }
        }
    }
}
