//! Bridging MTP across legacy TCP islands (paper §4, "Interaction with
//! TCP").
//!
//! The paper sketches carrying the MTP header "as a new TCP option" so
//! MTP-aware devices can bridge regions of the network that only speak
//! TCP. Classic TCP options cap at 40 bytes while a feedback-laden MTP
//! header can be much larger, so this module implements the practical
//! variant: a **payload-prefix encapsulation**. The bridged segment's
//! payload begins with a magic/version/length preamble followed by the
//! byte-exact MTP header; the original MTP payload follows. A legacy
//! middlebox sees a well-formed TCP segment; an MTP bridge at the far
//! edge recovers the full header losslessly.
//!
//! Layout of the bridged payload:
//!
//! ```text
//! offset size  field
//!      0    4  magic 0x4D545042 ("MTPB")
//!      4    1  version (currently 1)
//!      5    1  reserved (zero)
//!      6    2  mtp_header_len (bytes)
//!      8    -  MTP header (see crate root)
//!      .    -  original payload
//! ```

use crate::error::WireError;
use crate::header::MtpHeader;

/// Magic prefix identifying a bridged MTP header ("MTPB").
pub const BRIDGE_MAGIC: u32 = 0x4D54_5042;

/// Current encapsulation version.
pub const BRIDGE_VERSION: u8 = 1;

/// Size of the encapsulation preamble.
pub const BRIDGE_PREAMBLE_LEN: usize = 8;

/// Encapsulate an MTP header for transport inside a TCP payload. Returns
/// the preamble + header bytes to prepend to the original payload.
pub fn encapsulate(hdr: &MtpHeader) -> Result<Vec<u8>, WireError> {
    let hdr_len = hdr.wire_len();
    if hdr_len > u16::MAX as usize {
        return Err(WireError::TooManyEntries {
            list: "bridged header",
            count: hdr_len,
        });
    }
    let mut out = vec![0u8; BRIDGE_PREAMBLE_LEN + hdr_len];
    out[0..4].copy_from_slice(&BRIDGE_MAGIC.to_be_bytes());
    out[4] = BRIDGE_VERSION;
    out[5] = 0;
    out[6..8].copy_from_slice(&(hdr_len as u16).to_be_bytes());
    hdr.emit(&mut out[BRIDGE_PREAMBLE_LEN..])?;
    Ok(out)
}

/// Try to recover a bridged MTP header from the front of a TCP payload.
///
/// Returns `Ok(None)` if the payload does not start with the bridge magic
/// (i.e. it is ordinary TCP data); `Ok(Some((header, consumed)))` on
/// success, where `consumed` is the total encapsulation length to strip.
pub fn decapsulate(payload: &[u8]) -> Result<Option<(MtpHeader, usize)>, WireError> {
    if payload.len() < BRIDGE_PREAMBLE_LEN {
        return Ok(None);
    }
    let magic = u32::from_be_bytes(payload[0..4].try_into().expect("4 bytes"));
    if magic != BRIDGE_MAGIC {
        return Ok(None);
    }
    if payload[4] != BRIDGE_VERSION {
        return Err(WireError::BadPktType(payload[4]));
    }
    let hdr_len = u16::from_be_bytes([payload[6], payload[7]]) as usize;
    let need = BRIDGE_PREAMBLE_LEN + hdr_len;
    if payload.len() < need {
        return Err(WireError::Truncated {
            needed: need,
            got: payload.len(),
        });
    }
    let (hdr, used) = MtpHeader::parse(&payload[BRIDGE_PREAMBLE_LEN..need])?;
    if used != hdr_len {
        return Err(WireError::Truncated {
            needed: hdr_len,
            got: used,
        });
    }
    Ok(Some((hdr, need)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feedback::{Feedback, PathFeedback};
    use crate::types::{MsgId, PathletId, PktNum, TrafficClass};

    fn sample() -> MtpHeader {
        MtpHeader {
            src_port: 9,
            dst_port: 10,
            msg_id: MsgId(5),
            msg_len_pkts: 3,
            msg_len_bytes: 4000,
            pkt_num: PktNum(1),
            pkt_len: 1460,
            pkt_offset: 1460,
            path_feedback: vec![PathFeedback {
                path: PathletId(4),
                tc: TrafficClass(1),
                feedback: Feedback::RcpRate { mbps: 25_000 },
            }],
            ..MtpHeader::default()
        }
    }

    #[test]
    fn roundtrip() {
        let hdr = sample();
        let mut wire = encapsulate(&hdr).unwrap();
        wire.extend_from_slice(b"application bytes follow");
        let (back, consumed) = decapsulate(&wire).unwrap().expect("bridged");
        assert_eq!(back, hdr);
        assert_eq!(&wire[consumed..], b"application bytes follow");
    }

    #[test]
    fn plain_tcp_payload_passes_through() {
        assert_eq!(decapsulate(b"GET / HTTP/1.1\r\n").unwrap(), None);
        assert_eq!(decapsulate(b"").unwrap(), None);
        assert_eq!(decapsulate(b"shor").unwrap(), None);
    }

    #[test]
    fn rejects_unknown_version() {
        let hdr = sample();
        let mut wire = encapsulate(&hdr).unwrap();
        wire[4] = 9;
        assert!(decapsulate(&wire).is_err());
    }

    #[test]
    fn rejects_truncated_header() {
        let hdr = sample();
        let wire = encapsulate(&hdr).unwrap();
        for cut in BRIDGE_PREAMBLE_LEN..wire.len() {
            assert!(decapsulate(&wire[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn magic_mismatch_is_not_an_error() {
        let hdr = sample();
        let mut wire = encapsulate(&hdr).unwrap();
        wire[0] ^= 0xff;
        assert_eq!(decapsulate(&wire).unwrap(), None, "not bridged, just data");
    }
}
