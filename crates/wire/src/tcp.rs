//! A simplified TCP segment header for the baseline transports.
//!
//! The baselines in this workspace (TCP NewReno, DCTCP) need a header that
//! captures the fields their control laws read: sequence/acknowledgement
//! numbers, flags (including the ECN echo pair), and the advertised receive
//! window. We model the receive window as a full 32-bit byte count rather
//! than a 16-bit field plus window scaling — the experiments run at
//! 100 Gbps where scaling would always be on, so this loses nothing and
//! avoids simulating an option negotiation the paper never discusses.
//!
//! A `conn_id` field stands in for the 4-tuple: the simulator does not model
//! IP addresses, so connection demultiplexing keys on an explicit ID. This
//! is a modelling convenience, not a protocol change.

use serde::{Deserialize, Serialize};

use crate::error::WireError;

/// TCP header flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash, Serialize, Deserialize)]
pub struct TcpFlags {
    /// Synchronize: connection setup.
    pub syn: bool,
    /// Acknowledgement field is valid.
    pub ack: bool,
    /// Finish: sender is done.
    pub fin: bool,
    /// Reset.
    pub rst: bool,
    /// ECN echo: receiver saw CE; latched until CWR (RFC 3168 / DCTCP uses
    /// per-packet echo, selected by the endpoint configuration).
    pub ece: bool,
    /// Congestion window reduced: sender acknowledges the ECE signal.
    pub cwr: bool,
}

impl TcpFlags {
    fn to_wire(self) -> u8 {
        (self.syn as u8)
            | (self.ack as u8) << 1
            | (self.fin as u8) << 2
            | (self.rst as u8) << 3
            | (self.ece as u8) << 4
            | (self.cwr as u8) << 5
    }

    fn from_wire(v: u8) -> TcpFlags {
        TcpFlags {
            syn: v & 1 != 0,
            ack: v & 2 != 0,
            fin: v & 4 != 0,
            rst: v & 8 != 0,
            ece: v & 16 != 0,
            cwr: v & 32 != 0,
        }
    }
}

/// The simplified TCP segment header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TcpHeader {
    /// Connection identifier standing in for the 4-tuple.
    pub conn_id: u32,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// First sequence number of the payload.
    pub seq: u64,
    /// Cumulative acknowledgement number (next byte expected).
    pub ack: u64,
    /// Flags.
    pub flags: TcpFlags,
    /// Advertised receive window in bytes.
    pub rwnd: u32,
    /// Payload length in bytes (carried explicitly; the simulator does not
    /// model an IP total-length field).
    pub payload_len: u16,
}

/// Encoded size of the simplified TCP header.
pub const TCP_HEADER_LEN: usize = 32;

/// Encoded size of the sealed TCP header: the 32-byte header with its
/// integrity byte set, followed by a 4-byte CRC-32 trailer. This stands in
/// for the real TCP checksum, which the simplified header otherwise lacks.
pub const TCP_SEALED_LEN: usize = TCP_HEADER_LEN + 4;

/// Value of byte 31 marking a sealed TCP header (a CRC-32 trailer follows).
pub const TCP_INTEGRITY_SEALED: u8 = 1;

impl Default for TcpHeader {
    fn default() -> Self {
        TcpHeader {
            conn_id: 0,
            src_port: 0,
            dst_port: 0,
            seq: 0,
            ack: 0,
            flags: TcpFlags::default(),
            rwnd: u32::MAX,
            payload_len: 0,
        }
    }
}

impl TcpHeader {
    /// Serialize into a fresh buffer.
    pub fn to_bytes(&self) -> [u8; TCP_HEADER_LEN] {
        let mut buf = [0u8; TCP_HEADER_LEN];
        buf[0..4].copy_from_slice(&self.conn_id.to_be_bytes());
        buf[4..6].copy_from_slice(&self.src_port.to_be_bytes());
        buf[6..8].copy_from_slice(&self.dst_port.to_be_bytes());
        buf[8..16].copy_from_slice(&self.seq.to_be_bytes());
        buf[16..24].copy_from_slice(&self.ack.to_be_bytes());
        buf[24] = self.flags.to_wire();
        buf[25..29].copy_from_slice(&self.rwnd.to_be_bytes());
        buf[29..31].copy_from_slice(&self.payload_len.to_be_bytes());
        buf[31] = 0;
        buf
    }

    /// Parse from the front of `buf`. The reserved byte 31 must be zero —
    /// a sealed frame (byte 31 = [`TCP_INTEGRITY_SEALED`]) must go through
    /// [`parse_sealed`](Self::parse_sealed), and anything else is
    /// corruption.
    pub fn parse(buf: &[u8]) -> Result<TcpHeader, WireError> {
        if buf.len() < TCP_HEADER_LEN {
            return Err(WireError::Truncated {
                needed: TCP_HEADER_LEN,
                got: buf.len(),
            });
        }
        if buf[31] != 0 {
            return Err(WireError::BadReserved);
        }
        Ok(Self::parse_fields(buf))
    }

    /// Decode the fixed fields; callers have already length-checked `buf`
    /// and dealt with byte 31.
    fn parse_fields(buf: &[u8]) -> TcpHeader {
        TcpHeader {
            conn_id: u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]),
            src_port: u16::from_be_bytes([buf[4], buf[5]]),
            dst_port: u16::from_be_bytes([buf[6], buf[7]]),
            seq: u64::from_be_bytes([
                buf[8], buf[9], buf[10], buf[11], buf[12], buf[13], buf[14], buf[15],
            ]),
            ack: u64::from_be_bytes([
                buf[16], buf[17], buf[18], buf[19], buf[20], buf[21], buf[22], buf[23],
            ]),
            flags: TcpFlags::from_wire(buf[24]),
            rwnd: u32::from_be_bytes([buf[25], buf[26], buf[27], buf[28]]),
            payload_len: u16::from_be_bytes([buf[29], buf[30]]),
        }
    }

    /// Serialize the sealed form: byte 31 set to [`TCP_INTEGRITY_SEALED`]
    /// and a CRC-32 over the whole 32-byte header appended, standing in
    /// for the TCP checksum the simplified header otherwise lacks.
    pub fn to_sealed_bytes(&self) -> [u8; TCP_SEALED_LEN] {
        let mut out = [0u8; TCP_SEALED_LEN];
        out[..TCP_HEADER_LEN].copy_from_slice(&self.to_bytes());
        out[31] = TCP_INTEGRITY_SEALED;
        let crc = crate::integrity::crc32(&out[..TCP_HEADER_LEN]);
        out[TCP_HEADER_LEN..].copy_from_slice(&crc.to_be_bytes());
        out
    }

    /// Parse and verify a sealed TCP header from the front of `buf`.
    /// Returns the header and the bytes consumed. Like the MTP sealed
    /// parser, the integrity byte must match exactly — there is no
    /// fallback to the unchecked legacy form.
    pub fn parse_sealed(buf: &[u8]) -> Result<(TcpHeader, usize), WireError> {
        if buf.len() < TCP_SEALED_LEN {
            return Err(WireError::Truncated {
                needed: TCP_SEALED_LEN,
                got: buf.len(),
            });
        }
        if buf[31] != TCP_INTEGRITY_SEALED {
            return Err(WireError::BadIntegrityFlags(buf[31]));
        }
        let stored = u32::from_be_bytes([
            buf[TCP_HEADER_LEN],
            buf[TCP_HEADER_LEN + 1],
            buf[TCP_HEADER_LEN + 2],
            buf[TCP_HEADER_LEN + 3],
        ]);
        if crate::integrity::crc32(&buf[..TCP_HEADER_LEN]) != stored {
            return Err(WireError::BadHeaderCrc);
        }
        Ok((Self::parse_fields(buf), TCP_SEALED_LEN))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let hdr = TcpHeader {
            conn_id: 42,
            src_port: 1000,
            dst_port: 80,
            seq: 1 << 40,
            ack: 12345,
            flags: TcpFlags {
                syn: true,
                ack: true,
                ece: true,
                ..Default::default()
            },
            rwnd: 1 << 20,
            payload_len: 1460,
        };
        let bytes = hdr.to_bytes();
        assert_eq!(TcpHeader::parse(&bytes).unwrap(), hdr);
    }

    #[test]
    fn all_flags_roundtrip() {
        for bits in 0..64u8 {
            let flags = TcpFlags::from_wire(bits);
            assert_eq!(flags.to_wire(), bits);
        }
    }

    #[test]
    fn rejects_truncated() {
        let bytes = TcpHeader::default().to_bytes();
        assert!(matches!(
            TcpHeader::parse(&bytes[..TCP_HEADER_LEN - 1]),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn plain_parse_rejects_nonzero_reserved_byte() {
        let mut bytes = TcpHeader::default().to_bytes();
        bytes[31] = 7;
        assert_eq!(TcpHeader::parse(&bytes), Err(WireError::BadReserved));
    }

    #[test]
    fn sealed_roundtrip() {
        let hdr = TcpHeader {
            conn_id: 9,
            seq: 1 << 33,
            ack: 77,
            payload_len: 1460,
            ..TcpHeader::default()
        };
        let sealed = hdr.to_sealed_bytes();
        let (back, used) = TcpHeader::parse_sealed(&sealed).unwrap();
        assert_eq!(used, TCP_SEALED_LEN);
        assert_eq!(back, hdr);
        // Sealed frames are rejected by the plain parser and vice versa.
        assert_eq!(TcpHeader::parse(&sealed), Err(WireError::BadReserved));
        assert_eq!(
            TcpHeader::parse_sealed(&hdr.to_bytes()),
            Err(WireError::Truncated {
                needed: TCP_SEALED_LEN,
                got: TCP_HEADER_LEN
            })
        );
    }

    #[test]
    fn sealed_detects_every_single_bit_flip() {
        let sealed = TcpHeader {
            conn_id: 3,
            seq: 1234,
            payload_len: 512,
            ..TcpHeader::default()
        }
        .to_sealed_bytes();
        for bit in 0..TCP_SEALED_LEN * 8 {
            let mut m = sealed;
            m[bit / 8] ^= 1 << (bit % 8);
            assert!(TcpHeader::parse_sealed(&m).is_err(), "flip at bit {bit}");
        }
    }

    #[test]
    fn sealed_rejects_truncation_at_every_cut() {
        let sealed = TcpHeader::default().to_sealed_bytes();
        for cut in 0..TCP_SEALED_LEN {
            assert!(
                TcpHeader::parse_sealed(&sealed[..cut]).is_err(),
                "cut {cut}"
            );
        }
    }
}
