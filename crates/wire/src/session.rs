//! Session-control wire format: HELLO, FIN, and keepalive frames.
//!
//! The real-wire backend (`mtp-io`) bootstraps a connection with a
//! versioned HELLO/HELLO-ACK exchange, keeps it alive with PING/PONG
//! probes, and tears it down with FIN/FIN-ACK. Those control frames ride
//! the same datagrams as data frames, so they get the same treatment the
//! sealed MTP header gets: a fixed layout, network byte order, and a
//! CRC-16/CCITT trailer that convicts any in-flight corruption instead
//! of letting a damaged port map poison a session. The format is small
//! and self-delimiting:
//!
//! ```text
//! offset  size  field
//!      0     1  version          (nonzero; current = SESSION_WIRE_VERSION)
//!      1     1  kind             (Hello / HelloAck / Fin / FinAck / Ping / Pong)
//!      2     2  src_port         (MTP app port of the frame's sender)
//!      4     2  dst_port         (MTP app port of the frame's receiver)
//!      6     8  session_id       (initiator-chosen id; echoed everywhere)
//!     14     8  peer_session_id  (responder-chosen id; 0 until HELLO-ACK)
//!     22     4  seq              (retry round / probe counter, diagnostics)
//!     26     1  n_ports
//!     27     1  reserved         (must be zero)
//!     28    2n  ports            (u16 each: the advertiser's per-pathlet
//!                                 UDP ports, in pathlet-id order)
//!   28+2n    2  crc16            (CRC-16/CCITT over all preceding bytes)
//! ```
//!
//! The port list is what replaces PR 8's fixed out-of-band port maps: a
//! HELLO-ACK carries the responder's per-pathlet UDP ports, so the
//! initiator learns where to spray data. A middlebox (the lossy relay in
//! `mtp-io`) may rewrite the list NAT-style — which is why the frame is
//! re-sealed, never patched in place.

use crate::error::WireError;
use crate::integrity::crc16_ccitt;

/// The session-control wire version this crate emits.
///
/// Parsers accept any **nonzero** version byte and surface it to the
/// caller; the session layer decides whether to speak it. Zero is
/// reserved as an obvious-corruption sentinel.
pub const SESSION_WIRE_VERSION: u8 = 1;

/// Fixed portion of a session-control frame (everything before the port
/// list), in bytes.
pub const SESSION_CTRL_FIXED_LEN: usize = 28;

/// CRC trailer length of a session-control frame, in bytes.
pub const SESSION_CTRL_CRC_LEN: usize = 2;

/// What a session-control frame does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum CtrlKind {
    /// Initiator → responder: open a session, advertise my ports.
    Hello = 0,
    /// Responder → initiator: session accepted, here are my ports.
    HelloAck = 1,
    /// Initiator → responder: all messages retired, closing.
    Fin = 2,
    /// Responder → initiator: close acknowledged (re-sent from
    /// TIME-WAIT for every duplicate FIN).
    FinAck = 3,
    /// Liveness probe.
    Ping = 4,
    /// Liveness probe reply.
    Pong = 5,
}

impl CtrlKind {
    /// Decode a wire discriminant.
    pub fn from_wire(v: u8) -> Result<CtrlKind, WireError> {
        match v {
            0 => Ok(CtrlKind::Hello),
            1 => Ok(CtrlKind::HelloAck),
            2 => Ok(CtrlKind::Fin),
            3 => Ok(CtrlKind::FinAck),
            4 => Ok(CtrlKind::Ping),
            5 => Ok(CtrlKind::Pong),
            other => Err(WireError::BadCtrlKind(other)),
        }
    }
}

/// An owned session-control frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionCtrl {
    /// Wire version (nonzero; emit [`SESSION_WIRE_VERSION`]).
    pub version: u8,
    /// What this frame does.
    pub kind: CtrlKind,
    /// MTP app port of the frame's sender.
    pub src_port: u16,
    /// MTP app port of the frame's receiver.
    pub dst_port: u16,
    /// Initiator-chosen session id, echoed on every frame of the session.
    pub session_id: u64,
    /// Responder-chosen session id (0 until the HELLO-ACK assigns one).
    pub peer_session_id: u64,
    /// Retry round or probe counter — diagnostics only, never compared.
    pub seq: u32,
    /// The advertiser's per-pathlet UDP ports, in pathlet-id order.
    /// Empty on frames that advertise nothing (FIN, PING, PONG).
    pub ports: Vec<u16>,
}

impl SessionCtrl {
    /// A frame of `kind` with the given ids and no port list.
    pub fn new(kind: CtrlKind, session_id: u64, peer_session_id: u64) -> SessionCtrl {
        SessionCtrl {
            version: SESSION_WIRE_VERSION,
            kind,
            src_port: 0,
            dst_port: 0,
            session_id,
            peer_session_id,
            seq: 0,
            ports: Vec::new(),
        }
    }

    /// Encoded size of this frame, CRC trailer included.
    pub fn wire_len(&self) -> usize {
        SESSION_CTRL_FIXED_LEN + 2 * self.ports.len() + SESSION_CTRL_CRC_LEN
    }

    /// Emit the sealed frame into `buf` (must be at least
    /// [`wire_len`](SessionCtrl::wire_len) bytes). Returns bytes written.
    pub fn emit_sealed(&self, buf: &mut [u8]) -> Result<usize, WireError> {
        if self.ports.len() > u8::MAX as usize {
            return Err(WireError::TooManyEntries {
                list: "session ports",
                count: self.ports.len(),
            });
        }
        let need = self.wire_len();
        if buf.len() < need {
            return Err(WireError::Truncated {
                needed: need,
                got: buf.len(),
            });
        }
        buf[0] = self.version;
        buf[1] = self.kind as u8;
        buf[2..4].copy_from_slice(&self.src_port.to_be_bytes());
        buf[4..6].copy_from_slice(&self.dst_port.to_be_bytes());
        buf[6..14].copy_from_slice(&self.session_id.to_be_bytes());
        buf[14..22].copy_from_slice(&self.peer_session_id.to_be_bytes());
        buf[22..26].copy_from_slice(&self.seq.to_be_bytes());
        buf[26] = self.ports.len() as u8;
        buf[27] = 0;
        let mut at = SESSION_CTRL_FIXED_LEN;
        for &p in &self.ports {
            buf[at..at + 2].copy_from_slice(&p.to_be_bytes());
            at += 2;
        }
        let crc = crc16_ccitt(&buf[..at]);
        buf[at..at + 2].copy_from_slice(&crc.to_be_bytes());
        Ok(at + 2)
    }

    /// Emit the sealed frame as a fresh vector.
    pub fn to_sealed_bytes(&self) -> Result<Vec<u8>, WireError> {
        let mut buf = vec![0u8; self.wire_len()];
        let n = self.emit_sealed(&mut buf)?;
        buf.truncate(n);
        Ok(buf)
    }

    /// Parse a sealed frame from the front of `buf`. Returns the frame
    /// and the bytes consumed; callers that know the frame boundary must
    /// also check `consumed == frame.len()` (a corrupted port count can
    /// re-frame the walk, but then the length no longer matches).
    pub fn parse_sealed(buf: &[u8]) -> Result<(SessionCtrl, usize), WireError> {
        let min = SESSION_CTRL_FIXED_LEN + SESSION_CTRL_CRC_LEN;
        if buf.len() < min {
            return Err(WireError::Truncated {
                needed: min,
                got: buf.len(),
            });
        }
        let version = buf[0];
        if version == 0 {
            return Err(WireError::BadCtrlVersion(0));
        }
        let kind = CtrlKind::from_wire(buf[1])?;
        let n_ports = buf[26] as usize;
        let need = SESSION_CTRL_FIXED_LEN + 2 * n_ports + SESSION_CTRL_CRC_LEN;
        if buf.len() < need {
            return Err(WireError::Truncated {
                needed: need,
                got: buf.len(),
            });
        }
        if buf[27] != 0 {
            return Err(WireError::BadReserved);
        }
        let crc_at = need - SESSION_CTRL_CRC_LEN;
        let want = u16::from_be_bytes([buf[crc_at], buf[crc_at + 1]]);
        if crc16_ccitt(&buf[..crc_at]) != want {
            return Err(WireError::BadHeaderCrc);
        }
        let ports = (0..n_ports)
            .map(|k| {
                let at = SESSION_CTRL_FIXED_LEN + 2 * k;
                u16::from_be_bytes([buf[at], buf[at + 1]])
            })
            .collect();
        Ok((
            SessionCtrl {
                version,
                kind,
                src_port: u16::from_be_bytes([buf[2], buf[3]]),
                dst_port: u16::from_be_bytes([buf[4], buf[5]]),
                session_id: u64::from_be_bytes(buf[6..14].try_into().expect("8 bytes")),
                peer_session_id: u64::from_be_bytes(buf[14..22].try_into().expect("8 bytes")),
                seq: u32::from_be_bytes(buf[22..26].try_into().expect("4 bytes")),
                ports,
            },
            need,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SessionCtrl {
        SessionCtrl {
            version: SESSION_WIRE_VERSION,
            kind: CtrlKind::HelloAck,
            src_port: 2,
            dst_port: 1,
            session_id: 0xDEAD_BEEF_0BAD_F00D,
            peer_session_id: 0x1234_5678_9ABC_DEF0,
            seq: 3,
            ports: vec![40_001, 40_002, 40_003, 40_004],
        }
    }

    #[test]
    fn roundtrip_all_kinds() {
        for kind in [
            CtrlKind::Hello,
            CtrlKind::HelloAck,
            CtrlKind::Fin,
            CtrlKind::FinAck,
            CtrlKind::Ping,
            CtrlKind::Pong,
        ] {
            let mut c = sample();
            c.kind = kind;
            let bytes = c.to_sealed_bytes().unwrap();
            assert_eq!(bytes.len(), c.wire_len());
            let (back, used) = SessionCtrl::parse_sealed(&bytes).unwrap();
            assert_eq!(back, c);
            assert_eq!(used, bytes.len());
        }
    }

    #[test]
    fn empty_port_list_roundtrips() {
        let c = SessionCtrl::new(CtrlKind::Ping, 7, 9);
        let bytes = c.to_sealed_bytes().unwrap();
        assert_eq!(bytes.len(), SESSION_CTRL_FIXED_LEN + SESSION_CTRL_CRC_LEN);
        let (back, _) = SessionCtrl::parse_sealed(&bytes).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn every_single_bit_flip_is_rejected_or_reframed() {
        let c = sample();
        let bytes = c.to_sealed_bytes().unwrap();
        for bit in 0..bytes.len() * 8 {
            let mut m = bytes.clone();
            m[bit / 8] ^= 1 << (bit % 8);
            let detected = match SessionCtrl::parse_sealed(&m) {
                Err(_) => true,
                Ok((_, used)) => used != m.len(),
            };
            assert!(detected, "flip at bit {bit} went unnoticed");
        }
    }

    #[test]
    fn truncation_at_every_cut_is_rejected() {
        let bytes = sample().to_sealed_bytes().unwrap();
        for cut in 0..bytes.len() {
            assert!(
                SessionCtrl::parse_sealed(&bytes[..cut]).is_err(),
                "cut at {cut} accepted"
            );
        }
    }

    #[test]
    fn zero_version_and_bad_kind_are_typed_errors() {
        let bytes = sample().to_sealed_bytes().unwrap();
        let mut zero_ver = bytes.clone();
        zero_ver[0] = 0;
        assert!(matches!(
            SessionCtrl::parse_sealed(&zero_ver),
            Err(WireError::BadCtrlVersion(0))
        ));
        // An unknown kind is rejected as such even before the CRC check
        // can vouch for it (re-seal so only the kind is wrong).
        let mut c = sample();
        c.kind = CtrlKind::Pong;
        let mut bytes = c.to_sealed_bytes().unwrap();
        bytes[1] = 99;
        let crc_at = bytes.len() - 2;
        let crc = crc16_ccitt(&bytes[..crc_at]).to_be_bytes();
        bytes[crc_at..].copy_from_slice(&crc);
        assert!(matches!(
            SessionCtrl::parse_sealed(&bytes),
            Err(WireError::BadCtrlKind(99))
        ));
    }

    #[test]
    fn oversized_port_list_is_rejected_at_emit() {
        let mut c = sample();
        c.ports = vec![1; 256];
        assert!(matches!(
            c.to_sealed_bytes(),
            Err(WireError::TooManyEntries { .. })
        ));
    }

    #[test]
    fn future_version_parses_and_surfaces() {
        let mut c = sample();
        c.version = 9;
        let bytes = c.to_sealed_bytes().unwrap();
        let (back, _) = SessionCtrl::parse_sealed(&bytes).unwrap();
        assert_eq!(back.version, 9);
    }
}
