//! Errors produced while parsing or emitting wire formats.

use core::fmt;

/// An error encountered while parsing or emitting a packet header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the structure it should contain did.
    ///
    /// Carries the number of bytes that were required.
    Truncated {
        /// Bytes needed to hold the complete structure.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// An unknown packet-type discriminant was found.
    BadPktType(u8),
    /// A feedback TLV used an unknown type tag.
    BadFeedbackType(u8),
    /// A feedback TLV's declared length disagrees with its type's fixed size.
    BadFeedbackLen {
        /// The TLV type tag.
        fb_type: u8,
        /// The declared value length.
        len: u8,
    },
    /// A list exceeded the maximum entry count representable on the wire.
    TooManyEntries {
        /// Which list overflowed (static description).
        list: &'static str,
        /// How many entries were requested.
        count: usize,
    },
    /// Reserved bytes were non-zero (likely header corruption).
    BadReserved,
    /// A sealed header's integrity-flags byte held an unexpected value.
    BadIntegrityFlags(u8),
    /// A sealed header's CRC did not match its contents (corruption).
    BadHeaderCrc,
    /// A session-control frame used an unknown kind discriminant.
    BadCtrlKind(u8),
    /// A session-control frame carried the reserved version byte 0.
    BadCtrlVersion(u8),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, got } => {
                write!(f, "truncated header: needed {needed} bytes, got {got}")
            }
            WireError::BadPktType(t) => write!(f, "unknown packet type {t:#04x}"),
            WireError::BadFeedbackType(t) => write!(f, "unknown feedback TLV type {t:#04x}"),
            WireError::BadFeedbackLen { fb_type, len } => {
                write!(
                    f,
                    "feedback TLV type {fb_type:#04x} has invalid length {len}"
                )
            }
            WireError::TooManyEntries { list, count } => {
                write!(f, "{list} list cannot hold {count} entries (max 255)")
            }
            WireError::BadReserved => write!(f, "reserved header bytes are non-zero"),
            WireError::BadIntegrityFlags(v) => {
                write!(f, "unexpected integrity-flags byte {v:#04x}")
            }
            WireError::BadHeaderCrc => write!(f, "header CRC mismatch (corrupted header)"),
            WireError::BadCtrlKind(k) => write!(f, "unknown session-control kind {k:#04x}"),
            WireError::BadCtrlVersion(v) => {
                write!(f, "invalid session-control version {v:#04x}")
            }
        }
    }
}

impl std::error::Error for WireError {}
