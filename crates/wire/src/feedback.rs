//! Pathlet congestion-feedback TLVs.
//!
//! "The feedback for each pathlet is identified by a Type-Length-Value.
//! This allows for algorithms like RCP and DCTCP to coexist." (paper §3.1.3)
//!
//! Each entry in the path-feedback / ACK-path-feedback lists is a
//! `(PathletId, TrafficClass, Feedback)` tuple; the feedback itself is one
//! of the TLVs below. Switches append entries as a packet traverses them;
//! the receiver copies the accumulated list into the `ACK Path Feedback`
//! list of its acknowledgement, closing the loop back to the sender.

use serde::{Deserialize, Serialize};

use crate::error::WireError;
use crate::types::{PathletId, TrafficClass};

/// TLV type tags on the wire.
mod tag {
    pub const ECN_MARK: u8 = 0x01;
    pub const ECN_FRACTION: u8 = 0x02;
    pub const RCP_RATE: u8 = 0x03;
    pub const DELAY: u8 = 0x04;
    pub const QUEUE_DEPTH: u8 = 0x05;
    pub const PATH_CHANGE: u8 = 0x06;
    pub const TRIM: u8 = 0x07;
}

/// A single piece of per-pathlet congestion feedback.
///
/// Different pathlets may use different variants simultaneously — that is
/// the point: a DCTCP-like controller consumes [`Feedback::EcnMark`], an
/// RCP-like controller consumes [`Feedback::RcpRate`], a Swift-like
/// controller consumes [`Feedback::Delay`], all coexisting in one packet's
/// feedback list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Feedback {
    /// Binary congestion-experienced indication for this packet on this
    /// pathlet (DCTCP-style single-bit feedback, but attributed to a
    /// specific pathlet rather than to the whole path).
    EcnMark {
        /// True if the pathlet's queue was above its marking threshold.
        ce: bool,
    },
    /// Aggregated marking fraction in units of 1/65535 (paper §4 "feedback
    /// can be aggregated" — a switch may report its recent marking rate
    /// instead of a per-packet bit, shrinking header overhead).
    EcnFraction {
        /// Fraction of recently forwarded packets that were marked,
        /// in units of 1/65535.
        fraction: u16,
    },
    /// Explicit rate allocation in Mbit/s (RCP-style multi-bit feedback).
    RcpRate {
        /// The rate this pathlet currently allocates to a compliant flow.
        mbps: u32,
    },
    /// Queueing-delay sample in nanoseconds (Swift-style delay feedback).
    Delay {
        /// Time the packet spent queued at this pathlet.
        ns: u32,
    },
    /// Instantaneous queue depth in bytes (for load-aware balancing).
    QueueDepth {
        /// Bytes currently enqueued at this pathlet's queue.
        bytes: u32,
    },
    /// Explicit notification that the network re-routed this traffic onto a
    /// new pathlet (e.g. an optical switch reconfigured). Lets senders
    /// switch congestion state in zero RTTs instead of inferring the change.
    PathChange {
        /// The pathlet now in use.
        new_path: PathletId,
    },
    /// The payload of this packet was trimmed (NDP-style). Zero-length TLV.
    Trim,
}

impl Feedback {
    /// The TLV type tag used on the wire.
    pub fn wire_type(&self) -> u8 {
        match self {
            Feedback::EcnMark { .. } => tag::ECN_MARK,
            Feedback::EcnFraction { .. } => tag::ECN_FRACTION,
            Feedback::RcpRate { .. } => tag::RCP_RATE,
            Feedback::Delay { .. } => tag::DELAY,
            Feedback::QueueDepth { .. } => tag::QUEUE_DEPTH,
            Feedback::PathChange { .. } => tag::PATH_CHANGE,
            Feedback::Trim => tag::TRIM,
        }
    }

    /// The length in bytes of the TLV *value* (excluding the 2-byte
    /// type/length prefix).
    pub fn value_len(&self) -> usize {
        match self {
            Feedback::EcnMark { .. } => 1,
            Feedback::EcnFraction { .. } => 2,
            Feedback::RcpRate { .. } => 4,
            Feedback::Delay { .. } => 4,
            Feedback::QueueDepth { .. } => 4,
            Feedback::PathChange { .. } => 2,
            Feedback::Trim => 0,
        }
    }

    /// Write the TLV value into `buf` (which must be exactly
    /// [`value_len`](Self::value_len) bytes).
    pub fn emit_value(&self, buf: &mut [u8]) {
        debug_assert_eq!(buf.len(), self.value_len());
        match *self {
            Feedback::EcnMark { ce } => buf[0] = ce as u8,
            Feedback::EcnFraction { fraction } => buf.copy_from_slice(&fraction.to_be_bytes()),
            Feedback::RcpRate { mbps } => buf.copy_from_slice(&mbps.to_be_bytes()),
            Feedback::Delay { ns } => buf.copy_from_slice(&ns.to_be_bytes()),
            Feedback::QueueDepth { bytes } => buf.copy_from_slice(&bytes.to_be_bytes()),
            Feedback::PathChange { new_path } => buf.copy_from_slice(&new_path.0.to_be_bytes()),
            Feedback::Trim => {}
        }
    }

    /// Parse a TLV value given its type tag and value bytes.
    pub fn parse_value(fb_type: u8, value: &[u8]) -> Result<Feedback, WireError> {
        let want = match fb_type {
            tag::ECN_MARK => 1,
            tag::ECN_FRACTION => 2,
            tag::RCP_RATE => 4,
            tag::DELAY => 4,
            tag::QUEUE_DEPTH => 4,
            tag::PATH_CHANGE => 2,
            tag::TRIM => 0,
            other => return Err(WireError::BadFeedbackType(other)),
        };
        if value.len() != want {
            return Err(WireError::BadFeedbackLen {
                fb_type,
                len: value.len() as u8,
            });
        }
        Ok(match fb_type {
            tag::ECN_MARK => Feedback::EcnMark { ce: value[0] != 0 },
            tag::ECN_FRACTION => Feedback::EcnFraction {
                fraction: u16::from_be_bytes([value[0], value[1]]),
            },
            tag::RCP_RATE => Feedback::RcpRate {
                mbps: u32::from_be_bytes([value[0], value[1], value[2], value[3]]),
            },
            tag::DELAY => Feedback::Delay {
                ns: u32::from_be_bytes([value[0], value[1], value[2], value[3]]),
            },
            tag::QUEUE_DEPTH => Feedback::QueueDepth {
                bytes: u32::from_be_bytes([value[0], value[1], value[2], value[3]]),
            },
            tag::PATH_CHANGE => Feedback::PathChange {
                new_path: PathletId(u16::from_be_bytes([value[0], value[1]])),
            },
            tag::TRIM => Feedback::Trim,
            _ => unreachable!("validated above"),
        })
    }
}

/// One entry of the path-feedback (or ACK-path-feedback) list:
/// which pathlet, which traffic class, and what the pathlet reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PathFeedback {
    /// The pathlet this feedback describes.
    pub path: PathletId,
    /// The traffic class the reporting device assigned to this packet.
    pub tc: TrafficClass,
    /// The feedback itself.
    pub feedback: Feedback,
}

impl PathFeedback {
    /// Total encoded size of this entry on the wire.
    pub fn wire_len(&self) -> usize {
        crate::PATH_FEEDBACK_PREFIX_LEN + self.feedback.value_len()
    }

    /// The largest possible encoded size of any feedback entry: the
    /// prefix plus the widest TLV value (the 4-byte variants). Datagram
    /// budgeting uses this to bound a header's sealed size without
    /// knowing which feedback kinds it will carry.
    pub const MAX_WIRE_LEN: usize = crate::PATH_FEEDBACK_PREFIX_LEN + 4;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(fb: Feedback) {
        let mut buf = vec![0u8; fb.value_len()];
        fb.emit_value(&mut buf);
        let back = Feedback::parse_value(fb.wire_type(), &buf).unwrap();
        assert_eq!(fb, back);
    }

    #[test]
    fn max_wire_len_covers_every_variant() {
        let widest = [
            Feedback::EcnMark { ce: true },
            Feedback::EcnFraction { fraction: u16::MAX },
            Feedback::RcpRate { mbps: u32::MAX },
            Feedback::Delay { ns: u32::MAX },
            Feedback::QueueDepth { bytes: u32::MAX },
            Feedback::PathChange {
                new_path: PathletId(u16::MAX),
            },
            Feedback::Trim,
        ];
        for fb in widest {
            let e = PathFeedback {
                path: PathletId(0),
                tc: TrafficClass::BEST_EFFORT,
                feedback: fb,
            };
            assert!(e.wire_len() <= PathFeedback::MAX_WIRE_LEN, "{fb:?}");
        }
    }

    #[test]
    fn tlv_roundtrips() {
        roundtrip(Feedback::EcnMark { ce: true });
        roundtrip(Feedback::EcnMark { ce: false });
        roundtrip(Feedback::EcnFraction { fraction: 0 });
        roundtrip(Feedback::EcnFraction { fraction: 65535 });
        roundtrip(Feedback::RcpRate { mbps: 100_000 });
        roundtrip(Feedback::Delay { ns: 1_234_567 });
        roundtrip(Feedback::QueueDepth { bytes: 128 * 1500 });
        roundtrip(Feedback::PathChange {
            new_path: PathletId(42),
        });
        roundtrip(Feedback::Trim);
    }

    #[test]
    fn rejects_unknown_type() {
        assert_eq!(
            Feedback::parse_value(0x7f, &[]),
            Err(WireError::BadFeedbackType(0x7f))
        );
    }

    #[test]
    fn rejects_wrong_length() {
        assert_eq!(
            Feedback::parse_value(tag::RCP_RATE, &[1, 2]),
            Err(WireError::BadFeedbackLen {
                fb_type: tag::RCP_RATE,
                len: 2
            })
        );
        assert_eq!(
            Feedback::parse_value(tag::TRIM, &[0]),
            Err(WireError::BadFeedbackLen {
                fb_type: tag::TRIM,
                len: 1
            })
        );
    }

    #[test]
    fn entry_wire_len() {
        let e = PathFeedback {
            path: PathletId(1),
            tc: TrafficClass(0),
            feedback: Feedback::RcpRate { mbps: 10 },
        };
        assert_eq!(e.wire_len(), 9);
        let t = PathFeedback {
            path: PathletId(1),
            tc: TrafficClass(0),
            feedback: Feedback::Trim,
        };
        assert_eq!(t.wire_len(), 5);
    }
}
