//! The owned, high-level MTP header representation.
//!
//! [`MtpHeader`] mirrors Figure 4 of the paper field-for-field. It is the
//! form carried inside simulated packets and manipulated by endpoints and
//! in-network devices; [`MtpHeader::emit`] / [`MtpHeader::parse`] convert to
//! and from the byte-exact wire format documented in the crate root.

use serde::{Deserialize, Serialize};

use crate::error::WireError;
use crate::feedback::{Feedback, PathFeedback};
use crate::types::{flags, EntityId, MsgId, PathletId, PktNum, PktType, TrafficClass};
use crate::{FIXED_HEADER_LEN, PATH_EXCLUDE_ENTRY_LEN, PATH_FEEDBACK_PREFIX_LEN, SACK_ENTRY_LEN};

/// One entry of the path-exclude list: the sender asks the network not to
/// route this packet over the given pathlet/TC because the sender has
/// received feedback that it is congested (paper §3.1.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PathExclude {
    /// The pathlet the sender wants avoided.
    pub path: PathletId,
    /// The traffic class for which the exclusion applies.
    pub tc: TrafficClass,
}

/// One entry of the SACK or NACK list: acknowledgements in MTP name
/// `(message, packet)` pairs, never byte ranges (paper §3.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SackEntry {
    /// The message the entry refers to.
    pub msg: MsgId,
    /// The packet number within that message.
    pub pkt: PktNum,
}

/// The complete MTP packet header (paper Figure 4).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MtpHeader {
    /// Source application port.
    pub src_port: u16,
    /// Destination application port.
    pub dst_port: u16,
    /// What kind of packet this is.
    pub pkt_type: PktType,
    /// Application-assigned relative priority of this message.
    pub msg_pri: u8,
    /// Traffic class assigned to this message.
    pub tc: TrafficClass,
    /// Header flags (see [`crate::types::flags`]).
    pub flags: u8,
    /// Unique ID among all outstanding messages from this end-host.
    pub msg_id: MsgId,
    /// Originating entity (tenant) for per-entity isolation.
    pub entity: EntityId,
    /// Message length in packets.
    pub msg_len_pkts: u32,
    /// Message length in bytes.
    pub msg_len_bytes: u32,
    /// This packet's number within the message (0-based).
    pub pkt_num: PktNum,
    /// This packet's payload length in bytes.
    pub pkt_len: u16,
    /// This packet's byte offset within the message.
    pub pkt_offset: u32,
    /// Pathlets the sender asks the network to avoid.
    pub path_exclude: Vec<PathExclude>,
    /// Per-pathlet feedback appended by network devices en route.
    pub path_feedback: Vec<PathFeedback>,
    /// Feedback echoed by the receiver back to the sender.
    pub ack_path_feedback: Vec<PathFeedback>,
    /// Selective acknowledgements: packets that arrived.
    pub sack: Vec<SackEntry>,
    /// Negative acknowledgements: packets known missing.
    pub nack: Vec<SackEntry>,
}

impl Default for MtpHeader {
    fn default() -> Self {
        MtpHeader {
            src_port: 0,
            dst_port: 0,
            pkt_type: PktType::Data,
            msg_pri: 0,
            tc: TrafficClass::BEST_EFFORT,
            flags: 0,
            msg_id: MsgId(0),
            entity: EntityId(0),
            msg_len_pkts: 0,
            msg_len_bytes: 0,
            pkt_num: PktNum(0),
            pkt_len: 0,
            pkt_offset: 0,
            path_exclude: Vec::new(),
            path_feedback: Vec::new(),
            ack_path_feedback: Vec::new(),
            sack: Vec::new(),
            nack: Vec::new(),
        }
    }
}

impl MtpHeader {
    /// Restore the default-constructed state while keeping the capacity of
    /// the variable-length sections, so a recycled header (see the
    /// simulator's header pool) re-fills them without reallocating.
    pub fn reset(&mut self) {
        self.src_port = 0;
        self.dst_port = 0;
        self.pkt_type = PktType::Data;
        self.msg_pri = 0;
        self.tc = TrafficClass::BEST_EFFORT;
        self.flags = 0;
        self.msg_id = MsgId(0);
        self.entity = EntityId(0);
        self.msg_len_pkts = 0;
        self.msg_len_bytes = 0;
        self.pkt_num = PktNum(0);
        self.pkt_len = 0;
        self.pkt_offset = 0;
        self.path_exclude.clear();
        self.path_feedback.clear();
        self.ack_path_feedback.clear();
        self.sack.clear();
        self.nack.clear();
    }

    /// Total encoded length of this header in bytes.
    pub fn wire_len(&self) -> usize {
        FIXED_HEADER_LEN
            + self.path_exclude.len() * PATH_EXCLUDE_ENTRY_LEN
            + self
                .path_feedback
                .iter()
                .map(PathFeedback::wire_len)
                .sum::<usize>()
            + self
                .ack_path_feedback
                .iter()
                .map(PathFeedback::wire_len)
                .sum::<usize>()
            + (self.sack.len() + self.nack.len()) * SACK_ENTRY_LEN
    }

    /// True if this packet carries the [`flags::LAST_PKT`] flag.
    pub fn is_last_pkt(&self) -> bool {
        self.flags & flags::LAST_PKT != 0
    }

    /// True if this packet is a retransmission.
    pub fn is_retx(&self) -> bool {
        self.flags & flags::RETX != 0
    }

    /// True if the packet's payload was trimmed by a switch.
    pub fn is_trimmed(&self) -> bool {
        self.flags & flags::TRIMMED != 0
    }

    /// Serialize into a freshly allocated buffer.
    pub fn to_bytes(&self) -> Result<Vec<u8>, WireError> {
        let mut buf = vec![0u8; self.wire_len()];
        self.emit(&mut buf)?;
        Ok(buf)
    }

    /// Serialize into `buf`, which must be at least
    /// [`wire_len`](Self::wire_len) bytes. Returns the number of bytes
    /// written.
    pub fn emit(&self, buf: &mut [u8]) -> Result<usize, WireError> {
        let need = self.wire_len();
        if buf.len() < need {
            return Err(WireError::Truncated {
                needed: need,
                got: buf.len(),
            });
        }
        for (list, name) in [
            (self.path_exclude.len(), "path_exclude"),
            (self.path_feedback.len(), "path_feedback"),
            (self.ack_path_feedback.len(), "ack_path_feedback"),
            (self.sack.len(), "sack"),
            (self.nack.len(), "nack"),
        ] {
            if list > u8::MAX as usize {
                return Err(WireError::TooManyEntries {
                    list: name,
                    count: list,
                });
            }
        }

        // One length check up front (`need >= FIXED_HEADER_LEN` always),
        // then every fixed-field store compiles to a plain offset write.
        let fixed: &mut [u8; FIXED_HEADER_LEN] = (&mut buf[..FIXED_HEADER_LEN])
            .try_into()
            .expect("length checked above");
        fixed[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        fixed[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        fixed[4] = self.pkt_type as u8;
        fixed[5] = self.msg_pri;
        fixed[6] = self.tc.0;
        fixed[7] = self.flags;
        fixed[8..16].copy_from_slice(&self.msg_id.0.to_be_bytes());
        fixed[16..18].copy_from_slice(&self.entity.0.to_be_bytes());
        fixed[18..22].copy_from_slice(&self.msg_len_pkts.to_be_bytes());
        fixed[22..26].copy_from_slice(&self.msg_len_bytes.to_be_bytes());
        fixed[26..30].copy_from_slice(&self.pkt_num.0.to_be_bytes());
        fixed[30..32].copy_from_slice(&self.pkt_len.to_be_bytes());
        fixed[32..36].copy_from_slice(&self.pkt_offset.to_be_bytes());
        fixed[36] = self.path_exclude.len() as u8;
        fixed[37] = self.path_feedback.len() as u8;
        fixed[38] = self.ack_path_feedback.len() as u8;
        fixed[39] = self.sack.len() as u8;
        fixed[40] = self.nack.len() as u8;
        fixed[41] = 0;
        fixed[42] = 0;
        fixed[43] = 0;

        let mut at = FIXED_HEADER_LEN;
        for e in &self.path_exclude {
            buf[at..at + 2].copy_from_slice(&e.path.0.to_be_bytes());
            buf[at + 2] = e.tc.0;
            at += PATH_EXCLUDE_ENTRY_LEN;
        }
        for list in [&self.path_feedback, &self.ack_path_feedback] {
            for e in list {
                buf[at..at + 2].copy_from_slice(&e.path.0.to_be_bytes());
                buf[at + 2] = e.tc.0;
                buf[at + 3] = e.feedback.wire_type();
                let vlen = e.feedback.value_len();
                buf[at + 4] = vlen as u8;
                e.feedback.emit_value(
                    &mut buf[at + PATH_FEEDBACK_PREFIX_LEN..at + PATH_FEEDBACK_PREFIX_LEN + vlen],
                );
                at += PATH_FEEDBACK_PREFIX_LEN + vlen;
            }
        }
        for list in [&self.sack, &self.nack] {
            for e in list {
                let entry: &mut [u8; SACK_ENTRY_LEN] = (&mut buf[at..at + SACK_ENTRY_LEN])
                    .try_into()
                    .expect("length checked above");
                entry[0..8].copy_from_slice(&e.msg.0.to_be_bytes());
                entry[8..12].copy_from_slice(&e.pkt.0.to_be_bytes());
                at += SACK_ENTRY_LEN;
            }
        }
        debug_assert_eq!(at, need);
        Ok(at)
    }

    /// Total encoded length of the *sealed* form of this header: the
    /// header with its CRC filled in, plus the payload-checksum trailer.
    pub fn sealed_wire_len(&self) -> usize {
        self.wire_len() + crate::integrity::PAYLOAD_CSUM_LEN
    }

    /// Upper bound on the sealed size of *any* header whose list sections
    /// hold at most the given entry counts, assuming the widest feedback
    /// TLV for every feedback entry. Real-wire drivers use this to prove
    /// a datagram budget can never be exceeded at seal time — the guard
    /// holds for the worst header shape the protocol can emit, not just
    /// the ones a particular run happened to produce.
    pub fn max_sealed_wire_len(
        n_exclude: usize,
        n_feedback: usize,
        n_ack_feedback: usize,
        n_sack: usize,
        n_nack: usize,
    ) -> usize {
        FIXED_HEADER_LEN
            + n_exclude * PATH_EXCLUDE_ENTRY_LEN
            + (n_feedback + n_ack_feedback) * PathFeedback::MAX_WIRE_LEN
            + (n_sack + n_nack) * SACK_ENTRY_LEN
            + crate::integrity::PAYLOAD_CSUM_LEN
    }

    /// CRC-32 over the payload's wire descriptor (`msg_id`, `pkt_num`,
    /// `pkt_offset`, `pkt_len`). Payload bytes are not simulated, so this
    /// descriptor stands in for them: any corruption of the fields that
    /// tie a payload to its place in a message is caught, and the
    /// simulator flags hits to the simulated payload region separately.
    pub fn payload_csum(&self) -> u32 {
        let mut d = [0u8; 18];
        d[0..8].copy_from_slice(&self.msg_id.0.to_be_bytes());
        d[8..12].copy_from_slice(&self.pkt_num.0.to_be_bytes());
        d[12..16].copy_from_slice(&self.pkt_offset.to_be_bytes());
        d[16..18].copy_from_slice(&self.pkt_len.to_be_bytes());
        crate::integrity::crc32(&d)
    }

    /// Serialize the sealed form: the wire header with byte 41 set to
    /// [`INTEGRITY_SEALED`](crate::integrity::INTEGRITY_SEALED), a
    /// CRC-16/CCITT of the whole header in bytes 42–43 (computed with
    /// those two bytes as zero), and the 4-byte payload-checksum trailer.
    pub fn to_sealed_bytes(&self) -> Result<Vec<u8>, WireError> {
        let mut buf = vec![0u8; self.sealed_wire_len()];
        self.emit_sealed(&mut buf)?;
        Ok(buf)
    }

    /// Serialize the sealed form into `buf`, which must be at least
    /// [`sealed_wire_len`](Self::sealed_wire_len) bytes. Returns the
    /// number of bytes written. Unlike
    /// [`to_sealed_bytes`](Self::to_sealed_bytes) this allocates nothing,
    /// so per-frame sealing (the corruption studies' hot path) can run
    /// out of a recycled buffer.
    pub fn emit_sealed(&self, buf: &mut [u8]) -> Result<usize, WireError> {
        let need = self.sealed_wire_len();
        if buf.len() < need {
            return Err(WireError::Truncated {
                needed: need,
                got: buf.len(),
            });
        }
        let used = self.emit(buf)?;
        buf[41] = crate::integrity::INTEGRITY_SEALED;
        // Bytes 42–43 are zero here (emit wrote them so), which is exactly
        // how the verifier recomputes the CRC.
        let crc = crate::integrity::crc16_ccitt(&buf[..used]);
        buf[42..44].copy_from_slice(&crc.to_be_bytes());
        buf[used..need].copy_from_slice(&self.payload_csum().to_be_bytes());
        Ok(need)
    }

    /// Parse and verify a sealed header from the front of `buf`.
    ///
    /// Returns the header, the total bytes consumed (header + trailer),
    /// and whether the payload checksum in the trailer matched. A CRC
    /// failure anywhere in the header region is an error; a mismatched
    /// *payload* checksum is not — the header is trustworthy, the payload
    /// is not, and the caller (a receiving endpoint) decides what to do.
    ///
    /// The integrity-flags byte must be exactly `INTEGRITY_SEALED`: the
    /// sealed parser never falls back to the legacy all-zero form, so a
    /// corrupted flags byte cannot disguise a damaged header as a
    /// checksum-free legacy one.
    pub fn parse_sealed(buf: &[u8]) -> Result<(MtpHeader, usize, bool), WireError> {
        if buf.len() < FIXED_HEADER_LEN {
            return Err(WireError::Truncated {
                needed: FIXED_HEADER_LEN,
                got: buf.len(),
            });
        }
        if buf[41] != crate::integrity::INTEGRITY_SEALED {
            return Err(WireError::BadIntegrityFlags(buf[41]));
        }
        // The structural walk runs directly on `buf` with the legacy
        // parser's reserved-byte check suppressed (bytes 41–43 carry the
        // integrity flags and CRC here, not zeros); the walk itself is
        // total and panic-free, so running it before the CRC check is
        // safe — nothing is *trusted* until the CRC over the walked
        // region matches. The CRC is recomputed by streaming the buffer
        // around bytes 42–43 (zero at sealing time), so no scratch copy
        // of the header is ever made.
        let (hdr, used) = MtpHeader::parse_inner(buf, true)?;
        let stored_crc = u16::from_be_bytes([buf[42], buf[43]]);
        let mut crc = crate::integrity::Crc16::new();
        crc.update(&buf[..42]);
        crc.update(&[0, 0]);
        crc.update(&buf[44..used]);
        if crc.finish() != stored_crc {
            return Err(WireError::BadHeaderCrc);
        }
        let need = used + crate::integrity::PAYLOAD_CSUM_LEN;
        if buf.len() < need {
            return Err(WireError::Truncated {
                needed: need,
                got: buf.len(),
            });
        }
        let stored_csum =
            u32::from_be_bytes([buf[used], buf[used + 1], buf[used + 2], buf[used + 3]]);
        let payload_ok = stored_csum == hdr.payload_csum();
        Ok((hdr, need, payload_ok))
    }

    /// Parse a header from the front of `buf`. Returns the header and the
    /// number of bytes it occupied.
    pub fn parse(buf: &[u8]) -> Result<(MtpHeader, usize), WireError> {
        Self::parse_inner(buf, false)
    }

    /// The shared structural walk behind [`parse`](Self::parse) and
    /// [`parse_sealed`](Self::parse_sealed). When `sealed` is set, bytes
    /// 41–43 are the caller's responsibility (integrity flags + CRC);
    /// otherwise they must be zero, as the legacy form requires.
    fn parse_inner(buf: &[u8], sealed: bool) -> Result<(MtpHeader, usize), WireError> {
        if buf.len() < FIXED_HEADER_LEN {
            return Err(WireError::Truncated {
                needed: FIXED_HEADER_LEN,
                got: buf.len(),
            });
        }
        let pkt_type = PktType::from_wire(buf[4]).ok_or(WireError::BadPktType(buf[4]))?;
        if !sealed && (buf[41] != 0 || buf[42] != 0 || buf[43] != 0) {
            return Err(WireError::BadReserved);
        }
        let mut hdr = MtpHeader {
            src_port: u16::from_be_bytes([buf[0], buf[1]]),
            dst_port: u16::from_be_bytes([buf[2], buf[3]]),
            pkt_type,
            msg_pri: buf[5],
            tc: TrafficClass(buf[6]),
            flags: buf[7],
            msg_id: MsgId(u64::from_be_bytes([
                buf[8], buf[9], buf[10], buf[11], buf[12], buf[13], buf[14], buf[15],
            ])),
            entity: EntityId(u16::from_be_bytes([buf[16], buf[17]])),
            msg_len_pkts: u32::from_be_bytes([buf[18], buf[19], buf[20], buf[21]]),
            msg_len_bytes: u32::from_be_bytes([buf[22], buf[23], buf[24], buf[25]]),
            pkt_num: PktNum(u32::from_be_bytes([buf[26], buf[27], buf[28], buf[29]])),
            pkt_len: u16::from_be_bytes([buf[30], buf[31]]),
            pkt_offset: u32::from_be_bytes([buf[32], buf[33], buf[34], buf[35]]),
            ..MtpHeader::default()
        };
        let n_excl = buf[36] as usize;
        let n_fb = buf[37] as usize;
        let n_ack_fb = buf[38] as usize;
        let n_sack = buf[39] as usize;
        let n_nack = buf[40] as usize;

        let mut at = FIXED_HEADER_LEN;
        let need = |at: usize, n: usize, buf: &[u8]| -> Result<(), WireError> {
            if buf.len() < at + n {
                Err(WireError::Truncated {
                    needed: at + n,
                    got: buf.len(),
                })
            } else {
                Ok(())
            }
        };

        hdr.path_exclude.reserve(n_excl);
        for _ in 0..n_excl {
            need(at, PATH_EXCLUDE_ENTRY_LEN, buf)?;
            hdr.path_exclude.push(PathExclude {
                path: PathletId(u16::from_be_bytes([buf[at], buf[at + 1]])),
                tc: TrafficClass(buf[at + 2]),
            });
            at += PATH_EXCLUDE_ENTRY_LEN;
        }
        for (count, acked) in [(n_fb, false), (n_ack_fb, true)] {
            for _ in 0..count {
                need(at, PATH_FEEDBACK_PREFIX_LEN, buf)?;
                let path = PathletId(u16::from_be_bytes([buf[at], buf[at + 1]]));
                let tc = TrafficClass(buf[at + 2]);
                let fb_type = buf[at + 3];
                let vlen = buf[at + 4] as usize;
                need(at + PATH_FEEDBACK_PREFIX_LEN, vlen, buf)?;
                let value =
                    &buf[at + PATH_FEEDBACK_PREFIX_LEN..at + PATH_FEEDBACK_PREFIX_LEN + vlen];
                let feedback = Feedback::parse_value(fb_type, value)?;
                let entry = PathFeedback { path, tc, feedback };
                if acked {
                    hdr.ack_path_feedback.push(entry);
                } else {
                    hdr.path_feedback.push(entry);
                }
                at += PATH_FEEDBACK_PREFIX_LEN + vlen;
            }
        }
        for (count, is_nack) in [(n_sack, false), (n_nack, true)] {
            for _ in 0..count {
                need(at, SACK_ENTRY_LEN, buf)?;
                let entry = SackEntry {
                    msg: MsgId(u64::from_be_bytes([
                        buf[at],
                        buf[at + 1],
                        buf[at + 2],
                        buf[at + 3],
                        buf[at + 4],
                        buf[at + 5],
                        buf[at + 6],
                        buf[at + 7],
                    ])),
                    pkt: PktNum(u32::from_be_bytes([
                        buf[at + 8],
                        buf[at + 9],
                        buf[at + 10],
                        buf[at + 11],
                    ])),
                };
                if is_nack {
                    hdr.nack.push(entry);
                } else {
                    hdr.sack.push(entry);
                }
                at += SACK_ENTRY_LEN;
            }
        }
        Ok((hdr, at))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MtpHeader {
        MtpHeader {
            src_port: 4000,
            dst_port: 80,
            pkt_type: PktType::Data,
            msg_pri: 3,
            tc: TrafficClass(2),
            flags: flags::LAST_PKT | flags::RETX,
            msg_id: MsgId(0xDEADBEEF_12345678),
            entity: EntityId(7),
            msg_len_pkts: 12,
            msg_len_bytes: 16 * 1024,
            pkt_num: PktNum(11),
            pkt_len: 1460,
            pkt_offset: 11 * 1460,
            path_exclude: vec![PathExclude {
                path: PathletId(9),
                tc: TrafficClass(2),
            }],
            path_feedback: vec![
                PathFeedback {
                    path: PathletId(1),
                    tc: TrafficClass(0),
                    feedback: Feedback::EcnMark { ce: true },
                },
                PathFeedback {
                    path: PathletId(2),
                    tc: TrafficClass(0),
                    feedback: Feedback::RcpRate { mbps: 40_000 },
                },
            ],
            ack_path_feedback: vec![PathFeedback {
                path: PathletId(1),
                tc: TrafficClass(0),
                feedback: Feedback::Delay { ns: 12_000 },
            }],
            sack: vec![
                SackEntry {
                    msg: MsgId(5),
                    pkt: PktNum(0),
                },
                SackEntry {
                    msg: MsgId(5),
                    pkt: PktNum(2),
                },
            ],
            nack: vec![SackEntry {
                msg: MsgId(5),
                pkt: PktNum(1),
            }],
        }
    }

    #[test]
    fn roundtrip_full() {
        let hdr = sample();
        let bytes = hdr.to_bytes().unwrap();
        assert_eq!(bytes.len(), hdr.wire_len());
        let (back, used) = MtpHeader::parse(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(back, hdr);
    }

    #[test]
    fn roundtrip_minimal() {
        let hdr = MtpHeader::default();
        let bytes = hdr.to_bytes().unwrap();
        assert_eq!(bytes.len(), FIXED_HEADER_LEN);
        let (back, used) = MtpHeader::parse(&bytes).unwrap();
        assert_eq!(used, FIXED_HEADER_LEN);
        assert_eq!(back, hdr);
    }

    #[test]
    fn parse_rejects_truncated_fixed() {
        let hdr = sample();
        let bytes = hdr.to_bytes().unwrap();
        for cut in [0, 1, FIXED_HEADER_LEN - 1] {
            assert!(matches!(
                MtpHeader::parse(&bytes[..cut]),
                Err(WireError::Truncated { .. })
            ));
        }
    }

    #[test]
    fn parse_rejects_truncated_lists() {
        let hdr = sample();
        let bytes = hdr.to_bytes().unwrap();
        // Every cut point within the variable section must error, not panic.
        for cut in FIXED_HEADER_LEN..bytes.len() {
            assert!(matches!(
                MtpHeader::parse(&bytes[..cut]),
                Err(WireError::Truncated { .. })
            ));
        }
    }

    #[test]
    fn parse_rejects_bad_type() {
        let hdr = MtpHeader::default();
        let mut bytes = hdr.to_bytes().unwrap();
        bytes[4] = 0x77;
        assert_eq!(MtpHeader::parse(&bytes), Err(WireError::BadPktType(0x77)));
    }

    #[test]
    fn parse_rejects_nonzero_reserved() {
        let hdr = MtpHeader::default();
        let mut bytes = hdr.to_bytes().unwrap();
        bytes[42] = 1;
        assert_eq!(MtpHeader::parse(&bytes), Err(WireError::BadReserved));
    }

    #[test]
    fn emit_rejects_short_buffer() {
        let hdr = sample();
        let mut buf = vec![0u8; hdr.wire_len() - 1];
        assert!(matches!(
            hdr.emit(&mut buf),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn emit_rejects_oversized_list() {
        let hdr = MtpHeader {
            sack: (0..300)
                .map(|i| SackEntry {
                    msg: MsgId(i),
                    pkt: PktNum(0),
                })
                .collect(),
            ..MtpHeader::default()
        };
        assert!(matches!(
            hdr.to_bytes(),
            Err(WireError::TooManyEntries { list: "sack", .. })
        ));
    }

    #[test]
    fn sealed_roundtrip_and_lengths() {
        let hdr = sample();
        let sealed = hdr.to_sealed_bytes().unwrap();
        assert_eq!(sealed.len(), hdr.sealed_wire_len());
        assert_eq!(sealed.len(), hdr.wire_len() + 4);
        let (back, used, payload_ok) = MtpHeader::parse_sealed(&sealed).unwrap();
        assert_eq!(used, sealed.len());
        assert!(payload_ok);
        assert_eq!(back, hdr);
    }

    #[test]
    fn sealed_rejects_legacy_and_legacy_rejects_sealed() {
        let hdr = sample();
        let legacy = hdr.to_bytes().unwrap();
        assert_eq!(
            MtpHeader::parse_sealed(&legacy),
            Err(WireError::BadIntegrityFlags(0))
        );
        let sealed = hdr.to_sealed_bytes().unwrap();
        assert_eq!(MtpHeader::parse(&sealed), Err(WireError::BadReserved));
    }

    #[test]
    fn sealed_detects_every_single_bit_flip_in_header() {
        let hdr = sample();
        let sealed = hdr.to_sealed_bytes().unwrap();
        let hdr_bits = (sealed.len() - 4) * 8;
        for bit in 0..hdr_bits {
            let mut m = sealed.clone();
            m[bit / 8] ^= 1 << (bit % 8);
            assert!(
                MtpHeader::parse_sealed(&m).is_err(),
                "flip at bit {bit} must be detected"
            );
        }
    }

    #[test]
    fn sealed_trailer_flip_flags_payload_not_header() {
        let hdr = sample();
        let mut sealed = hdr.to_sealed_bytes().unwrap();
        let last = sealed.len() - 1;
        sealed[last] ^= 0x40;
        let (back, _, payload_ok) = MtpHeader::parse_sealed(&sealed).unwrap();
        assert_eq!(back, hdr, "header region untouched");
        assert!(!payload_ok, "payload checksum must fail");
    }

    #[test]
    fn sealed_rejects_truncation_at_every_cut() {
        let sealed = sample().to_sealed_bytes().unwrap();
        for cut in 0..sealed.len() {
            assert!(
                MtpHeader::parse_sealed(&sealed[..cut]).is_err(),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn flag_helpers() {
        let hdr = sample();
        assert!(hdr.is_last_pkt());
        assert!(hdr.is_retx());
        assert!(!hdr.is_trimmed());
    }

    #[test]
    fn wire_len_matches_emitted() {
        let mut hdr = sample();
        hdr.path_feedback.push(PathFeedback {
            path: PathletId(3),
            tc: TrafficClass(1),
            feedback: Feedback::Trim,
        });
        assert_eq!(hdr.to_bytes().unwrap().len(), hdr.wire_len());
    }
}
