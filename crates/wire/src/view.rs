//! A zero-copy typed view over an encoded MTP header.
//!
//! [`MtpView`] reads fields directly out of a byte slice without allocating,
//! in the style of `smoltcp`'s packet wrappers. It is what a
//! resource-constrained in-network device (a switch pipeline, an FPGA NIC)
//! would use: it can answer "what message is this, how big is it, which
//! packet of the message am I holding" by looking at fixed offsets, which is
//! precisely the *low buffering and computation* property the paper requires
//! of the transport (§2.2).
//!
//! The view validates length on construction, so accessors are infallible.

use crate::error::WireError;
use crate::feedback::{Feedback, PathFeedback};
use crate::header::{PathExclude, SackEntry};
use crate::types::{EntityId, MsgId, PathletId, PktNum, PktType, TrafficClass};
use crate::{FIXED_HEADER_LEN, PATH_EXCLUDE_ENTRY_LEN, PATH_FEEDBACK_PREFIX_LEN, SACK_ENTRY_LEN};

/// A validated, zero-copy view of an MTP header within a byte buffer.
#[derive(Debug, Clone, Copy)]
pub struct MtpView<'a> {
    buf: &'a [u8],
    /// Byte offset where the path-feedback section begins.
    fb_at: usize,
    /// Byte offset where the ACK-path-feedback section begins.
    ack_fb_at: usize,
    /// Byte offset where the SACK section begins.
    sack_at: usize,
    /// Total header length.
    total: usize,
}

impl<'a> MtpView<'a> {
    /// Validate `buf` as containing a complete MTP header and build a view.
    ///
    /// This walks the variable sections once to locate their boundaries (the
    /// TLVs are variable-size); every subsequent accessor is O(1) except the
    /// list iterators.
    pub fn new(buf: &'a [u8]) -> Result<MtpView<'a>, WireError> {
        if buf.len() < FIXED_HEADER_LEN {
            return Err(WireError::Truncated {
                needed: FIXED_HEADER_LEN,
                got: buf.len(),
            });
        }
        PktType::from_wire(buf[4]).ok_or(WireError::BadPktType(buf[4]))?;
        let n_excl = buf[36] as usize;
        let n_fb = buf[37] as usize;
        let n_ack_fb = buf[38] as usize;
        let n_sack = buf[39] as usize;
        let n_nack = buf[40] as usize;

        let fb_at = FIXED_HEADER_LEN + n_excl * PATH_EXCLUDE_ENTRY_LEN;
        let mut at = fb_at;
        let mut ack_fb_at = fb_at;
        for section in 0..2 {
            let count = if section == 0 { n_fb } else { n_ack_fb };
            for _ in 0..count {
                if buf.len() < at + PATH_FEEDBACK_PREFIX_LEN {
                    return Err(WireError::Truncated {
                        needed: at + PATH_FEEDBACK_PREFIX_LEN,
                        got: buf.len(),
                    });
                }
                let vlen = buf[at + 4] as usize;
                at += PATH_FEEDBACK_PREFIX_LEN + vlen;
            }
            if section == 0 {
                ack_fb_at = at;
            }
        }
        let sack_at = at;
        let total = sack_at + (n_sack + n_nack) * SACK_ENTRY_LEN;
        if buf.len() < total {
            return Err(WireError::Truncated {
                needed: total,
                got: buf.len(),
            });
        }
        Ok(MtpView {
            buf,
            fb_at,
            ack_fb_at,
            sack_at,
            total,
        })
    }

    /// Total encoded length of the header.
    pub fn header_len(&self) -> usize {
        self.total
    }

    /// Source application port.
    pub fn src_port(&self) -> u16 {
        u16::from_be_bytes([self.buf[0], self.buf[1]])
    }

    /// Destination application port.
    pub fn dst_port(&self) -> u16 {
        u16::from_be_bytes([self.buf[2], self.buf[3]])
    }

    /// Packet type.
    pub fn pkt_type(&self) -> PktType {
        PktType::from_wire(self.buf[4]).expect("validated in new()")
    }

    /// Message priority.
    pub fn msg_pri(&self) -> u8 {
        self.buf[5]
    }

    /// Traffic class.
    pub fn tc(&self) -> TrafficClass {
        TrafficClass(self.buf[6])
    }

    /// Header flags.
    pub fn flags(&self) -> u8 {
        self.buf[7]
    }

    /// Message identifier.
    pub fn msg_id(&self) -> MsgId {
        MsgId(u64::from_be_bytes(
            self.buf[8..16].try_into().expect("8 bytes"),
        ))
    }

    /// Originating entity.
    pub fn entity(&self) -> EntityId {
        EntityId(u16::from_be_bytes([self.buf[16], self.buf[17]]))
    }

    /// Message length in packets.
    pub fn msg_len_pkts(&self) -> u32 {
        u32::from_be_bytes(self.buf[18..22].try_into().expect("4 bytes"))
    }

    /// Message length in bytes — the field that lets a device "know in
    /// advance how much buffering is needed to process a message" (§3.1.2).
    pub fn msg_len_bytes(&self) -> u32 {
        u32::from_be_bytes(self.buf[22..26].try_into().expect("4 bytes"))
    }

    /// Packet number within the message.
    pub fn pkt_num(&self) -> PktNum {
        PktNum(u32::from_be_bytes(
            self.buf[26..30].try_into().expect("4 bytes"),
        ))
    }

    /// Payload length of this packet.
    pub fn pkt_len(&self) -> u16 {
        u16::from_be_bytes([self.buf[30], self.buf[31]])
    }

    /// Byte offset of this packet within the message.
    pub fn pkt_offset(&self) -> u32 {
        u32::from_be_bytes(self.buf[32..36].try_into().expect("4 bytes"))
    }

    /// Iterate the path-exclude list without allocating.
    pub fn path_exclude(&self) -> impl Iterator<Item = PathExclude> + 'a {
        let n = self.buf[36] as usize;
        let buf = self.buf;
        (0..n).map(move |i| {
            let at = FIXED_HEADER_LEN + i * PATH_EXCLUDE_ENTRY_LEN;
            PathExclude {
                path: PathletId(u16::from_be_bytes([buf[at], buf[at + 1]])),
                tc: TrafficClass(buf[at + 2]),
            }
        })
    }

    fn feedback_iter(
        buf: &'a [u8],
        start: usize,
        count: usize,
    ) -> impl Iterator<Item = Result<PathFeedback, WireError>> + 'a {
        let mut at = start;
        (0..count).map(move |_| {
            let path = PathletId(u16::from_be_bytes([buf[at], buf[at + 1]]));
            let tc = TrafficClass(buf[at + 2]);
            let fb_type = buf[at + 3];
            let vlen = buf[at + 4] as usize;
            let value = &buf[at + PATH_FEEDBACK_PREFIX_LEN..at + PATH_FEEDBACK_PREFIX_LEN + vlen];
            at += PATH_FEEDBACK_PREFIX_LEN + vlen;
            Ok(PathFeedback {
                path,
                tc,
                feedback: Feedback::parse_value(fb_type, value)?,
            })
        })
    }

    /// Iterate the path-feedback list. Entries with unknown TLV types yield
    /// an error (a real device would skip them using the length field; the
    /// caller decides).
    pub fn path_feedback(&self) -> impl Iterator<Item = Result<PathFeedback, WireError>> + 'a {
        Self::feedback_iter(self.buf, self.fb_at, self.buf[37] as usize)
    }

    /// Iterate the ACK-path-feedback list.
    pub fn ack_path_feedback(&self) -> impl Iterator<Item = Result<PathFeedback, WireError>> + 'a {
        Self::feedback_iter(self.buf, self.ack_fb_at, self.buf[38] as usize)
    }

    fn sack_iter(
        buf: &'a [u8],
        start: usize,
        count: usize,
    ) -> impl Iterator<Item = SackEntry> + 'a {
        (0..count).map(move |i| {
            let at = start + i * SACK_ENTRY_LEN;
            SackEntry {
                msg: MsgId(u64::from_be_bytes(
                    buf[at..at + 8].try_into().expect("8 bytes"),
                )),
                pkt: PktNum(u32::from_be_bytes(
                    buf[at + 8..at + 12].try_into().expect("4 bytes"),
                )),
            }
        })
    }

    /// Iterate the SACK list.
    pub fn sack(&self) -> impl Iterator<Item = SackEntry> + 'a {
        Self::sack_iter(self.buf, self.sack_at, self.buf[39] as usize)
    }

    /// Iterate the NACK list.
    pub fn nack(&self) -> impl Iterator<Item = SackEntry> + 'a {
        let n_sack = self.buf[39] as usize;
        Self::sack_iter(
            self.buf,
            self.sack_at + n_sack * SACK_ENTRY_LEN,
            self.buf[40] as usize,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::MtpHeader;
    use crate::types::flags;

    fn sample() -> MtpHeader {
        MtpHeader {
            src_port: 1234,
            dst_port: 5678,
            pkt_type: PktType::Ack,
            msg_pri: 1,
            tc: TrafficClass(4),
            flags: flags::LAST_PKT,
            msg_id: MsgId(99),
            entity: EntityId(3),
            msg_len_pkts: 4,
            msg_len_bytes: 6000,
            pkt_num: PktNum(3),
            pkt_len: 1500,
            pkt_offset: 4500,
            path_exclude: vec![PathExclude {
                path: PathletId(8),
                tc: TrafficClass(4),
            }],
            path_feedback: vec![PathFeedback {
                path: PathletId(1),
                tc: TrafficClass(0),
                feedback: Feedback::QueueDepth { bytes: 4096 },
            }],
            ack_path_feedback: vec![PathFeedback {
                path: PathletId(1),
                tc: TrafficClass(0),
                feedback: Feedback::EcnFraction { fraction: 32768 },
            }],
            sack: vec![SackEntry {
                msg: MsgId(99),
                pkt: PktNum(0),
            }],
            nack: vec![SackEntry {
                msg: MsgId(99),
                pkt: PktNum(1),
            }],
        }
    }

    #[test]
    fn view_matches_owned() {
        let hdr = sample();
        let bytes = hdr.to_bytes().unwrap();
        let view = MtpView::new(&bytes).unwrap();
        assert_eq!(view.header_len(), bytes.len());
        assert_eq!(view.src_port(), hdr.src_port);
        assert_eq!(view.dst_port(), hdr.dst_port);
        assert_eq!(view.pkt_type(), hdr.pkt_type);
        assert_eq!(view.msg_pri(), hdr.msg_pri);
        assert_eq!(view.tc(), hdr.tc);
        assert_eq!(view.flags(), hdr.flags);
        assert_eq!(view.msg_id(), hdr.msg_id);
        assert_eq!(view.entity(), hdr.entity);
        assert_eq!(view.msg_len_pkts(), hdr.msg_len_pkts);
        assert_eq!(view.msg_len_bytes(), hdr.msg_len_bytes);
        assert_eq!(view.pkt_num(), hdr.pkt_num);
        assert_eq!(view.pkt_len(), hdr.pkt_len);
        assert_eq!(view.pkt_offset(), hdr.pkt_offset);
        assert_eq!(view.path_exclude().collect::<Vec<_>>(), hdr.path_exclude);
        assert_eq!(
            view.path_feedback().collect::<Result<Vec<_>, _>>().unwrap(),
            hdr.path_feedback
        );
        assert_eq!(
            view.ack_path_feedback()
                .collect::<Result<Vec<_>, _>>()
                .unwrap(),
            hdr.ack_path_feedback
        );
        assert_eq!(view.sack().collect::<Vec<_>>(), hdr.sack);
        assert_eq!(view.nack().collect::<Vec<_>>(), hdr.nack);
    }

    #[test]
    fn view_rejects_truncation_at_every_cut() {
        let bytes = sample().to_bytes().unwrap();
        for cut in 0..bytes.len() {
            assert!(
                MtpView::new(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn view_is_zero_alloc_for_scalar_fields() {
        // Compile-time-ish check: the view itself is Copy and borrows.
        fn assert_copy<T: Copy>(_: T) {}
        let bytes = MtpHeader::default().to_bytes().unwrap();
        let view = MtpView::new(&bytes).unwrap();
        assert_copy(view);
    }
}
