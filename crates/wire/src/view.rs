//! A zero-copy typed view over an encoded MTP header.
//!
//! [`MtpView`] reads fields directly out of a byte slice without allocating,
//! in the style of `smoltcp`'s packet wrappers. It is what a
//! resource-constrained in-network device (a switch pipeline, an FPGA NIC)
//! would use: it can answer "what message is this, how big is it, which
//! packet of the message am I holding" by looking at fixed offsets, which is
//! precisely the *low buffering and computation* property the paper requires
//! of the transport (§2.2).
//!
//! The view validates length on construction, so accessors are infallible.

use crate::error::WireError;
use crate::feedback::{Feedback, PathFeedback};
use crate::header::{PathExclude, SackEntry};
use crate::types::{EntityId, MsgId, PathletId, PktNum, PktType, TrafficClass};
use crate::{FIXED_HEADER_LEN, PATH_EXCLUDE_ENTRY_LEN, PATH_FEEDBACK_PREFIX_LEN, SACK_ENTRY_LEN};

/// A validated, zero-copy view of an MTP header within a byte buffer.
#[derive(Debug, Clone, Copy)]
pub struct MtpView<'a> {
    buf: &'a [u8],
    /// Byte offset where the path-feedback section begins.
    fb_at: usize,
    /// Byte offset where the ACK-path-feedback section begins.
    ack_fb_at: usize,
    /// Byte offset where the SACK section begins.
    sack_at: usize,
    /// Total header length.
    total: usize,
    /// Packet type, decoded once during validation so the accessor never
    /// re-derives (let alone unwraps) anything.
    pkt_type: PktType,
    /// True if the buffer holds the sealed form (header CRC verified at
    /// construction, payload-checksum trailer present after the header).
    sealed: bool,
}

impl<'a> MtpView<'a> {
    /// Validate `buf` as containing a complete MTP header and build a view.
    ///
    /// This walks the variable sections once to locate their boundaries (the
    /// TLVs are variable-size); every subsequent accessor is O(1) except the
    /// list iterators.
    pub fn new(buf: &'a [u8]) -> Result<MtpView<'a>, WireError> {
        if buf.len() < FIXED_HEADER_LEN {
            return Err(WireError::Truncated {
                needed: FIXED_HEADER_LEN,
                got: buf.len(),
            });
        }
        let pkt_type = PktType::from_wire(buf[4]).ok_or(WireError::BadPktType(buf[4]))?;
        let n_excl = buf[36] as usize;
        let n_fb = buf[37] as usize;
        let n_ack_fb = buf[38] as usize;
        let n_sack = buf[39] as usize;
        let n_nack = buf[40] as usize;

        let fb_at = FIXED_HEADER_LEN + n_excl * PATH_EXCLUDE_ENTRY_LEN;
        let mut at = fb_at;
        let mut ack_fb_at = fb_at;
        for section in 0..2 {
            let count = if section == 0 { n_fb } else { n_ack_fb };
            for _ in 0..count {
                if buf.len() < at + PATH_FEEDBACK_PREFIX_LEN {
                    return Err(WireError::Truncated {
                        needed: at + PATH_FEEDBACK_PREFIX_LEN,
                        got: buf.len(),
                    });
                }
                let vlen = buf[at + 4] as usize;
                at += PATH_FEEDBACK_PREFIX_LEN + vlen;
            }
            if section == 0 {
                ack_fb_at = at;
            }
        }
        let sack_at = at;
        let total = sack_at + (n_sack + n_nack) * SACK_ENTRY_LEN;
        if buf.len() < total {
            return Err(WireError::Truncated {
                needed: total,
                got: buf.len(),
            });
        }
        // Integrity bytes: either the legacy all-zero reserved form, or
        // the sealed form whose header CRC must verify before any field
        // is trusted.
        let sealed = match buf[41] {
            0 => {
                if buf[42] != 0 || buf[43] != 0 {
                    return Err(WireError::BadReserved);
                }
                false
            }
            v if v == crate::integrity::INTEGRITY_SEALED => {
                let stored = u16::from_be_bytes([buf[42], buf[43]]);
                let mut crc = crate::integrity::Crc16::new();
                crc.update(&buf[..42]);
                crc.update(&[0, 0]);
                crc.update(&buf[44..total]);
                if crc.finish() != stored {
                    return Err(WireError::BadHeaderCrc);
                }
                let need = total + crate::integrity::PAYLOAD_CSUM_LEN;
                if buf.len() < need {
                    return Err(WireError::Truncated {
                        needed: need,
                        got: buf.len(),
                    });
                }
                true
            }
            v => return Err(WireError::BadIntegrityFlags(v)),
        };
        Ok(MtpView {
            buf,
            fb_at,
            ack_fb_at,
            sack_at,
            total,
            pkt_type,
            sealed,
        })
    }

    /// Total encoded length of the header (excluding the payload-checksum
    /// trailer of a sealed buffer; see [`sealed_len`](Self::sealed_len)).
    pub fn header_len(&self) -> usize {
        self.total
    }

    /// True if the buffer holds the sealed form: the header CRC was
    /// verified during construction and a payload-checksum trailer
    /// follows the header.
    pub fn is_sealed(&self) -> bool {
        self.sealed
    }

    /// Total bytes occupied including the payload-checksum trailer, when
    /// sealed; identical to [`header_len`](Self::header_len) otherwise.
    pub fn sealed_len(&self) -> usize {
        if self.sealed {
            self.total + crate::integrity::PAYLOAD_CSUM_LEN
        } else {
            self.total
        }
    }

    /// Whether the sealed payload checksum matches the header's payload
    /// descriptor. `None` for legacy (unsealed) buffers.
    pub fn payload_csum_ok(&self) -> Option<bool> {
        if !self.sealed {
            return None;
        }
        let at = self.total;
        let stored = u32::from_be_bytes([
            self.buf[at],
            self.buf[at + 1],
            self.buf[at + 2],
            self.buf[at + 3],
        ]);
        let mut d = [0u8; 18];
        d[0..8].copy_from_slice(&self.buf[8..16]);
        d[8..12].copy_from_slice(&self.buf[26..30]);
        d[12..16].copy_from_slice(&self.buf[32..36]);
        d[16..18].copy_from_slice(&self.buf[30..32]);
        Some(crate::integrity::crc32(&d) == stored)
    }

    /// Source application port.
    pub fn src_port(&self) -> u16 {
        u16::from_be_bytes([self.buf[0], self.buf[1]])
    }

    /// Destination application port.
    pub fn dst_port(&self) -> u16 {
        u16::from_be_bytes([self.buf[2], self.buf[3]])
    }

    /// Packet type (decoded and validated during construction).
    pub fn pkt_type(&self) -> PktType {
        self.pkt_type
    }

    /// Message priority.
    pub fn msg_pri(&self) -> u8 {
        self.buf[5]
    }

    /// Traffic class.
    pub fn tc(&self) -> TrafficClass {
        TrafficClass(self.buf[6])
    }

    /// Header flags.
    pub fn flags(&self) -> u8 {
        self.buf[7]
    }

    /// Message identifier.
    pub fn msg_id(&self) -> MsgId {
        let b = self.buf;
        MsgId(u64::from_be_bytes([
            b[8], b[9], b[10], b[11], b[12], b[13], b[14], b[15],
        ]))
    }

    /// Originating entity.
    pub fn entity(&self) -> EntityId {
        EntityId(u16::from_be_bytes([self.buf[16], self.buf[17]]))
    }

    /// Message length in packets.
    pub fn msg_len_pkts(&self) -> u32 {
        let b = self.buf;
        u32::from_be_bytes([b[18], b[19], b[20], b[21]])
    }

    /// Message length in bytes — the field that lets a device "know in
    /// advance how much buffering is needed to process a message" (§3.1.2).
    pub fn msg_len_bytes(&self) -> u32 {
        let b = self.buf;
        u32::from_be_bytes([b[22], b[23], b[24], b[25]])
    }

    /// Packet number within the message.
    pub fn pkt_num(&self) -> PktNum {
        let b = self.buf;
        PktNum(u32::from_be_bytes([b[26], b[27], b[28], b[29]]))
    }

    /// Payload length of this packet.
    pub fn pkt_len(&self) -> u16 {
        u16::from_be_bytes([self.buf[30], self.buf[31]])
    }

    /// Byte offset of this packet within the message.
    pub fn pkt_offset(&self) -> u32 {
        let b = self.buf;
        u32::from_be_bytes([b[32], b[33], b[34], b[35]])
    }

    /// Iterate the path-exclude list without allocating.
    pub fn path_exclude(&self) -> impl Iterator<Item = PathExclude> + 'a {
        let n = self.buf[36] as usize;
        let buf = self.buf;
        (0..n).map(move |i| {
            let at = FIXED_HEADER_LEN + i * PATH_EXCLUDE_ENTRY_LEN;
            PathExclude {
                path: PathletId(u16::from_be_bytes([buf[at], buf[at + 1]])),
                tc: TrafficClass(buf[at + 2]),
            }
        })
    }

    fn feedback_iter(
        buf: &'a [u8],
        start: usize,
        count: usize,
    ) -> impl Iterator<Item = Result<PathFeedback, WireError>> + 'a {
        let mut at = start;
        (0..count).map(move |_| {
            let path = PathletId(u16::from_be_bytes([buf[at], buf[at + 1]]));
            let tc = TrafficClass(buf[at + 2]);
            let fb_type = buf[at + 3];
            let vlen = buf[at + 4] as usize;
            let value = &buf[at + PATH_FEEDBACK_PREFIX_LEN..at + PATH_FEEDBACK_PREFIX_LEN + vlen];
            at += PATH_FEEDBACK_PREFIX_LEN + vlen;
            Ok(PathFeedback {
                path,
                tc,
                feedback: Feedback::parse_value(fb_type, value)?,
            })
        })
    }

    /// Iterate the path-feedback list. Entries with unknown TLV types yield
    /// an error (a real device would skip them using the length field; the
    /// caller decides).
    pub fn path_feedback(&self) -> impl Iterator<Item = Result<PathFeedback, WireError>> + 'a {
        Self::feedback_iter(self.buf, self.fb_at, self.buf[37] as usize)
    }

    /// Iterate the ACK-path-feedback list.
    pub fn ack_path_feedback(&self) -> impl Iterator<Item = Result<PathFeedback, WireError>> + 'a {
        Self::feedback_iter(self.buf, self.ack_fb_at, self.buf[38] as usize)
    }

    fn sack_iter(
        buf: &'a [u8],
        start: usize,
        count: usize,
    ) -> impl Iterator<Item = SackEntry> + 'a {
        (0..count).map(move |i| {
            let at = start + i * SACK_ENTRY_LEN;
            SackEntry {
                msg: MsgId(u64::from_be_bytes([
                    buf[at],
                    buf[at + 1],
                    buf[at + 2],
                    buf[at + 3],
                    buf[at + 4],
                    buf[at + 5],
                    buf[at + 6],
                    buf[at + 7],
                ])),
                pkt: PktNum(u32::from_be_bytes([
                    buf[at + 8],
                    buf[at + 9],
                    buf[at + 10],
                    buf[at + 11],
                ])),
            }
        })
    }

    /// Iterate the SACK list.
    pub fn sack(&self) -> impl Iterator<Item = SackEntry> + 'a {
        Self::sack_iter(self.buf, self.sack_at, self.buf[39] as usize)
    }

    /// Iterate the NACK list.
    pub fn nack(&self) -> impl Iterator<Item = SackEntry> + 'a {
        let n_sack = self.buf[39] as usize;
        Self::sack_iter(
            self.buf,
            self.sack_at + n_sack * SACK_ENTRY_LEN,
            self.buf[40] as usize,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::MtpHeader;
    use crate::types::flags;

    fn sample() -> MtpHeader {
        MtpHeader {
            src_port: 1234,
            dst_port: 5678,
            pkt_type: PktType::Ack,
            msg_pri: 1,
            tc: TrafficClass(4),
            flags: flags::LAST_PKT,
            msg_id: MsgId(99),
            entity: EntityId(3),
            msg_len_pkts: 4,
            msg_len_bytes: 6000,
            pkt_num: PktNum(3),
            pkt_len: 1500,
            pkt_offset: 4500,
            path_exclude: vec![PathExclude {
                path: PathletId(8),
                tc: TrafficClass(4),
            }],
            path_feedback: vec![PathFeedback {
                path: PathletId(1),
                tc: TrafficClass(0),
                feedback: Feedback::QueueDepth { bytes: 4096 },
            }],
            ack_path_feedback: vec![PathFeedback {
                path: PathletId(1),
                tc: TrafficClass(0),
                feedback: Feedback::EcnFraction { fraction: 32768 },
            }],
            sack: vec![SackEntry {
                msg: MsgId(99),
                pkt: PktNum(0),
            }],
            nack: vec![SackEntry {
                msg: MsgId(99),
                pkt: PktNum(1),
            }],
        }
    }

    #[test]
    fn view_matches_owned() {
        let hdr = sample();
        let bytes = hdr.to_bytes().unwrap();
        let view = MtpView::new(&bytes).unwrap();
        assert_eq!(view.header_len(), bytes.len());
        assert_eq!(view.src_port(), hdr.src_port);
        assert_eq!(view.dst_port(), hdr.dst_port);
        assert_eq!(view.pkt_type(), hdr.pkt_type);
        assert_eq!(view.msg_pri(), hdr.msg_pri);
        assert_eq!(view.tc(), hdr.tc);
        assert_eq!(view.flags(), hdr.flags);
        assert_eq!(view.msg_id(), hdr.msg_id);
        assert_eq!(view.entity(), hdr.entity);
        assert_eq!(view.msg_len_pkts(), hdr.msg_len_pkts);
        assert_eq!(view.msg_len_bytes(), hdr.msg_len_bytes);
        assert_eq!(view.pkt_num(), hdr.pkt_num);
        assert_eq!(view.pkt_len(), hdr.pkt_len);
        assert_eq!(view.pkt_offset(), hdr.pkt_offset);
        assert_eq!(view.path_exclude().collect::<Vec<_>>(), hdr.path_exclude);
        assert_eq!(
            view.path_feedback().collect::<Result<Vec<_>, _>>().unwrap(),
            hdr.path_feedback
        );
        assert_eq!(
            view.ack_path_feedback()
                .collect::<Result<Vec<_>, _>>()
                .unwrap(),
            hdr.ack_path_feedback
        );
        assert_eq!(view.sack().collect::<Vec<_>>(), hdr.sack);
        assert_eq!(view.nack().collect::<Vec<_>>(), hdr.nack);
    }

    #[test]
    fn view_rejects_truncation_at_every_cut() {
        let bytes = sample().to_bytes().unwrap();
        for cut in 0..bytes.len() {
            assert!(
                MtpView::new(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn view_accepts_sealed_and_verifies_crc() {
        let hdr = sample();
        let sealed = hdr.to_sealed_bytes().unwrap();
        let view = MtpView::new(&sealed).unwrap();
        assert!(view.is_sealed());
        assert_eq!(view.sealed_len(), sealed.len());
        assert_eq!(view.header_len(), sealed.len() - 4);
        assert_eq!(view.payload_csum_ok(), Some(true));
        assert_eq!(view.msg_id(), hdr.msg_id);
        assert_eq!(view.pkt_type(), hdr.pkt_type);

        // Legacy buffers report unsealed.
        let legacy = hdr.to_bytes().unwrap();
        let view = MtpView::new(&legacy).unwrap();
        assert!(!view.is_sealed());
        assert_eq!(view.sealed_len(), legacy.len());
        assert_eq!(view.payload_csum_ok(), None);
    }

    #[test]
    fn view_rejects_corrupted_sealed_header() {
        let sealed = sample().to_sealed_bytes().unwrap();
        let hdr_bits = (sealed.len() - 4) * 8;
        for bit in 0..hdr_bits {
            let mut m = sealed.clone();
            m[bit / 8] ^= 1 << (bit % 8);
            assert!(MtpView::new(&m).is_err(), "flip at bit {bit}");
        }
        // A flip confined to the payload-checksum trailer leaves the header
        // valid but flags the payload.
        let mut m = sealed.clone();
        let last = m.len() - 1;
        m[last] ^= 1;
        let view = MtpView::new(&m).unwrap();
        assert_eq!(view.payload_csum_ok(), Some(false));
    }

    #[test]
    fn view_rejects_bad_integrity_flags() {
        let mut bytes = sample().to_bytes().unwrap();
        bytes[41] = 0x02;
        assert_eq!(
            MtpView::new(&bytes).unwrap_err(),
            WireError::BadIntegrityFlags(0x02)
        );
        bytes[41] = 0;
        bytes[42] = 1;
        assert_eq!(MtpView::new(&bytes).unwrap_err(), WireError::BadReserved);
    }

    #[test]
    fn view_rejects_sealed_truncation_at_every_cut() {
        let sealed = sample().to_sealed_bytes().unwrap();
        for cut in 0..sealed.len() {
            assert!(
                MtpView::new(&sealed[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn view_is_zero_alloc_for_scalar_fields() {
        // Compile-time-ish check: the view itself is Copy and borrows.
        fn assert_copy<T: Copy>(_: T) {}
        let bytes = MtpHeader::default().to_bytes().unwrap();
        let view = MtpView::new(&bytes).unwrap();
        assert_copy(view);
    }
}
