//! # mtp-wire — wire formats for the MTP message transport
//!
//! This crate implements the **byte-exact MTP packet header** from Figure 4
//! of *"TCP is Harmful to In-Network Computing: Designing a Message
//! Transport Protocol (MTP)"* (HotNets'21), together with the simplified
//! TCP segment header used by the baseline transports in this workspace.
//!
//! The MTP header carries, in every packet:
//!
//! * addressing (source/destination ports),
//! * **message-level information** — message ID, priority, message length in
//!   bytes and packets, this packet's number, offset, and length — which is
//!   what lets in-network devices parse, buffer, mutate, load-balance, and
//!   schedule individual messages with bounded state (paper §3.1.1–3.1.2),
//! * **pathlet congestion-control information** — a *path-exclude* list
//!   (sender → network: "do not use these pathlets"), a *path-feedback* list
//!   (network → receiver: per-pathlet TLV congestion feedback, appended by
//!   switches as the packet traverses them), and an *ACK-path-feedback* list
//!   (receiver → sender: the echoed feedback) (paper §3.1.3),
//! * **SACK and NACK lists** that acknowledge `(message ID, packet number)`
//!   pairs rather than byte ranges, which is what makes in-network data
//!   mutation compatible with reliability (paper §2.2, §3.1.2).
//!
//! Two representations are provided, in the style of `smoltcp`:
//!
//! * [`view::MtpView`] — a zero-copy typed view over a byte slice, with
//!   accessor methods that read fields in place; and
//! * [`header::MtpHeader`] — an owned high-level representation with
//!   [`parse`](header::MtpHeader::parse) / [`emit`](header::MtpHeader::emit)
//!   that round-trip through the byte format.
//!
//! The simulator crates carry the owned representation inside simulated
//! packets; round-trip tests (including property-based tests) guarantee the
//! structured form and the wire format cannot drift apart.
//!
//! ## Wire layout
//!
//! All multi-byte fields are network byte order (big endian). The fixed
//! portion is 44 bytes; five variable-length sections follow, with their
//! entry counts stored in the fixed portion:
//!
//! ```text
//! offset  size  field
//!      0     2  src_port
//!      2     2  dst_port
//!      4     1  pkt_type            (Data / Ack / Nack / Control)
//!      5     1  msg_pri             (application-assigned message priority)
//!      6     1  tc                  (traffic class assigned to the message)
//!      7     1  flags               (LAST_PKT, RETX, ECT, TRIMMED)
//!      8     8  msg_id              (unique among outstanding messages)
//!     16     2  entity              (tenant/entity for multi-entity isolation)
//!     18     4  msg_len_pkts        (message length in packets)
//!     22     4  msg_len_bytes       (message length in bytes)
//!     26     4  pkt_num             (this packet's number within the message)
//!     30     2  pkt_len             (this packet's payload length in bytes)
//!     32     4  pkt_offset          (this packet's byte offset in the message)
//!     36     1  path_exclude_count
//!     37     1  path_feedback_count
//!     38     1  ack_path_feedback_count
//!     39     1  sack_count
//!     40     1  nack_count
//!     41     1  integrity_flags     (0 = legacy; 0x03 = sealed, see below)
//!     42     2  header_crc          (CRC-16/CCITT over the header; 0 if legacy)
//!     44     -  path_exclude        (path_id u16, tc u8) * n            — 3 B each
//!      .     -  path_feedback       (path_id u16, tc u8, TLV) * n       — 5+len B each
//!      .     -  ack_path_feedback   (path_id u16, tc u8, TLV) * n       — 5+len B each
//!      .     -  sack                (msg_id u64, pkt_num u32) * n       — 12 B each
//!      .     -  nack                (msg_id u64, pkt_num u32) * n       — 12 B each
//! ```
//!
//! Feedback values are TLVs (`type u8, len u8, value[len]`) so that
//! different pathlets can use **different congestion-control algorithms**
//! simultaneously — an ECN mark for a DCTCP-like controller, an explicit
//! rate for an RCP-like controller, a delay sample for a Swift-like
//! controller (paper §3.1.3, §4 "Managing Complexity").
//!
//! ## Integrity (the sealed form)
//!
//! Because in-network devices *trust and mutate* header fields in flight,
//! the header can carry its own integrity protection in the formerly
//! reserved bytes 41–43 plus a 4-byte payload-checksum trailer after the
//! last variable section (see [`integrity`]). The legacy form (bytes 41–43
//! all zero, no trailer) remains byte-identical to what this crate has
//! always emitted; [`MtpHeader::to_sealed_bytes`] /
//! [`MtpHeader::parse_sealed`] produce and require the sealed form
//! exactly, with no silent fallback between the two.

// `deny`, not `forbid`: the one sanctioned exception is the PCLMULQDQ
// CRC-32 folding kernel in `integrity::clmul`, which opts back in with a
// scoped `allow` — every other module stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod bridge;
pub mod capabilities;
pub mod error;
pub mod feedback;
pub mod header;
pub mod integrity;
pub mod session;
pub mod tcp;
pub mod types;
pub mod view;

pub use bridge::{decapsulate, encapsulate};
pub use error::WireError;
pub use feedback::{Feedback, PathFeedback};
pub use header::{MtpHeader, PathExclude, SackEntry};
pub use integrity::{crc16_ccitt, crc32, Crc16, INTEGRITY_SEALED, PAYLOAD_CSUM_LEN};
pub use session::{
    CtrlKind, SessionCtrl, SESSION_CTRL_CRC_LEN, SESSION_CTRL_FIXED_LEN, SESSION_WIRE_VERSION,
};
pub use tcp::{TcpFlags, TcpHeader, TCP_INTEGRITY_SEALED, TCP_SEALED_LEN};
pub use types::{EcnCodepoint, EntityId, MsgId, PathletId, PktNum, PktType, TrafficClass};
pub use view::MtpView;

/// Size in bytes of the fixed (non-variable) portion of the MTP header.
pub const FIXED_HEADER_LEN: usize = 44;

/// Bytes per path-exclude entry: `path_id: u16` + `tc: u8`.
pub const PATH_EXCLUDE_ENTRY_LEN: usize = 3;

/// Bytes per SACK/NACK entry: `msg_id: u64` + `pkt_num: u32`.
pub const SACK_ENTRY_LEN: usize = 12;

/// Fixed prefix of a path-feedback entry before the TLV value:
/// `path_id: u16` + `tc: u8` + `fb_type: u8` + `fb_len: u8`.
pub const PATH_FEEDBACK_PREFIX_LEN: usize = 5;
