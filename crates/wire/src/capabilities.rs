//! Transport capability records (the vocabulary of paper Table 1).
//!
//! Table 1 of the paper scores transport configurations against the five
//! in-network-computing requirements of §2.2. Rather than hard-coding a
//! table of checkmarks in the benchmark binary, each transport crate in
//! this workspace exports a [`TransportCapabilities`] record *next to its
//! implementation*, with a justification string per requirement tied to the
//! mechanism that provides (or denies) it. The `table1` binary collects the
//! records and renders the paper's table.

use serde::{Deserialize, Serialize};

/// Whether a transport meets one requirement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Support {
    /// The requirement is met (✓).
    Yes,
    /// The requirement is not met (✗).
    No,
    /// Not applicable / unclear in the paper's table (—).
    Unclear,
}

impl core::fmt::Display for Support {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            Support::Yes => "Y",
            Support::No => "x",
            Support::Unclear => "-",
        };
        f.pad(s)
    }
}

/// One requirement assessment: the verdict plus the mechanism behind it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Assessment {
    /// The verdict.
    pub support: Support,
    /// Why — which mechanism provides or forbids the capability.
    pub why: &'static str,
}

impl Assessment {
    /// A supported capability with a reason.
    pub const fn yes(why: &'static str) -> Assessment {
        Assessment {
            support: Support::Yes,
            why,
        }
    }

    /// An unsupported capability with a reason.
    pub const fn no(why: &'static str) -> Assessment {
        Assessment {
            support: Support::No,
            why,
        }
    }

    /// An unclear/not-applicable capability.
    pub const fn unclear(why: &'static str) -> Assessment {
        Assessment {
            support: Support::Unclear,
            why,
        }
    }
}

/// A transport's score against the five §2.2 requirements.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransportCapabilities {
    /// Row label, e.g. "TCP Pass-Through (many RPF)".
    pub name: &'static str,
    /// Can in-network devices change data and message lengths?
    pub data_mutation: Assessment,
    /// Can limited-state devices parse and buffer per message?
    pub low_buffering: Assessment,
    /// Can independent messages take different paths/replicas?
    pub inter_message_independence: Assessment,
    /// Can many resources each run their own CC algorithm?
    pub multi_resource_cc: Assessment,
    /// Can policies be applied per entity rather than per flow?
    pub multi_entity_isolation: Assessment,
}

impl TransportCapabilities {
    /// The five verdicts in table-column order.
    pub fn row(&self) -> [Support; 5] {
        [
            self.data_mutation.support,
            self.low_buffering.support,
            self.inter_message_independence.support,
            self.multi_resource_cc.support,
            self.multi_entity_isolation.support,
        ]
    }

    /// Count of satisfied requirements.
    pub fn score(&self) -> usize {
        self.row().iter().filter(|s| **s == Support::Yes).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoring_counts_only_yes() {
        let caps = TransportCapabilities {
            name: "test",
            data_mutation: Assessment::yes("a"),
            low_buffering: Assessment::no("b"),
            inter_message_independence: Assessment::yes("c"),
            multi_resource_cc: Assessment::unclear("d"),
            multi_entity_isolation: Assessment::no("e"),
        };
        assert_eq!(caps.score(), 2);
        assert_eq!(caps.row()[3], Support::Unclear);
        assert_eq!(Support::Yes.to_string(), "Y");
        assert_eq!(Support::No.to_string(), "x");
        assert_eq!(Support::Unclear.to_string(), "-");
    }
}
