//! Structured fuzzing of the untrusted-byte decode surface.
//!
//! Every parser that can receive bytes off the wire is driven with (a)
//! arbitrary byte soup and (b) *mutated-valid* frames — sealed encodings
//! with a bounded number of bit-flips or a truncation applied. The
//! invariants:
//!
//! 1. **Total decoding**: no input ever panics any parser, any `MtpView`
//!    accessor, or any section iterator (run to exhaustion).
//! 2. **Guaranteed detection**: up to 3 bit-flips confined to the
//!    structure-preserving part of a sealed header always fail the CRC
//!    (CRC-16/CCITT has Hamming distance 4 out to 32 751 bits). Flips in
//!    the section counts can re-frame the walk, but then the consumed
//!    length no longer matches the frame — callers that know the frame
//!    boundary (the simulator's `corrupt::verify`) reject on that.
//! 3. **Payload/header separation**: flips confined to the payload-checksum
//!    trailer leave the header verifiable but report `payload_ok = false`.
//! 4. **Truncation soundness**: a sealed frame cut at *any* byte boundary
//!    is rejected.
//!
//! Runs offline under plain proptest (no cargo-fuzz); CI's fuzz-smoke job
//! raises `PROPTEST_CASES` for a deeper sweep.

use std::collections::BTreeSet;

use proptest::prelude::*;

use mtp_wire::{
    CtrlKind, Feedback, MtpHeader, MtpView, PathExclude, PathFeedback, PathletId, PktNum, PktType,
    SackEntry, SessionCtrl, TcpFlags, TcpHeader, TrafficClass, FIXED_HEADER_LEN, PAYLOAD_CSUM_LEN,
    TCP_SEALED_LEN,
};

fn arb_ctrl_kind() -> impl Strategy<Value = CtrlKind> {
    prop_oneof![
        Just(CtrlKind::Hello),
        Just(CtrlKind::HelloAck),
        Just(CtrlKind::Fin),
        Just(CtrlKind::FinAck),
        Just(CtrlKind::Ping),
        Just(CtrlKind::Pong),
    ]
}

prop_compose! {
    fn arb_session_ctrl()(
        version in 1u8..255,
        kind in arb_ctrl_kind(),
        src_port in any::<u16>(),
        dst_port in any::<u16>(),
        session_id in any::<u64>(),
        peer_session_id in any::<u64>(),
        seq in any::<u32>(),
        ports in prop::collection::vec(any::<u16>(), 0..12),
    ) -> SessionCtrl {
        SessionCtrl {
            version,
            kind,
            src_port,
            dst_port,
            session_id,
            peer_session_id,
            seq,
            ports,
        }
    }
}

fn arb_feedback() -> impl Strategy<Value = Feedback> {
    prop_oneof![
        any::<bool>().prop_map(|ce| Feedback::EcnMark { ce }),
        any::<u16>().prop_map(|fraction| Feedback::EcnFraction { fraction }),
        any::<u32>().prop_map(|mbps| Feedback::RcpRate { mbps }),
        any::<u32>().prop_map(|ns| Feedback::Delay { ns }),
        any::<u32>().prop_map(|bytes| Feedback::QueueDepth { bytes }),
        any::<u16>().prop_map(|p| Feedback::PathChange {
            new_path: PathletId(p)
        }),
        Just(Feedback::Trim),
    ]
}

fn arb_path_feedback() -> impl Strategy<Value = PathFeedback> {
    (any::<u16>(), any::<u8>(), arb_feedback()).prop_map(|(p, tc, feedback)| PathFeedback {
        path: PathletId(p),
        tc: TrafficClass(tc),
        feedback,
    })
}

fn arb_sack() -> impl Strategy<Value = SackEntry> {
    (any::<u64>(), any::<u32>()).prop_map(|(m, p)| SackEntry {
        msg: mtp_wire::MsgId(m),
        pkt: PktNum(p),
    })
}

fn arb_pkt_type() -> impl Strategy<Value = PktType> {
    prop_oneof![
        Just(PktType::Data),
        Just(PktType::Ack),
        Just(PktType::Nack),
        Just(PktType::Control)
    ]
}

prop_compose! {
    fn arb_header()(
        src_port in any::<u16>(),
        dst_port in any::<u16>(),
        pkt_type in arb_pkt_type(),
        msg_pri in any::<u8>(),
        tc in any::<u8>(),
        raw_flags in 0u8..16,
        msg_id in any::<u64>(),
        entity in any::<u16>(),
        msg_len_pkts in any::<u32>(),
        msg_len_bytes in any::<u32>(),
        pkt_num in any::<u32>(),
        pkt_len in any::<u16>(),
        pkt_offset in any::<u32>(),
        path_exclude in prop::collection::vec(
            (any::<u16>(), any::<u8>()).prop_map(|(p, tc)| PathExclude {
                path: PathletId(p),
                tc: TrafficClass(tc),
            }),
            0..6
        ),
        path_feedback in prop::collection::vec(arb_path_feedback(), 0..6),
        ack_path_feedback in prop::collection::vec(arb_path_feedback(), 0..6),
        sack in prop::collection::vec(arb_sack(), 0..10),
        nack in prop::collection::vec(arb_sack(), 0..10),
    ) -> MtpHeader {
        MtpHeader {
            src_port,
            dst_port,
            pkt_type,
            msg_pri,
            tc: TrafficClass(tc),
            flags: raw_flags,
            msg_id: mtp_wire::MsgId(msg_id),
            entity: mtp_wire::EntityId(entity),
            msg_len_pkts,
            msg_len_bytes,
            pkt_num: PktNum(pkt_num),
            pkt_len,
            pkt_offset,
            path_exclude,
            path_feedback,
            ack_path_feedback,
            sack,
            nack,
        }
    }
}

prop_compose! {
    fn arb_tcp_header()(
        conn_id in any::<u32>(),
        src_port in any::<u16>(),
        dst_port in any::<u16>(),
        seq in any::<u64>(),
        ack in any::<u64>(),
        rwnd in any::<u32>(),
        payload_len in any::<u16>(),
        flag_bits in 0u8..64,
    ) -> TcpHeader {
        TcpHeader {
            conn_id,
            src_port,
            dst_port,
            seq,
            ack,
            flags: TcpFlags {
                syn: flag_bits & 1 != 0,
                ack: flag_bits & 2 != 0,
                fin: flag_bits & 4 != 0,
                rst: flag_bits & 8 != 0,
                ece: flag_bits & 16 != 0,
                cwr: flag_bits & 32 != 0,
            },
            rwnd,
            payload_len,
        }
    }
}

/// Exercise every accessor and exhaust every iterator of an accepted view:
/// acceptance must imply total accessors.
fn exhaust_view(view: &MtpView<'_>) {
    let _ = view.header_len();
    let _ = view.is_sealed();
    let _ = view.sealed_len();
    let _ = view.payload_csum_ok();
    let _ = view.src_port();
    let _ = view.dst_port();
    let _ = view.pkt_type();
    let _ = view.msg_pri();
    let _ = view.tc();
    let _ = view.flags();
    let _ = view.msg_id();
    let _ = view.entity();
    let _ = view.msg_len_pkts();
    let _ = view.msg_len_bytes();
    let _ = view.pkt_num();
    let _ = view.pkt_len();
    let _ = view.pkt_offset();
    for _ in view.path_exclude() {}
    for _ in view.path_feedback() {}
    for _ in view.ack_path_feedback() {}
    for _ in view.sack() {}
    for _ in view.nack() {}
}

/// Flip `bits` (distinct positions) in place.
fn flip_bits(buf: &mut [u8], bits: &BTreeSet<usize>) {
    for &bit in bits {
        buf[bit / 8] ^= 1 << (bit % 8);
    }
}

/// Map proptest-drawn raw positions onto `count` distinct bits inside
/// `lo..hi` (bit offsets). Degenerate ranges yield fewer bits; the caller
/// requires at least one.
fn pick_bits(raw: &[usize], lo: usize, hi: usize) -> BTreeSet<usize> {
    raw.iter().map(|r| lo + r % (hi - lo)).collect()
}

proptest! {
    /// Invariant 1, arbitrary bytes: the whole decode surface is total.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..600)) {
        let _ = MtpHeader::parse(&bytes);
        let _ = MtpHeader::parse_sealed(&bytes);
        let _ = TcpHeader::parse(&bytes);
        let _ = TcpHeader::parse_sealed(&bytes);
        let _ = mtp_wire::decapsulate(&bytes);
        if let Ok(view) = MtpView::new(&bytes) {
            exhaust_view(&view);
        }
    }

    /// Invariant 1, feedback TLVs: any (type, value) pair decodes totally.
    #[test]
    fn arbitrary_feedback_never_panics(
        fb_type in any::<u8>(),
        value in prop::collection::vec(any::<u8>(), 0..32),
    ) {
        let _ = Feedback::parse_value(fb_type, &value);
    }

    /// Invariant 1, mutated-valid: flips and cuts anywhere in a sealed
    /// frame never panic the sealed parser or the view.
    #[test]
    fn mutated_sealed_never_panics(
        hdr in arb_header(),
        raw in prop::collection::vec(any::<usize>(), 1..4),
        cut_frac in 0.0f64..1.0,
    ) {
        let sealed = hdr.to_sealed_bytes().unwrap();
        let mut mutated = sealed.clone();
        let bits = mutated.len() * 8;
        flip_bits(&mut mutated, &pick_bits(&raw, 0, bits));
        let _ = MtpHeader::parse_sealed(&mutated);
        if let Ok(view) = MtpView::new(&mutated) {
            exhaust_view(&view);
        }
        let cut = (sealed.len() as f64 * cut_frac) as usize;
        let _ = MtpHeader::parse_sealed(&sealed[..cut]);
        let _ = MtpView::new(&sealed[..cut]);
    }

    /// Invariant 2: up to 3 flips in the structure-preserving fixed-header
    /// region (everything before the section counts, plus the integrity
    /// and CRC bytes) are always rejected.
    #[test]
    fn fixed_header_flips_always_detected(
        hdr in arb_header(),
        raw in prop::collection::vec(any::<usize>(), 1..4),
    ) {
        let mut sealed = hdr.to_sealed_bytes().unwrap();
        // Bytes 36..=40 hold the five section counts; flipping those is
        // covered by the frame-length argument instead (next test).
        let in_fields = pick_bits(&raw[..1], 0, 36 * 8);
        let in_integrity = pick_bits(&raw[1..], 41 * 8, FIXED_HEADER_LEN * 8);
        let bits: BTreeSet<usize> = in_fields.union(&in_integrity).copied().collect();
        flip_bits(&mut sealed, &bits);
        prop_assert!(MtpHeader::parse_sealed(&sealed).is_err());
        prop_assert!(MtpView::new(&sealed).is_err());
    }

    /// Invariant 2, frame-length arm: any flips in the *whole header
    /// region* are caught by CRC or by the walked length no longer
    /// spanning the frame — the check the simulator's verifier applies.
    #[test]
    fn header_region_flips_never_verify_cleanly(
        hdr in arb_header(),
        raw in prop::collection::vec(any::<usize>(), 1..4),
    ) {
        let sealed = hdr.to_sealed_bytes().unwrap();
        let hdr_len = sealed.len() - PAYLOAD_CSUM_LEN;
        let mut mutated = sealed.clone();
        flip_bits(&mut mutated, &pick_bits(&raw, 0, hdr_len * 8));
        let detected = match MtpHeader::parse_sealed(&mutated) {
            Err(_) => true,
            Ok((_, consumed, _)) => consumed != mutated.len(),
        };
        prop_assert!(detected, "corrupted header verified as a full frame");
    }

    /// Invariant 3: flips confined to the payload-checksum trailer leave
    /// the header verifiable and flag the payload.
    #[test]
    fn trailer_flips_flag_payload_only(
        hdr in arb_header(),
        raw in prop::collection::vec(any::<usize>(), 1..4),
    ) {
        let mut sealed = hdr.to_sealed_bytes().unwrap();
        let hdr_len = sealed.len() - PAYLOAD_CSUM_LEN;
        let bits = sealed.len() * 8;
        flip_bits(&mut sealed, &pick_bits(&raw, hdr_len * 8, bits));
        let (back, consumed, payload_ok) = MtpHeader::parse_sealed(&sealed).unwrap();
        prop_assert_eq!(back, hdr);
        prop_assert_eq!(consumed, sealed.len());
        prop_assert!(!payload_ok);
        let view = MtpView::new(&sealed).unwrap();
        prop_assert!(view.is_sealed());
        prop_assert_eq!(view.payload_csum_ok(), Some(false));
    }

    /// Invariant 4: a sealed MTP frame cut anywhere is rejected.
    #[test]
    fn sealed_truncation_always_detected(hdr in arb_header(), cut_frac in 0.0f64..1.0) {
        let sealed = hdr.to_sealed_bytes().unwrap();
        let cut = ((sealed.len() as f64) * cut_frac) as usize;
        if cut < sealed.len() {
            prop_assert!(MtpHeader::parse_sealed(&sealed[..cut]).is_err());
            prop_assert!(MtpView::new(&sealed[..cut]).is_err());
        }
    }

    /// TCP mirror of invariants 2 and 4: any 1-3 bit flips in a sealed
    /// segment header are rejected, as is any truncation.
    #[test]
    fn tcp_sealed_flips_and_cuts_detected(
        hdr in arb_tcp_header(),
        raw in prop::collection::vec(any::<usize>(), 1..4),
        cut in 0usize..TCP_SEALED_LEN,
    ) {
        let sealed = hdr.to_sealed_bytes();
        let mut mutated = sealed;
        flip_bits(&mut mutated, &pick_bits(&raw, 0, TCP_SEALED_LEN * 8));
        prop_assert!(TcpHeader::parse_sealed(&mutated).is_err());
        prop_assert!(TcpHeader::parse_sealed(&sealed[..cut]).is_err());
        // And the untouched frame still verifies (the mutation above
        // worked on a copy).
        let (back, used) = TcpHeader::parse_sealed(&sealed).unwrap();
        prop_assert_eq!(back, hdr);
        prop_assert_eq!(used, TCP_SEALED_LEN);
    }

    /// Checksum implementations are interchangeable: over arbitrary
    /// fuzz-corpus buffers, the dispatching `crc32` (hardware folding
    /// when available), the scalar slice-by-8 path, and a bit-at-a-time
    /// reference all agree — as do the streaming and one-shot CRC-16
    /// forms at any split point.
    #[test]
    fn crc_implementations_agree_on_fuzz_corpus(
        bytes in prop::collection::vec(any::<u8>(), 0..2500),
        cut_frac in 0.0f64..1.0,
    ) {
        let mut reference: u32 = 0xFFFF_FFFF;
        for &b in &bytes {
            reference ^= b as u32;
            for _ in 0..8 {
                let mask = (reference & 1).wrapping_neg();
                reference = (reference >> 1) ^ (0xEDB8_8320 & mask);
            }
        }
        let reference = !reference;
        prop_assert_eq!(mtp_wire::integrity::crc32(&bytes), reference);
        prop_assert_eq!(mtp_wire::integrity::crc32_scalar(&bytes), reference);

        let one_shot = mtp_wire::integrity::crc16_ccitt(&bytes);
        let cut = (bytes.len() as f64 * cut_frac) as usize;
        let mut streaming = mtp_wire::integrity::Crc16::new();
        streaming.update(&bytes[..cut]);
        streaming.update(&bytes[cut..]);
        prop_assert_eq!(streaming.finish(), one_shot);
    }

    /// Mutated-valid bridged frames: flips anywhere in the encapsulation
    /// never panic the decapsulator.
    #[test]
    fn mutated_bridge_never_panics(
        hdr in arb_header(),
        raw in prop::collection::vec(any::<usize>(), 1..4),
        cut_frac in 0.0f64..1.0,
    ) {
        let wire = mtp_wire::encapsulate(&hdr).unwrap();
        let mut mutated = wire.clone();
        let bits = mutated.len() * 8;
        flip_bits(&mut mutated, &pick_bits(&raw, 0, bits));
        let _ = mtp_wire::decapsulate(&mutated);
        let cut = (wire.len() as f64 * cut_frac) as usize;
        let _ = mtp_wire::decapsulate(&wire[..cut]);
    }

    /// Invariant 1, session control: arbitrary bytes never panic the
    /// session-control parser.
    #[test]
    fn arbitrary_bytes_never_panic_session_ctrl(
        bytes in prop::collection::vec(any::<u8>(), 0..600),
    ) {
        let _ = SessionCtrl::parse_sealed(&bytes);
    }

    /// Session-control roundtrip: every valid frame survives
    /// emit → parse byte-exactly and consumes its whole encoding.
    #[test]
    fn session_ctrl_roundtrips(ctrl in arb_session_ctrl()) {
        let sealed = ctrl.to_sealed_bytes().unwrap();
        let (back, used) = SessionCtrl::parse_sealed(&sealed).unwrap();
        prop_assert_eq!(back, ctrl);
        prop_assert_eq!(used, sealed.len());
    }

    /// Invariant 2, session control: up to 3 flips confined to the
    /// structure-preserving region (everything but the port-count byte)
    /// always fail the CRC.
    #[test]
    fn session_ctrl_fixed_flips_always_detected(
        ctrl in arb_session_ctrl(),
        raw in prop::collection::vec(any::<usize>(), 1..4),
    ) {
        let mut sealed = ctrl.to_sealed_bytes().unwrap();
        // Byte 26 is the port count; flipping it re-frames the walk and
        // is covered by the frame-length argument below.
        let before_count = pick_bits(&raw[..1], 0, 26 * 8);
        let after_count = pick_bits(&raw[1..], 27 * 8, sealed.len() * 8);
        let bits: BTreeSet<usize> = before_count.union(&after_count).copied().collect();
        flip_bits(&mut sealed, &bits);
        prop_assert!(SessionCtrl::parse_sealed(&sealed).is_err());
    }

    /// Frame-length arm for session control: flips *anywhere* either
    /// fail the parse or leave a consumed length that no longer spans
    /// the frame — the check `mtp-io`'s frame splitter applies.
    #[test]
    fn session_ctrl_flips_never_verify_cleanly(
        ctrl in arb_session_ctrl(),
        raw in prop::collection::vec(any::<usize>(), 1..4),
    ) {
        let mut sealed = ctrl.to_sealed_bytes().unwrap();
        let bits = sealed.len() * 8;
        flip_bits(&mut sealed, &pick_bits(&raw, 0, bits));
        let detected = match SessionCtrl::parse_sealed(&sealed) {
            Err(_) => true,
            Ok((_, used)) => used != sealed.len(),
        };
        prop_assert!(detected, "corrupted session-control frame verified cleanly");
    }

    /// Invariant 4, session control: truncation at any byte is rejected.
    #[test]
    fn session_ctrl_truncation_always_detected(
        ctrl in arb_session_ctrl(),
        cut_frac in 0.0f64..1.0,
    ) {
        let sealed = ctrl.to_sealed_bytes().unwrap();
        let cut = ((sealed.len() as f64) * cut_frac) as usize;
        if cut < sealed.len() {
            prop_assert!(SessionCtrl::parse_sealed(&sealed[..cut]).is_err());
        }
    }
}
