//! Property-based tests: every structurally valid `MtpHeader` must survive
//! an emit→parse round trip byte-identically, the zero-copy view must agree
//! with the owned parse, and arbitrary byte soup must never panic the
//! parser.

use proptest::prelude::*;

use mtp_wire::{
    Feedback, MtpHeader, MtpView, PathExclude, PathFeedback, PathletId, PktNum, PktType, SackEntry,
    TrafficClass,
};

fn arb_feedback() -> impl Strategy<Value = Feedback> {
    prop_oneof![
        any::<bool>().prop_map(|ce| Feedback::EcnMark { ce }),
        any::<u16>().prop_map(|fraction| Feedback::EcnFraction { fraction }),
        any::<u32>().prop_map(|mbps| Feedback::RcpRate { mbps }),
        any::<u32>().prop_map(|ns| Feedback::Delay { ns }),
        any::<u32>().prop_map(|bytes| Feedback::QueueDepth { bytes }),
        any::<u16>().prop_map(|p| Feedback::PathChange {
            new_path: PathletId(p)
        }),
        Just(Feedback::Trim),
    ]
}

fn arb_path_feedback() -> impl Strategy<Value = PathFeedback> {
    (any::<u16>(), any::<u8>(), arb_feedback()).prop_map(|(p, tc, feedback)| PathFeedback {
        path: PathletId(p),
        tc: TrafficClass(tc),
        feedback,
    })
}

fn arb_sack() -> impl Strategy<Value = SackEntry> {
    (any::<u64>(), any::<u32>()).prop_map(|(m, p)| SackEntry {
        msg: mtp_wire::MsgId(m),
        pkt: PktNum(p),
    })
}

fn arb_pkt_type() -> impl Strategy<Value = PktType> {
    prop_oneof![
        Just(PktType::Data),
        Just(PktType::Ack),
        Just(PktType::Nack),
        Just(PktType::Control)
    ]
}

prop_compose! {
    fn arb_header()(
        src_port in any::<u16>(),
        dst_port in any::<u16>(),
        pkt_type in arb_pkt_type(),
        msg_pri in any::<u8>(),
        tc in any::<u8>(),
        raw_flags in 0u8..16,
        msg_id in any::<u64>(),
        entity in any::<u16>(),
        msg_len_pkts in any::<u32>(),
        msg_len_bytes in any::<u32>(),
        pkt_num in any::<u32>(),
        pkt_len in any::<u16>(),
        pkt_offset in any::<u32>(),
        path_exclude in prop::collection::vec(
            (any::<u16>(), any::<u8>()).prop_map(|(p, tc)| PathExclude {
                path: PathletId(p),
                tc: TrafficClass(tc),
            }),
            0..8
        ),
        path_feedback in prop::collection::vec(arb_path_feedback(), 0..8),
        ack_path_feedback in prop::collection::vec(arb_path_feedback(), 0..8),
        sack in prop::collection::vec(arb_sack(), 0..16),
        nack in prop::collection::vec(arb_sack(), 0..16),
    ) -> MtpHeader {
        MtpHeader {
            src_port,
            dst_port,
            pkt_type,
            msg_pri,
            tc: TrafficClass(tc),
            flags: raw_flags, // all 16 combinations of defined flag bits
            msg_id: mtp_wire::MsgId(msg_id),
            entity: mtp_wire::EntityId(entity),
            msg_len_pkts,
            msg_len_bytes,
            pkt_num: PktNum(pkt_num),
            pkt_len,
            pkt_offset,
            path_exclude,
            path_feedback,
            ack_path_feedback,
            sack,
            nack,
        }
    }
}

proptest! {
    #[test]
    fn emit_parse_roundtrip(hdr in arb_header()) {
        let bytes = hdr.to_bytes().unwrap();
        prop_assert_eq!(bytes.len(), hdr.wire_len());
        let (back, used) = MtpHeader::parse(&bytes).unwrap();
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(back, hdr);
    }

    #[test]
    fn view_agrees_with_owned(hdr in arb_header()) {
        let bytes = hdr.to_bytes().unwrap();
        let view = MtpView::new(&bytes).unwrap();
        prop_assert_eq!(view.header_len(), bytes.len());
        prop_assert_eq!(view.msg_id(), hdr.msg_id);
        prop_assert_eq!(view.pkt_num(), hdr.pkt_num);
        prop_assert_eq!(view.msg_len_bytes(), hdr.msg_len_bytes);
        prop_assert_eq!(view.entity(), hdr.entity);
        let fbs: Vec<_> = view.path_feedback().collect::<Result<_, _>>().unwrap();
        prop_assert_eq!(fbs, hdr.path_feedback);
        let sacks: Vec<_> = view.sack().collect();
        prop_assert_eq!(sacks, hdr.sack);
        let nacks: Vec<_> = view.nack().collect();
        prop_assert_eq!(nacks, hdr.nack);
    }

    #[test]
    fn parser_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = MtpHeader::parse(&bytes);
        let _ = MtpView::new(&bytes);
        let _ = mtp_wire::TcpHeader::parse(&bytes);
    }

    #[test]
    fn truncation_always_detected(hdr in arb_header(), cut_frac in 0.0f64..1.0) {
        let bytes = hdr.to_bytes().unwrap();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        if cut < bytes.len() {
            prop_assert!(MtpHeader::parse(&bytes[..cut]).is_err());
        }
    }
}

proptest! {
    /// The TCP-island bridge encapsulation round-trips any header and
    /// never panics on garbage payloads.
    #[test]
    fn bridge_roundtrip(hdr in arb_header(), trailer in prop::collection::vec(any::<u8>(), 0..64)) {
        let mut wire = mtp_wire::encapsulate(&hdr).unwrap();
        wire.extend_from_slice(&trailer);
        let (back, consumed) = mtp_wire::decapsulate(&wire).unwrap().expect("bridged");
        prop_assert_eq!(back, hdr);
        prop_assert_eq!(&wire[consumed..], &trailer[..]);
    }

    #[test]
    fn bridge_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = mtp_wire::decapsulate(&bytes);
    }
}
