//! Proof that the sealed encode/verify hot path does not allocate.
//!
//! The corruption studies seal and re-verify a header for every damaged
//! frame, so `emit_sealed` into a caller-owned buffer plus `parse_sealed`
//! of a plain data header (no variable sections — the shape of every MTP
//! data packet) must perform **zero** heap allocations. This pins down
//! the design guarantees introduced with the table-driven checksums: the
//! CRC tables are static, `parse_sealed` walks the input in place with a
//! streaming CRC instead of a scratch copy, and empty variable sections
//! cost nothing to parse.
//!
//! This lives in an integration test so the counting allocator governs
//! the whole test binary, and so the `unsafe` impl of `GlobalAlloc` stays
//! outside the library's `deny(unsafe_code)`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use mtp_wire::{MsgId, MtpHeader, PktNum, TcpHeader};

struct CountingAlloc;

// Per-thread count: a process-global counter races with the libtest
// harness thread, whose blocking `recv` of a test result lazily
// initializes a thread-local channel context — two allocations that land
// inside the measurement window or not depending on scheduling.
thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn bump() {
    // try_with: TLS may be gone during thread teardown; those allocations
    // are not part of any measurement window anyway.
    let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
}

fn allocs() -> u64 {
    ALLOCS.with(|c| c.get())
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

// One #[test] entry point so the three phases share one measuring thread.
#[test]
fn sealed_hot_paths_allocate_nothing() {
    sealed_encode_verify_roundtrip_allocates_nothing();
    tcp_sealed_roundtrip_allocates_nothing();
    crc_primitives_allocate_nothing();
}

fn sealed_encode_verify_roundtrip_allocates_nothing() {
    let hdr = MtpHeader {
        msg_id: MsgId(0xDEAD_BEEF),
        pkt_num: PktNum(17),
        pkt_len: 1400,
        pkt_offset: 1400 * 17,
        msg_len_pkts: 64,
        msg_len_bytes: 1400 * 64,
        ..MtpHeader::default()
    };
    let mut buf = vec![0u8; hdr.sealed_wire_len()];

    // Warm-up: fault the CRC tables' pages, the feature-detection cache,
    // and anything lazy in the parser before counting.
    let used = hdr.emit_sealed(&mut buf).unwrap();
    let (_, consumed, payload_ok) = MtpHeader::parse_sealed(&buf[..used]).unwrap();
    assert_eq!(consumed, used);
    assert!(payload_ok);

    let before = allocs();
    for _ in 0..1000 {
        let used = hdr.emit_sealed(&mut buf).unwrap();
        let (back, consumed, payload_ok) = MtpHeader::parse_sealed(&buf[..used]).unwrap();
        assert_eq!(consumed, used);
        assert!(payload_ok);
        assert_eq!(back.msg_id, hdr.msg_id);
    }
    let during = allocs() - before;
    assert_eq!(
        during, 0,
        "sealed encode/verify hot path must not allocate (saw {during} allocations in 1000 rounds)"
    );
}

fn tcp_sealed_roundtrip_allocates_nothing() {
    let hdr = TcpHeader {
        seq: 123_456,
        ack: 654_321,
        payload_len: 1400,
        ..TcpHeader::default()
    };
    let sealed = hdr.to_sealed_bytes();
    let (_, used) = TcpHeader::parse_sealed(&sealed).unwrap();
    assert_eq!(used, sealed.len());

    let before = allocs();
    for _ in 0..1000 {
        let sealed = hdr.to_sealed_bytes();
        let (back, _) = TcpHeader::parse_sealed(&sealed).unwrap();
        assert_eq!(back.seq, hdr.seq);
    }
    let during = allocs() - before;
    assert_eq!(during, 0, "TCP sealed roundtrip must not allocate");
}

fn crc_primitives_allocate_nothing() {
    let mut msg = [0u8; 1792];
    for (i, b) in msg.iter_mut().enumerate() {
        *b = (i as u8).wrapping_mul(31);
    }
    // Warm: first calls may initialize the hardware-dispatch cache.
    let c32 = mtp_wire::integrity::crc32(&msg);
    let c16 = mtp_wire::integrity::crc16_ccitt(&msg);

    let before = allocs();
    for _ in 0..100 {
        assert_eq!(mtp_wire::integrity::crc32(&msg), c32);
        assert_eq!(mtp_wire::integrity::crc16_ccitt(&msg), c16);
    }
    let during = allocs() - before;
    assert_eq!(during, 0, "checksum primitives must not allocate");
}
