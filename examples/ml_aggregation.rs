//! In-network gradient aggregation (the paper §4 "ML Training" / ATP use
//! case): W workers push gradients to an in-network aggregator that
//! terminates their messages and sends a single combined update to the
//! parameter server — a many-to-one message mutation that shrinks
//! upstream traffic by a factor of W.
//!
//! Run with: `cargo run --example ml_aggregation`

use mtp::core::{MtpConfig, MtpSenderNode, MtpSinkNode, ScheduledMsg};
use mtp::net::AggregatorNode;
use mtp::sim::time::{Bandwidth, Duration, Time};
use mtp::sim::{LinkCfg, PortId, Simulator};
use mtp::wire::EntityId;

const WORKERS: usize = 8;
const ROUNDS: u64 = 25;
const GRADIENT: u32 = 250_000; // bytes per worker per round

fn main() {
    let mut sim = Simulator::new(7);
    let cfg = MtpConfig::default();

    let agg = sim.add_node(Box::new(AggregatorNode::new(
        cfg.clone(),
        50, // aggregator address
        60, // parameter-server address
        WORKERS,
        GRADIENT,
        9 << 40,
    )));
    let ps = sim.add_node(Box::new(MtpSinkNode::new(60, Duration::from_micros(100))));

    let d = Duration::from_micros(1);
    // The parameter-server link is 10x slower than the worker links:
    // without aggregation it would be an 8x-oversubscribed incast; with
    // aggregation it idles.
    let (to_ps, _) = sim.connect(
        agg,
        PortId(0),
        ps,
        PortId(0),
        LinkCfg::ecn(Bandwidth::from_gbps(10), d, 256, 40),
        LinkCfg::ecn(Bandwidth::from_gbps(10), d, 256, 40),
    );

    let mut workers = Vec::new();
    for w in 0..WORKERS {
        let schedule: Vec<ScheduledMsg> = (0..ROUNDS)
            .map(|r| ScheduledMsg::new(Time::ZERO + Duration::from_micros(50 * r), GRADIENT))
            .collect();
        let node = sim.add_node(Box::new(MtpSenderNode::new(
            cfg.clone(),
            (w + 1) as u16,
            50,
            EntityId(w as u16),
            ((w + 1) as u64) << 40,
            schedule,
        )));
        sim.connect(
            node,
            PortId(0),
            agg,
            PortId(1 + w),
            LinkCfg::ecn(Bandwidth::from_gbps(100), d, 256, 40),
            LinkCfg::ecn(Bandwidth::from_gbps(100), d, 256, 40),
        );
        workers.push(node);
    }

    sim.run_until(Time::ZERO + Duration::from_millis(100));

    let done = workers
        .iter()
        .filter(|&&w| sim.node_as::<MtpSenderNode>(w).all_done())
        .count();
    let stats = sim.node_as::<AggregatorNode>(agg).stats;
    let ps_node = sim.node_as::<MtpSinkNode>(ps);

    println!("in-network gradient aggregation ({WORKERS} workers, {ROUNDS} rounds)");
    println!("workers finished:    {done}/{WORKERS}");
    println!(
        "gradients in:        {} ({:.1} MB)",
        stats.gradients_in,
        stats.bytes_in as f64 / 1e6
    );
    println!(
        "aggregates out:      {} ({:.1} MB)",
        stats.rounds_out,
        stats.bytes_out as f64 / 1e6
    );
    println!(
        "traffic reduction:   {:.1}x (paper's ATP win)",
        stats.bytes_in as f64 / stats.bytes_out as f64
    );
    println!(
        "PS link utilization: {:.2} GB carried for {:.2} GB of worker gradients",
        sim.link_stats(to_ps).tx_bytes as f64 / 1e9,
        stats.bytes_in as f64 / 1e9
    );
    assert_eq!(ps_node.delivered.len(), ROUNDS as usize);
    assert_eq!(done, WORKERS);
}
