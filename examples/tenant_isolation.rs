//! Per-entity isolation with one shared queue (paper §5.3, Fig. 7 in
//! miniature).
//!
//! Two tenants share a bottleneck. Tenant 2 runs 4 message streams to
//! tenant 1's one. With plain per-flow fairness tenant 2 takes ~4x the
//! bandwidth; with MTP's entity field and a fair-share marking policy at
//! the switch ingress — still a single shared queue — the split is equal.
//!
//! Run with: `cargo run --example tenant_isolation`

use mtp_bench::topo::{dumbbell, dumbbell_dst, dumbbell_src, PathSpec};
use mtp_core::{MtpConfig, MtpSenderNode, MtpSinkNode, ScheduledMsg};
use mtp_net::FairShareEnforcer;
use mtp_sim::time::{Bandwidth, Duration, Time};
use mtp_wire::EntityId;

const STREAMS_T2: usize = 4;

fn run(enforce: bool) -> (f64, f64) {
    let n = 1 + STREAMS_T2;
    let edge = PathSpec {
        rate: Bandwidth::from_gbps(100),
        delay: Duration::from_micros(1),
        cap_pkts: 256,
        ecn_k: 40,
    };
    let shared = PathSpec {
        rate: Bandwidth::from_gbps(100),
        delay: Duration::from_micros(10),
        cap_pkts: 256,
        ecn_k: if enforce { 192 } else { 40 },
    };
    let policy = enforce.then(|| {
        Box::new(FairShareEnforcer::new(
            Bandwidth::from_gbps(100),
            Duration::from_micros(20),
        )) as Box<dyn mtp_net::IngressPolicy>
    });
    let mut bell = dumbbell(
        3,
        n,
        |i| {
            let entity = if i == 0 { 1 } else { 2 };
            Box::new(MtpSenderNode::new(
                MtpConfig::default(),
                dumbbell_src(i),
                dumbbell_dst(i),
                EntityId(entity),
                (i as u64 + 1) << 40,
                vec![ScheduledMsg::new(Time::ZERO, 200_000_000)],
            ))
        },
        |i| {
            Box::new(MtpSinkNode::new(
                dumbbell_dst(i),
                Duration::from_micros(100),
            ))
        },
        edge,
        shared,
        policy,
        None,
    );
    bell.sim.run_until(Time::ZERO + Duration::from_millis(6));
    let mut t = [0.0f64; 2];
    for (i, &s) in bell.sinks.iter().enumerate() {
        let rates = bell.sim.node_as::<MtpSinkNode>(s).goodput.rates_gbps();
        let from = rates.len() * 3 / 4;
        let mean = rates[from..].iter().sum::<f64>() / rates[from..].len().max(1) as f64;
        t[usize::from(i != 0)] += mean;
    }
    (t[0], t[1])
}

fn main() {
    println!("tenant isolation on one shared 100 Gbps queue");
    println!("tenant 1: 1 stream; tenant 2: {STREAMS_T2} streams\n");
    let (g1, g2) = run(false);
    println!(
        "no policy:        tenant1 {g1:>6.1} Gbps   tenant2 {g2:>6.1} Gbps   (ratio {:.2})",
        g2 / g1
    );
    let (f1, f2) = run(true);
    println!(
        "fair-share marks: tenant1 {f1:>6.1} Gbps   tenant2 {f2:>6.1} Gbps   (ratio {:.2})",
        f2 / f1
    );
    println!("\nthe enforcer reads the entity field from each MTP header — per-tenant");
    println!("policy without per-tenant queues (paper Fig. 7).");
}
