//! The paper's Figure 1 scenario: an in-network cache answering hot
//! key-value requests directly, bypassing a slower backend.
//!
//! A client issues GET requests following a skewed popularity curve; the
//! cache holds the hottest keys. Hits are terminated *inside the network*
//! (the cache ACKs the request message and originates the reply itself —
//! only possible because MTP reliability names (message, packet) pairs,
//! not stream bytes). Misses continue to the backend over a slower link.
//!
//! Run with: `cargo run --example innetwork_cache`

use mtp_core::MtpConfig;
use mtp_net::{KvCacheNode, KvClientNode, KvServerNode};
use mtp_sim::time::{Bandwidth, Duration, Time};
use mtp_sim::{LinkCfg, PortId, Simulator};

fn main() {
    let mut sim = Simulator::new(42);
    let cfg = MtpConfig::default();

    // Requests: keys 0..10 are hot (cached), the rest cold. A simple
    // 80/20-style mix: 70% of requests go to the hot set.
    let schedule: Vec<(Time, u64)> = (0..300u64)
        .map(|i| {
            let key = if i % 10 < 7 { i % 10 } else { 100 + i };
            (Time::ZERO + Duration::from_micros(2 * i), key)
        })
        .collect();
    let n_req = schedule.len();

    let client = sim.add_node(Box::new(KvClientNode::new(
        cfg.clone(),
        1,   // client address
        2,   // server address (requests are addressed to the backend)
        256, // request bytes
        1 << 32,
        schedule,
    )));
    let cache = sim.add_node(Box::new(KvCacheNode::new(
        cfg.clone(),
        5,        // cache address
        0..10u64, // hot set
        4096,     // reply bytes
        2 << 32,
    )));
    let server = sim.add_node(Box::new(KvServerNode::new(
        cfg,
        2,
        4096,
        Duration::from_micros(3), // per-request service time
        3 << 32,
    )));

    // Client -- cache on a fast link; cache -- backend on a slower one
    // (the paper's differing-throughput resources).
    let d = Duration::from_micros(1);
    sim.connect(
        client,
        PortId(0),
        cache,
        PortId(0),
        LinkCfg::ecn(Bandwidth::from_gbps(100), d, 256, 40),
        LinkCfg::ecn(Bandwidth::from_gbps(100), d, 256, 40),
    );
    sim.connect(
        cache,
        PortId(1),
        server,
        PortId(0),
        LinkCfg::ecn(Bandwidth::from_gbps(10), Duration::from_micros(5), 256, 40),
        LinkCfg::ecn(Bandwidth::from_gbps(10), Duration::from_micros(5), 256, 40),
    );

    sim.run_until(Time::ZERO + Duration::from_millis(50));

    let cache_stats = sim.node_as::<KvCacheNode>(cache).stats;
    let served = sim.node_as::<KvServerNode>(server).served;
    let client = sim.node_as::<KvClientNode>(client);

    println!("in-network cache (paper Fig. 1, offload (1))");
    println!("requests:     {n_req}");
    println!("cache hits:   {}", cache_stats.hits);
    println!(
        "cache misses: {} (served by backend: {served})",
        cache_stats.misses
    );
    println!("completed:    {}", client.done());

    let lat = |from_cache: bool| -> (f64, usize) {
        let v: Vec<f64> = client
            .completions
            .iter()
            .filter(|(_, _, c)| *c == from_cache)
            .map(|(_, l, _)| l.as_micros_f64())
            .collect();
        (v.iter().sum::<f64>() / v.len().max(1) as f64, v.len())
    };
    let (hot_mean, hot_n) = lat(true);
    let (cold_mean, cold_n) = lat(false);
    println!("mean latency, cache-served ({hot_n}): {hot_mean:.1} us");
    println!("mean latency, backend-served ({cold_n}): {cold_mean:.1} us");
    println!("speedup from the offload: {:.1}x", cold_mean / hot_mean);
}
