//! Message-aware load balancing over parallel paths (paper §5.2, Fig. 6
//! in miniature).
//!
//! Because every MTP packet advertises its message's total size, an
//! in-network load balancer can pin each message to the path with the
//! least outstanding work — elephants and mice are separated without
//! reordering any message internally. Compare against per-packet spraying,
//! which balances perfectly but violates MTP's intra-message ordering
//! assumption and triggers spurious NACK repair.
//!
//! Run with: `cargo run --example multipath_lb`

use mtp_bench::topo::{two_path_mtp, PathSpec};
use mtp_core::{MtpConfig, MtpSenderNode, ScheduledMsg};
use mtp_net::Strategy;
use mtp_sim::time::{Bandwidth, Duration, Time};
use mtp_wire::PathletId;

fn workload() -> Vec<ScheduledMsg> {
    // One elephant plus a stream of mice, all submitted together: the
    // balancer must keep the mice away from the elephant's path.
    let mut elephant = ScheduledMsg::new(Time::ZERO, 20_000_000);
    elephant.pri = 10; // bulk: lowest urgency (0 = most urgent)
    let mut msgs = vec![elephant];
    for i in 0..100u64 {
        // Mice keep the default priority 0 and may pass the elephant at
        // the sender as window space opens.
        msgs.push(ScheduledMsg::new(
            Time::ZERO + Duration::from_micros(3 * i),
            20_000,
        ));
    }
    msgs
}

fn run(name: &str, strategy: Strategy) {
    let a = PathSpec::new(Bandwidth::from_gbps(100), Duration::from_micros(1));
    let b = PathSpec::new(Bandwidth::from_gbps(100), Duration::from_micros(2));
    let mut tp = two_path_mtp(
        9,
        strategy,
        a,
        b,
        workload(),
        MtpConfig::default(),
        Duration::from_micros(50),
    );
    tp.sim.run_until(Time::ZERO + Duration::from_millis(20));
    let snd = tp.sim.node_as::<MtpSenderNode>(tp.sender);
    let mouse_fcts: Vec<f64> = snd.msgs[1..]
        .iter()
        .filter_map(|m| m.fct())
        .map(|d| d.as_micros_f64())
        .collect();
    let elephant = snd.msgs[0].fct().map(|d| d.as_micros_f64());
    let mean = mouse_fcts.iter().sum::<f64>() / mouse_fcts.len().max(1) as f64;
    let p99 = mtp_workload::percentile(&mouse_fcts, 99.0);
    let elephant_str = elephant.map_or("unfinished".into(), |e| format!("{e:>9.1} us"));
    println!(
        "{name:<10} elephant {elephant_str:>12} | {:>3}/100 mice, mean {mean:>7.1} us p99 {p99:>8.1} us | retx {}",
        mouse_fcts.len(),
        snd.sender.stats.retransmissions
    );
}

fn main() {
    println!("multipath load balancing: 1 x 20 MB elephant + 100 x 20 KB mice");
    println!("two 100 Gbps paths; path B has +1 us delay\n");
    run("ECMP", Strategy::Ecmp);
    run("spray", Strategy::Spray { next: 0 });
    run(
        "MTP-LB",
        Strategy::mtp_lb(2, vec![Some(PathletId(1)), Some(PathletId(2))]),
    );
    println!("\nMTP-LB pins the elephant to one path and steers mice to the other;");
    println!("spraying reorders inside messages and pays for it in repair traffic.");
}
