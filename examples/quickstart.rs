//! Quickstart: send one MTP message across a two-switch network and watch
//! the pieces work — fragmentation, pathlet stamping, SACKs, completion.
//!
//! Run with: `cargo run --example quickstart`

use mtp_core::{MtpConfig, MtpSenderNode, MtpSinkNode, ScheduledMsg};
use mtp_net::{Stamp, StampKind, StaticForwarder, StaticRoutes, SwitchNode};
use mtp_sim::time::{Bandwidth, Duration, Time};
use mtp_sim::{LinkCfg, PortId, Simulator};
use mtp_wire::{EntityId, MtpHeader, PathletId};

fn main() {
    // 1. The wire format itself: build a header, emit it, parse it back.
    let hdr = MtpHeader {
        src_port: 1,
        dst_port: 2,
        msg_id: mtp_wire::MsgId(42),
        msg_len_bytes: 64 * 1024,
        msg_len_pkts: 45,
        ..MtpHeader::default()
    };
    let bytes = hdr.to_bytes().expect("encodable");
    let (parsed, used) = MtpHeader::parse(&bytes).expect("decodable");
    assert_eq!(parsed, hdr);
    println!("wire format: {} header bytes round-trip ok", used);

    // 2. A small network: sender - switch - sink, with the switch stamping
    //    pathlet feedback into every data packet.
    let mut sim = Simulator::new(1);
    let sender = sim.add_node(Box::new(MtpSenderNode::new(
        MtpConfig::default(),
        1, // our address
        2, // destination address
        EntityId(7),
        1000, // message-id base
        vec![ScheduledMsg::new(Time::ZERO, 1_000_000)],
    )));
    let sw = sim.add_node(Box::new(
        SwitchNode::new(
            "sw",
            Box::new(StaticForwarder(
                StaticRoutes::new().add(1, PortId(0)).add(2, PortId(1)),
            )),
        )
        .with_stamp(PortId(1), Stamp::new(PathletId(1), StampKind::Presence)),
    ));
    let sink = sim.add_node(Box::new(MtpSinkNode::new(2, Duration::from_micros(10))));

    let rate = Bandwidth::from_gbps(100);
    let d = Duration::from_micros(1);
    sim.connect(
        sender,
        PortId(0),
        sw,
        PortId(0),
        LinkCfg::ecn(rate, d, 128, 20),
        LinkCfg::ecn(rate, d, 128, 20),
    );
    sim.connect(
        sw,
        PortId(1),
        sink,
        PortId(0),
        LinkCfg::ecn(rate, d, 128, 20),
        LinkCfg::ecn(rate, d, 128, 20),
    );

    // 3. Run to completion.
    sim.run();

    let snd = sim.node_as::<MtpSenderNode>(sender);
    let rcv = sim.node_as::<MtpSinkNode>(sink);
    let fct = snd.msgs[0].fct().expect("message completed");
    println!("sent 1 MB as {} packets", snd.sender.stats.pkts_sent);
    println!("delivered {} bytes in {}", rcv.total_goodput(), fct);
    println!(
        "sender now tracks {} pathlet controller(s); active = {:?}",
        snd.sender.pathlets().len(),
        snd.sender.active_pathlet().0
    );
    let mean_gbps = rcv.total_goodput() as f64 * 8.0 / fct.as_secs_f64() / 1e9;
    println!("effective goodput {mean_gbps:.1} Gbps on a 100 Gbps path");
    assert_eq!(rcv.total_goodput(), 1_000_000);
}
